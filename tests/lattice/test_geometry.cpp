#include "lattice/geometry.hpp"

#include <gtest/gtest.h>

#include <set>

namespace femto {
namespace {

TEST(Geometry, VolumeAndHalfVolume) {
  Geometry g(4, 4, 4, 8);
  EXPECT_EQ(g.volume(), 4 * 4 * 4 * 8);
  EXPECT_EQ(g.half_volume(), g.volume() / 2);
}

TEST(Geometry, RejectsOddExtents) {
  EXPECT_THROW(Geometry(3, 4, 4, 4), std::invalid_argument);
  EXPECT_THROW(Geometry(4, 4, 4, 5), std::invalid_argument);
  EXPECT_THROW(Geometry(0, 4, 4, 4), std::invalid_argument);
}

TEST(Geometry, IndexCoordRoundTrip) {
  Geometry g(4, 6, 4, 8);
  std::set<std::int64_t> seen;
  Coord x;
  for (x[3] = 0; x[3] < 8; ++x[3])
    for (x[2] = 0; x[2] < 4; ++x[2])
      for (x[1] = 0; x[1] < 6; ++x[1])
        for (x[0] = 0; x[0] < 4; ++x[0]) {
          const auto idx = g.index(x);
          ASSERT_GE(idx, 0);
          ASSERT_LT(idx, g.volume());
          EXPECT_TRUE(seen.insert(idx).second) << "duplicate index";
          const auto back = g.coord(idx);
          EXPECT_EQ(back, x);
        }
  EXPECT_EQ(static_cast<std::int64_t>(seen.size()), g.volume());
}

TEST(Geometry, ParityOrderingOfIndices) {
  Geometry g(4, 4, 4, 4);
  Coord x;
  for (x[3] = 0; x[3] < 4; ++x[3])
    for (x[2] = 0; x[2] < 4; ++x[2])
      for (x[1] = 0; x[1] < 4; ++x[1])
        for (x[0] = 0; x[0] < 4; ++x[0]) {
          const auto idx = g.index(x);
          if (Geometry::parity(x) == 0)
            EXPECT_LT(idx, g.half_volume());
          else
            EXPECT_GE(idx, g.half_volume());
        }
}

TEST(Geometry, NeighborsHaveOppositeParityAndCorrectCoord) {
  Geometry g(4, 4, 6, 4);
  Coord x;
  for (x[3] = 0; x[3] < 4; ++x[3])
    for (x[2] = 0; x[2] < 6; ++x[2])
      for (x[1] = 0; x[1] < 4; ++x[1])
        for (x[0] = 0; x[0] < 4; ++x[0]) {
          const int par = Geometry::parity(x);
          const auto cb = g.cb_index(x);
          for (int mu = 0; mu < 4; ++mu) {
            Coord xf = x;
            xf[mu] = (x[mu] + 1) % g.extent(mu);
            EXPECT_EQ(g.neighbor_fwd(par, cb, mu), g.cb_index(xf));
            Coord xb = x;
            xb[mu] = (x[mu] - 1 + g.extent(mu)) % g.extent(mu);
            EXPECT_EQ(g.neighbor_bwd(par, cb, mu), g.cb_index(xb));
          }
        }
}

TEST(Geometry, ForwardThenBackwardIsIdentity) {
  Geometry g(4, 4, 4, 8);
  for (int par = 0; par < 2; ++par)
    for (std::int64_t cb = 0; cb < g.half_volume(); ++cb)
      for (int mu = 0; mu < 4; ++mu) {
        const auto f = g.neighbor_fwd(par, cb, mu);
        EXPECT_EQ(g.neighbor_bwd(1 - par, f, mu), cb);
      }
}

TEST(Geometry, SiteFwdBwdGlobalConsistency) {
  Geometry g(4, 4, 4, 4);
  for (std::int64_t s = 0; s < g.volume(); ++s)
    for (int mu = 0; mu < 4; ++mu) {
      EXPECT_EQ(g.site_bwd(g.site_fwd(s, mu), mu), s);
      const auto x = g.coord(s);
      auto xf = x;
      xf[mu] = (x[mu] + 1) % g.extent(mu);
      EXPECT_EQ(g.site_fwd(s, mu), g.index(xf));
    }
}

TEST(Geometry, AntiperiodicPhaseOnlyAtTimeBoundary) {
  Geometry g(4, 4, 4, 6);
  Coord x;
  for (x[3] = 0; x[3] < 6; ++x[3])
    for (x[2] = 0; x[2] < 4; ++x[2])
      for (x[1] = 0; x[1] < 4; ++x[1])
        for (x[0] = 0; x[0] < 4; ++x[0]) {
          const int par = Geometry::parity(x);
          const auto cb = g.cb_index(x);
          for (int mu = 0; mu < 4; ++mu) {
            const float pf = g.phase_fwd(par, cb, mu);
            const float pb = g.phase_bwd(par, cb, mu);
            if (mu == 3 && x[3] == 5)
              EXPECT_EQ(pf, -1.0f);
            else
              EXPECT_EQ(pf, 1.0f);
            if (mu == 3 && x[3] == 0)
              EXPECT_EQ(pb, -1.0f);
            else
              EXPECT_EQ(pb, 1.0f);
          }
        }
}

TEST(Geometry, PhaseSignsBalance) {
  // Exactly one forward-wrap per time column.
  Geometry g(4, 4, 4, 8);
  int negatives = 0;
  for (int par = 0; par < 2; ++par)
    for (std::int64_t cb = 0; cb < g.half_volume(); ++cb)
      if (g.phase_fwd(par, cb, 3) < 0) ++negatives;
  EXPECT_EQ(negatives, 4 * 4 * 4);
}

}  // namespace
}  // namespace femto
