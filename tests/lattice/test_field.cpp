#include "lattice/field.hpp"

#include <gtest/gtest.h>

namespace femto {
namespace {

std::shared_ptr<const Geometry> geom44() {
  return std::make_shared<Geometry>(4, 4, 4, 4);
}

TEST(SpinorFieldT, SizesAndSubsets) {
  auto g = geom44();
  SpinorField<double> full(g, 8, Subset::Full);
  SpinorField<double> even(g, 8, Subset::Even);
  EXPECT_EQ(full.sites(), g->volume());
  EXPECT_EQ(even.sites(), g->half_volume());
  EXPECT_EQ(full.reals(), g->volume() * 8 * 24);
  EXPECT_EQ(full.bytes(), full.reals() * 8);
}

TEST(SpinorFieldT, LoadStoreRoundTrip) {
  auto g = geom44();
  SpinorField<double> f(g, 4, Subset::Odd);
  Spinor<double> p;
  for (int s = 0; s < kNs; ++s)
    for (int c = 0; c < kNc; ++c)
      p[s][c] = {static_cast<double>(s * 3 + c), -static_cast<double>(c)};
  f.store(2, 17, p);
  const auto q = f.load(2, 17);
  for (int s = 0; s < kNs; ++s)
    for (int c = 0; c < kNc; ++c) {
      EXPECT_EQ(q[s][c].re, p[s][c].re);
      EXPECT_EQ(q[s][c].im, p[s][c].im);
    }
}

TEST(SpinorFieldT, GaussianIsReproducible) {
  auto g = geom44();
  SpinorField<double> a(g, 2, Subset::Full), b(g, 2, Subset::Full);
  a.gaussian(99);
  b.gaussian(99);
  for (std::int64_t k = 0; k < a.reals(); ++k)
    EXPECT_EQ(a.data()[k], b.data()[k]);
}

TEST(SpinorFieldT, GaussianSubsetMatchesFull) {
  // The odd-subset field's site i must get the same randoms as the full
  // field's odd half: decomposition independence.
  auto g = geom44();
  SpinorField<double> full(g, 2, Subset::Full);
  SpinorField<double> odd(g, 2, Subset::Odd);
  full.gaussian(123);
  odd.gaussian(123);
  for (int s = 0; s < 2; ++s)
    for (std::int64_t i = 0; i < odd.sites(); ++i) {
      const auto a = odd.load(s, i);
      const auto b = full.load(s, g->half_volume() + i);
      for (int sp = 0; sp < kNs; ++sp)
        for (int c = 0; c < kNc; ++c) {
          EXPECT_EQ(a[sp][c].re, b[sp][c].re);
          EXPECT_EQ(a[sp][c].im, b[sp][c].im);
        }
    }
}

TEST(SpinorFieldT, ViewsAliasTheField) {
  auto g = geom44();
  SpinorField<double> f(g, 3, Subset::Even);
  f.gaussian(5);
  auto v = view(f);
  EXPECT_EQ(v.sites, f.sites());
  EXPECT_EQ(v.l5, 3);
  const auto p = v.load(1, 10);
  const auto q = f.load(1, 10);
  EXPECT_EQ(p[2][1].re, q[2][1].re);
  // Stores through the view are visible in the field.
  Spinor<double> z;
  v.store(1, 10, z);
  EXPECT_EQ(f.load(1, 10)[2][1].re, 0.0);
}

TEST(SpinorFieldT, ParityViewsPartitionFullField) {
  auto g = geom44();
  SpinorField<double> f(g, 2, Subset::Full);
  f.gaussian(7);
  auto ev = parity_view(f, 0);
  auto ov = parity_view(f, 1);
  EXPECT_EQ(ev.sites, g->half_volume());
  for (int s = 0; s < 2; ++s) {
    const auto pe = ev.load(s, 3);
    const auto fe = f.load(s, 3);
    EXPECT_EQ(pe[0][0].re, fe[0][0].re);
    const auto po = ov.load(s, 3);
    const auto fo = f.load(s, g->half_volume() + 3);
    EXPECT_EQ(po[0][0].re, fo[0][0].re);
  }
}

TEST(GaugeFieldT, LoadStoreRoundTrip) {
  auto g = geom44();
  GaugeField<double> u(g);
  ColorMat<double> m;
  for (int i = 0; i < 9; ++i)
    m.m[static_cast<size_t>(i)] = {static_cast<double>(i), 0.5};
  u.store(2, 31, m);
  const auto w = u.load(2, 31);
  EXPECT_LT(dist2(w, m), 1e-28);
}

TEST(GaugeFieldT, ConvertToFloat) {
  auto g = geom44();
  GaugeField<double> u(g);
  ColorMat<double> m = ColorMat<double>::identity();
  u.store(0, 0, m);
  auto uf = u.convert<float>();
  const auto w = uf.load(0, 0);
  EXPECT_FLOAT_EQ(w(0, 0).re, 1.0f);
  EXPECT_FLOAT_EQ(w(2, 2).re, 1.0f);
}

}  // namespace
}  // namespace femto
