// Validates the DeGrand-Rossi gamma basis: the Clifford algebra, gamma_5,
// and — most importantly for the dslash — that the rank-2
// project/reconstruct pair reproduces (1 -+ gamma_mu) exactly.

#include "lattice/spinor.hpp"

#include <gtest/gtest.h>

#include "lattice/rng.hpp"

namespace femto {
namespace {

Spinor<double> random_spinor(Xoshiro256& rng) {
  Spinor<double> p;
  for (int s = 0; s < kNs; ++s)
    for (int c = 0; c < kNc; ++c) p[s][c] = {rng.gaussian(), rng.gaussian()};
  return p;
}

double dist2(const Spinor<double>& a, const Spinor<double>& b) {
  double d = 0;
  for (int s = 0; s < kNs; ++s)
    for (int c = 0; c < kNc; ++c) d += norm2(a[s][c] - b[s][c]);
  return d;
}

TEST(Gamma, SquaresToIdentity) {
  Xoshiro256 rng(11);
  for (int mu = 0; mu < 4; ++mu) {
    const auto p = random_spinor(rng);
    const auto gg = apply_gamma(mu, apply_gamma(mu, p));
    EXPECT_LT(dist2(gg, p), 1e-24) << "mu=" << mu;
  }
}

TEST(Gamma, Anticommute) {
  Xoshiro256 rng(12);
  for (int mu = 0; mu < 4; ++mu)
    for (int nu = 0; nu < 4; ++nu) {
      if (mu == nu) continue;
      const auto p = random_spinor(rng);
      auto ab = apply_gamma(mu, apply_gamma(nu, p));
      const auto ba = apply_gamma(nu, apply_gamma(mu, p));
      ab += ba;  // {g_mu, g_nu} p should vanish
      Spinor<double> zero;
      EXPECT_LT(dist2(ab, zero), 1e-24) << "mu=" << mu << " nu=" << nu;
    }
}

TEST(Gamma, Gamma5IsProductOfAllFour) {
  Xoshiro256 rng(13);
  const auto p = random_spinor(rng);
  // g5 = gx gy gz gt
  auto prod = apply_gamma(kDirT, p);
  prod = apply_gamma(kDirZ, prod);
  prod = apply_gamma(kDirY, prod);
  prod = apply_gamma(kDirX, prod);
  const auto g5 = apply_gamma5(p);
  EXPECT_LT(dist2(prod, g5), 1e-24);
}

TEST(Gamma, Gamma5AnticommutesWithAll) {
  Xoshiro256 rng(14);
  for (int mu = 0; mu < 4; ++mu) {
    const auto p = random_spinor(rng);
    auto a = apply_gamma5(apply_gamma(mu, p));
    const auto b = apply_gamma(mu, apply_gamma5(p));
    a += b;
    Spinor<double> zero;
    EXPECT_LT(dist2(a, zero), 1e-24) << "mu=" << mu;
  }
}

TEST(Gamma, ChiralProjectorsFromGamma5) {
  Xoshiro256 rng(15);
  const auto p = random_spinor(rng);
  // P+ + P- = 1, P+ - P- = g5
  auto sum = chiral_plus(p);
  sum += chiral_minus(p);
  EXPECT_LT(dist2(sum, p), 1e-28);
  auto diff = chiral_plus(p);
  diff -= chiral_minus(p);
  EXPECT_LT(dist2(diff, apply_gamma5(p)), 1e-28);
  // Idempotent.
  EXPECT_LT(dist2(chiral_plus(chiral_plus(p)), chiral_plus(p)), 1e-28);
}

// project+reconstruct with identity link must equal (1 -+ g_mu).
TEST(Projection, MatchesExplicitProjector) {
  Xoshiro256 rng(16);
  for (int mu = 0; mu < 4; ++mu)
    for (int sign : {+1, -1}) {
      const auto p = random_spinor(rng);
      // Explicit: q = p - sign * g_mu p.
      auto expl = p;
      auto gp = apply_gamma(mu, p);
      gp *= static_cast<double>(sign);
      expl -= gp;
      // Via half-spinor path.
      Spinor<double> rec;
      reconstruct_add(mu, sign, project(mu, sign, p), rec);
      EXPECT_LT(dist2(rec, expl), 1e-24) << "mu=" << mu << " sign=" << sign;
    }
}

TEST(Projection, LinkCommutesWithReconstruction) {
  // U acting on the half spinor then reconstructing equals reconstructing
  // then acting on all four spins (color and spin factorize).
  Xoshiro256 rng(17);
  ColorMat<double> u;
  for (auto& e : u.m) e = {rng.gaussian(), rng.gaussian()};
  u = project_su3(u);
  for (int mu = 0; mu < 4; ++mu)
    for (int sign : {+1, -1}) {
      const auto p = random_spinor(rng);
      Spinor<double> a;
      reconstruct_add(mu, sign, mul(u, project(mu, sign, p)), a);
      Spinor<double> b_tmp;
      reconstruct_add(mu, sign, project(mu, sign, p), b_tmp);
      Spinor<double> b;
      for (int s = 0; s < kNs; ++s) b[s] = u * b_tmp[s];
      EXPECT_LT(dist2(a, b), 1e-22) << "mu=" << mu << " sign=" << sign;
    }
}

TEST(Spinor, DotAndNorm) {
  Xoshiro256 rng(18);
  const auto p = random_spinor(rng);
  const auto d = dot(p, p);
  EXPECT_NEAR(d.im, 0.0, 1e-14);
  EXPECT_NEAR(d.re, norm2(p), 1e-12);
}

TEST(Spinor, GammaPreservesNorm) {
  Xoshiro256 rng(19);
  for (int mu = 0; mu <= 4; ++mu) {
    const auto p = random_spinor(rng);
    EXPECT_NEAR(norm2(apply_gamma(mu, p)), norm2(p), 1e-12 * norm2(p))
        << "mu=" << mu;
  }
}

}  // namespace
}  // namespace femto
