#include "lattice/complex.hpp"

#include <gtest/gtest.h>

namespace femto {
namespace {

TEST(Cplx, BasicArithmetic) {
  cdouble a{1.0, 2.0}, b{3.0, -1.0};
  auto s = a + b;
  EXPECT_DOUBLE_EQ(s.re, 4.0);
  EXPECT_DOUBLE_EQ(s.im, 1.0);
  auto d = a - b;
  EXPECT_DOUBLE_EQ(d.re, -2.0);
  EXPECT_DOUBLE_EQ(d.im, 3.0);
  auto p = a * b;  // (1+2i)(3-i) = 3 - i + 6i - 2i^2 = 5 + 5i
  EXPECT_DOUBLE_EQ(p.re, 5.0);
  EXPECT_DOUBLE_EQ(p.im, 5.0);
}

TEST(Cplx, ConjAndNorm) {
  cdouble a{3.0, 4.0};
  EXPECT_DOUBLE_EQ(conj(a).im, -4.0);
  EXPECT_DOUBLE_EQ(norm2(a), 25.0);
  EXPECT_DOUBLE_EQ(abs(a), 5.0);
}

TEST(Cplx, ConjMulMatchesConjTimesB) {
  cdouble a{1.5, -2.5}, b{-0.5, 3.0};
  auto lhs = conj_mul(a, b);
  auto rhs = conj(a) * b;
  EXPECT_DOUBLE_EQ(lhs.re, rhs.re);
  EXPECT_DOUBLE_EQ(lhs.im, rhs.im);
}

TEST(Cplx, ImulIsMultiplicationByI) {
  cdouble a{2.0, 3.0};
  auto lhs = imul(a);
  auto rhs = cdouble{0.0, 1.0} * a;
  EXPECT_DOUBLE_EQ(lhs.re, rhs.re);
  EXPECT_DOUBLE_EQ(lhs.im, rhs.im);
  auto mlhs = mimul(a);
  auto mrhs = cdouble{0.0, -1.0} * a;
  EXPECT_DOUBLE_EQ(mlhs.re, mrhs.re);
  EXPECT_DOUBLE_EQ(mlhs.im, mrhs.im);
}

TEST(Cplx, Division) {
  cdouble a{5.0, 5.0}, b{3.0, -1.0};
  auto q = a / b;  // should recover a when multiplied back
  auto back = q * b;
  EXPECT_NEAR(back.re, a.re, 1e-14);
  EXPECT_NEAR(back.im, a.im, 1e-14);
}

TEST(Cplx, ScalarOps) {
  cdouble a{1.0, -2.0};
  auto r = 2.0 * a;
  EXPECT_DOUBLE_EQ(r.re, 2.0);
  EXPECT_DOUBLE_EQ(r.im, -4.0);
  a *= 3.0;
  EXPECT_DOUBLE_EQ(a.re, 3.0);
  EXPECT_DOUBLE_EQ(a.im, -6.0);
}

TEST(Cplx, FloatDoubleConversion) {
  cdouble a{1.25, -0.5};
  cfloat f{a};
  EXPECT_FLOAT_EQ(f.re, 1.25f);
  EXPECT_FLOAT_EQ(f.im, -0.5f);
}

}  // namespace
}  // namespace femto
