#include "lattice/rng.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

namespace femto {
namespace {

TEST(Rng, Deterministic) {
  Xoshiro256 a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer) {
  Xoshiro256 a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i)
    if (a.next() == b.next()) ++same;
  EXPECT_EQ(same, 0);
}

TEST(Rng, PerSiteStreamsIndependent) {
  // Streams derived from (seed, site, slot) must differ in any component.
  Xoshiro256 a(7, 100, 0), b(7, 101, 0), c(7, 100, 1);
  EXPECT_NE(a.next(), b.next());
  Xoshiro256 a2(7, 100, 0);
  a2.next();
  EXPECT_NE(a2.next(), c.next());
}

TEST(Rng, UniformInRange) {
  Xoshiro256 rng(3);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformPosNeverZero) {
  Xoshiro256 rng(4);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform_pos();
    EXPECT_GT(u, 0.0);
    EXPECT_LE(u, 1.0);
  }
}

TEST(Rng, UniformMeanAndVariance) {
  Xoshiro256 rng(5);
  const int n = 200000;
  double sum = 0, sq = 0;
  for (int i = 0; i < n; ++i) {
    const double u = rng.uniform();
    sum += u;
    sq += u * u;
  }
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 0.5, 0.005);
  EXPECT_NEAR(var, 1.0 / 12.0, 0.005);
}

TEST(Rng, GaussianMoments) {
  Xoshiro256 rng(6);
  const int n = 200000;
  double sum = 0, sq = 0, quart = 0;
  for (int i = 0; i < n; ++i) {
    const double g = rng.gaussian();
    sum += g;
    sq += g * g;
    quart += g * g * g * g;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sq / n, 1.0, 0.02);
  EXPECT_NEAR(quart / n, 3.0, 0.15);  // kurtosis of a normal
}

TEST(Rng, BelowRespectsBound) {
  Xoshiro256 rng(7);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.below(10);
    EXPECT_LT(v, 10u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 10u);  // all residues reached
}

TEST(SplitMix, KnownSequenceIsStable) {
  // Regression guard: the mixing must stay stable or saved ensembles and
  // tune caches silently change meaning.
  SplitMix64 sm(0);
  const auto a = sm.next();
  const auto b = sm.next();
  EXPECT_NE(a, b);
  SplitMix64 sm2(0);
  EXPECT_EQ(sm2.next(), a);
  EXPECT_EQ(sm2.next(), b);
}

}  // namespace
}  // namespace femto
