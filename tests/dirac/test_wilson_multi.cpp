// Batched dslash correctness: dslash_multi must be BITWISE identical, per
// right-hand side, to B independent dslash() calls with the same tuning —
// on every kernel variant, both parities, the dagger flag, and ragged
// batch sizes that do not divide the vector width.  This is the contract
// the block solvers and the solve service build on: batching is a pure
// bandwidth optimisation, never a numerics change.

#include "dirac/wilson.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "lattice/block_field.hpp"
#include "lattice/gauge.hpp"
#include "simd/vec.hpp"

namespace femto {
namespace {

std::shared_ptr<const Geometry> geom() {
  return std::make_shared<Geometry>(4, 4, 4, 8);
}

template <typename T>
void check_multi_matches_single(std::size_t nrhs, int l5, bool dagger,
                                DslashVariant v, std::size_t grain) {
  auto g = geom();
  GaugeField<double> ud(g);
  weak_gauge(ud, 131, 0.3);
  GaugeField<T> u = ud.template convert<T>();

  DslashTuning tune;
  tune.grain = grain;
  tune.variant = v;

  std::vector<SpinorField<T>> in, want, got;
  for (std::size_t r = 0; r < nrhs; ++r) {
    in.emplace_back(g, l5, Subset::Full);
    want.emplace_back(g, l5, Subset::Full);
    got.emplace_back(g, l5, Subset::Full);
    in.back().gaussian(700 + static_cast<std::uint64_t>(r));
  }

  for (int par = 0; par < 2; ++par) {
    for (std::size_t r = 0; r < nrhs; ++r)
      dslash<T>(parity_view(want[r], par), u, parity_view(in[r], 1 - par),
                par, dagger, tune);
    std::vector<SpinorView<T>> outs;
    std::vector<SpinorView<const T>> ins;
    for (std::size_t r = 0; r < nrhs; ++r) {
      outs.push_back(parity_view(got[r], par));
      ins.push_back(parity_view(std::as_const(in[r]), 1 - par));
    }
    dslash_multi<T>(outs, u, ins, par, dagger, tune);
  }

  for (std::size_t r = 0; r < nrhs; ++r)
    for (std::int64_t k = 0; k < in[r].reals(); ++k)
      ASSERT_EQ(got[r].data()[k], want[r].data()[k])
          << to_string(v) << " nrhs=" << nrhs << " r=" << r << " l5=" << l5
          << " dagger=" << dagger << " k=" << k;
}

template <typename T>
std::vector<DslashVariant> variants() {
  std::vector<DslashVariant> vs = {DslashVariant::kScalar};
  if constexpr (simd::kWidth<T> > 1) {
    vs.push_back(DslashVariant::kVector);
    vs.push_back(DslashVariant::kVectorBlocked);
  }
  return vs;
}

TEST(WilsonMulti, MatchesSingleRhsBitwiseDouble) {
  // Ragged batches: 3 and 5 are not multiples of any lane width, so the
  // RHS-lane kernel exercises its partial-batch tail.
  for (std::size_t nrhs : {std::size_t{1}, std::size_t{3}, std::size_t{4}})
    for (bool dagger : {false, true})
      for (DslashVariant v : variants<double>())
        check_multi_matches_single<double>(nrhs, 2, dagger, v, 16);
}

TEST(WilsonMulti, MatchesSingleRhsBitwiseFloat) {
  for (std::size_t nrhs : {std::size_t{1}, std::size_t{5}, std::size_t{8}})
    for (bool dagger : {false, true})
      for (DslashVariant v : variants<float>())
        check_multi_matches_single<float>(nrhs, 2, dagger, v, 16);
}

TEST(WilsonMulti, RaggedBatchAndFifthDim) {
  // l5 = 3 leaves a ragged fifth-dim tail for the blocked variant while
  // nrhs = 2 and 6 leave ragged RHS-lane tails at float width 4.
  for (std::size_t nrhs : {std::size_t{2}, std::size_t{6}})
    for (DslashVariant v : variants<float>())
      check_multi_matches_single<float>(nrhs, 3, /*dagger=*/false, v, 64);
}

TEST(WilsonMulti, GrainDoesNotLeakIntoArithmetic) {
  for (std::size_t grain : {std::size_t{16}, std::size_t{128},
                            std::size_t{1024}})
    for (DslashVariant v : variants<double>())
      check_multi_matches_single<double>(4, 2, /*dagger=*/true, v, grain);
}

TEST(BlockSpinorField, ViewHelpersCoverEveryRhs) {
  auto g = geom();
  BlockSpinorField<double> blk(g, /*l5=*/2, Subset::Odd, /*nrhs=*/3);
  EXPECT_EQ(blk.size(), 3u);
  for (std::size_t r = 0; r < blk.size(); ++r)
    blk[r].gaussian(40 + static_cast<std::uint64_t>(r));
  auto ptrs = blk.ptrs();
  auto cptrs = blk.cptrs();
  ASSERT_EQ(ptrs.size(), 3u);
  ASSERT_EQ(cptrs.size(), 3u);
  auto views = views_of<double>(ptrs);
  auto cviews = cviews_of<double>(cptrs);
  for (std::size_t r = 0; r < blk.size(); ++r) {
    EXPECT_EQ(ptrs[r], &blk[r]);
    EXPECT_EQ(views[r].data, blk[r].data());
    EXPECT_EQ(cviews[r].data, blk[r].data());
  }
}

}  // namespace
}  // namespace femto
