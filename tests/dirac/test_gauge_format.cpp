// Gauge storage tiers through the kernels and the wire (DESIGN.md §16).
//
// Two contracts:
//
//  * kernels -- every dslash variant (scalar / vector / lane-blocked) must
//    read every storage tier.  Within one tier the variants are three
//    implementations of one operator and must agree BITWISE (links are
//    reconstructed per site by the same scalar codec, then broadcast);
//    across tiers the exact formats match full18 to reconstruction
//    rounding while fixed12 is bounded by its quantisation step.
//
//  * wire -- the one-time gauge-halo exchange in a compressed tier must
//    fill the same full-precision ghosts (to codec tolerance) as the
//    plain exchange while moving 33-66% fewer bytes, and full18 must stay
//    bitwise identical to the pre-tier path.

#include <gtest/gtest.h>

#include <cstdint>
#include <mutex>

#include "dirac/distributed.hpp"
#include "dirac/wilson.hpp"
#include "lattice/compressed_gauge.hpp"
#include "lattice/gauge.hpp"

namespace femto {
namespace {

std::shared_ptr<const Geometry> geom448() {
  return std::make_shared<Geometry>(4, 4, 4, 8);
}

template <typename T, typename GaugeT>
void run_variant_fmt(SpinorField<T>& out, const GaugeT& u,
                     const SpinorField<T>& in, DslashVariant v) {
  DslashTuning tune;
  tune.grain = 16;
  tune.variant = v;
  for (int par = 0; par < 2; ++par)
    dslash<T>(parity_view(out, par), u, parity_view(in, 1 - par), par,
              false, tune);
}

template <typename GaugeT>
void check_variants_agree_on(const GaugeT& u, const SpinorField<double>& in,
                             const char* fmt) {
  auto g = in.geom_ptr();
  SpinorField<double> ref(g, in.l5(), Subset::Full),
      got(g, in.l5(), Subset::Full);
  run_variant_fmt(ref, u, in, DslashVariant::kScalar);
  for (DslashVariant v :
       {DslashVariant::kVector, DslashVariant::kVectorBlocked}) {
    run_variant_fmt(got, u, in, v);
    for (std::int64_t k = 0; k < in.reals(); ++k)
      ASSERT_EQ(got.data()[k], ref.data()[k])
          << fmt << " " << to_string(v) << " k=" << k;
  }
}

TEST(GaugeFormatKernels, VariantsAgreeBitwisePerFormat) {
  auto g = geom448();
  GaugeField<double> u(g);
  hot_gauge(u, 2101);
  const CompressedGaugeField<double> r12(u);
  const Recon8GaugeField<double> r8(u);
  const Fixed12GaugeField<double> x12(u);
  SpinorField<double> in(g, 3, Subset::Full);  // ragged l5 % W tail
  in.gaussian(2102);

  check_variants_agree_on(u, in, "full18");
  check_variants_agree_on(r12, in, "recon12");
  check_variants_agree_on(r8, in, "recon8");
  check_variants_agree_on(x12, in, "fixed12");
}

TEST(GaugeFormatKernels, FormatsMatchFullWithinCodecTolerance) {
  auto g = geom448();
  GaugeField<double> u(g);
  hot_gauge(u, 2103);
  const CompressedGaugeField<double> r12(u);
  const Recon8GaugeField<double> r8(u);
  const Fixed12GaugeField<double> x12(u);
  const int l5 = 4;
  SpinorField<double> in(g, l5, Subset::Full), ref(g, l5, Subset::Full),
      got(g, l5, Subset::Full);
  in.gaussian(2104);
  run_variant_fmt(ref, u, in, DslashVariant::kVector);

  const auto rel_diff = [&](const SpinorField<double>& a) {
    double d2 = 0.0, n2 = 0.0;
    for (std::int64_t k = 0; k < a.reals(); ++k) {
      const double d = a.data()[k] - ref.data()[k];
      d2 += d * d;
      n2 += ref.data()[k] * ref.data()[k];
    }
    return std::sqrt(d2 / n2);
  };

  run_variant_fmt(got, r12, in, DslashVariant::kVector);
  EXPECT_LT(rel_diff(got), 1e-13);  // exact to reconstruction rounding
  run_variant_fmt(got, r8, in, DslashVariant::kVector);
  EXPECT_LT(rel_diff(got), 1e-11);  // exact, costs a few more ulp
  run_variant_fmt(got, x12, in, DslashVariant::kVector);
  const double dx = rel_diff(got);
  EXPECT_LT(dx, 1e-3);  // bounded by the 16-bit quantisation step
  EXPECT_GT(dx, 1e-9);  // and really approximate, not silently exact
}

// ---------------------------------------------------------------------------
// Wire: the compressed gauge-halo exchange.
// ---------------------------------------------------------------------------

struct HaloRun {
  comm::HaloStats stats;
  std::vector<double> ghosts;  // every ghost real, concatenated
};

HaloRun run_gauge_halo(const GaugeField<double>& u, GaugeFormat fmt) {
  const std::array<int, 4> global{8, 4, 4, 8};
  DistributedLattice dl{global, comm::ProcessGrid({2, 1, 1, 2})};
  HaloRun out;
  std::mutex mu;
  // Per-rank slots: ranks finish in thread order, so a shared append would
  // shuffle the concatenation run to run.
  std::vector<std::vector<double>> per_rank(
      static_cast<std::size_t>(dl.grid.size()));
  comm::run_ranks(dl.grid.size(), [&](comm::RankHandle& h) {
    auto gauge = scatter_gauge(dl, h.rank(), u);
    comm::HaloExchanger ex(dl.grid, comm::CommPolicy::ZeroCopy,
                           comm::Granularity::Fused);
    comm::HaloStats stats;
    exchange_gauge_halo(h, dl, ex, gauge, fmt, &stats);
    auto& mine = per_rank[static_cast<std::size_t>(h.rank())];
    for (int mu4 = 0; mu4 < 4; ++mu4)
      for (std::int64_t f = 0; f < gauge.face_sites(mu4); ++f)
        for (int r = 0; r < kDistGaugeReals; ++r) {
          mine.push_back(gauge.ghost_bwd(mu4, f)[r]);
          mine.push_back(gauge.ghost_fwd(mu4, f)[r]);
        }
    std::lock_guard<std::mutex> lk(mu);
    out.stats += stats;
  });
  for (const auto& rank_ghosts : per_rank)
    out.ghosts.insert(out.ghosts.end(), rank_ghosts.begin(),
                      rank_ghosts.end());
  return out;
}

TEST(GaugeFormatHalo, Full18DelegatesBitwise) {
  auto g = std::make_shared<Geometry>(8, 4, 4, 8);
  GaugeField<double> u(g);
  hot_gauge(u, 2105);
  const auto plain = run_gauge_halo(u, GaugeFormat::kFull18);
  const auto tiered = run_gauge_halo(u, GaugeFormat::kFull18);
  ASSERT_EQ(plain.ghosts.size(), tiered.ghosts.size());
  for (std::size_t k = 0; k < plain.ghosts.size(); ++k)
    ASSERT_EQ(plain.ghosts[k], tiered.ghosts[k]) << k;
}

TEST(GaugeFormatHalo, CompressedTiersFillGhostsToCodecTolerance) {
  auto g = std::make_shared<Geometry>(8, 4, 4, 8);
  GaugeField<double> u(g);
  hot_gauge(u, 2106);
  const auto ref = run_gauge_halo(u, GaugeFormat::kFull18);
  struct Case {
    GaugeFormat fmt;
    double tol;
  };
  for (const Case c : {Case{GaugeFormat::kRecon12, 1e-12},
                       Case{GaugeFormat::kRecon8, 1e-10},
                       Case{GaugeFormat::kFixed12, 1e-3}}) {
    const auto got = run_gauge_halo(u, c.fmt);
    ASSERT_EQ(got.ghosts.size(), ref.ghosts.size());
    for (std::size_t k = 0; k < ref.ghosts.size(); ++k)
      ASSERT_NEAR(got.ghosts[k], ref.ghosts[k], c.tol)
          << gauge_format_name(c.fmt) << " k=" << k;
  }
}

TEST(GaugeFormatHalo, StatsAccountCompressedPayload) {
  // The wire carries the compressed slab, so HaloStats must shrink by the
  // exact per-site ratio: 48/72, 32/72, 16/72 doubles.
  auto g = std::make_shared<Geometry>(8, 4, 4, 8);
  GaugeField<double> u(g);
  hot_gauge(u, 2107);
  const auto full = run_gauge_halo(u, GaugeFormat::kFull18);
  ASSERT_GT(full.stats.bytes_sent, 0);
  for (GaugeFormat fmt : {GaugeFormat::kRecon12, GaugeFormat::kRecon8,
                          GaugeFormat::kFixed12}) {
    const auto got = run_gauge_halo(u, fmt);
    EXPECT_EQ(got.stats.messages, full.stats.messages);
    EXPECT_EQ(got.stats.bytes_sent * kDistGaugeReals,
              full.stats.bytes_sent * gauge_wire_reals(fmt))
        << gauge_format_name(fmt);
  }
}

TEST(GaugeFormatHalo, DistributedDslashOnCompressedHaloMatchesSingleRank) {
  // End to end: a recon12 gauge halo feeds the same stencil answer as the
  // single-rank kernel (the codec is exact on SU(3) links).
  const std::array<int, 4> global{8, 4, 4, 8};
  auto geom =
      std::make_shared<Geometry>(global[0], global[1], global[2], global[3]);
  GaugeField<double> u(geom);
  hot_gauge(u, 2108);
  SpinorField<double> in(geom, 1, Subset::Full), want(geom, 1, Subset::Full);
  in.gaussian(2109);
  for (int par = 0; par < 2; ++par)
    dslash<double>(parity_view(want, par), u, parity_view(in, 1 - par), par,
                   false, {});

  DistributedLattice dl{global, comm::ProcessGrid({2, 1, 1, 2})};
  SpinorField<double> got(geom, 1, Subset::Full);
  std::mutex mu;
  comm::run_ranks(dl.grid.size(), [&](comm::RankHandle& h) {
    auto psi = scatter_spinor(dl, h.rank(), in);
    auto gauge = scatter_gauge(dl, h.rank(), u);
    comm::HaloField out(dl.local_extents(), kDistSpinorReals);
    comm::HaloExchanger ex(dl.grid, comm::CommPolicy::ZeroCopy,
                           comm::Granularity::Fused);
    exchange_gauge_halo(h, dl, ex, gauge, GaugeFormat::kRecon12);
    distributed_dslash(h, dl, ex, psi, gauge, out, false);
    std::lock_guard<std::mutex> lk(mu);
    gather_spinor(dl, h.rank(), out, got);
  });
  for (std::int64_t k = 0; k < want.reals(); ++k)
    ASSERT_NEAR(got.data()[k], want.data()[k], 1e-11) << k;
}

}  // namespace
}  // namespace femto
