// Parameterised property sweep over the Mobius parameter space: the
// Schur/dagger/reconstruction identities must hold for every (L5, b5, c5,
// mf) combination, not just the defaults.

#include <gtest/gtest.h>

#include "dirac/mobius.hpp"
#include "lattice/blas.hpp"
#include "lattice/gauge.hpp"

namespace femto {
namespace {

class MobiusSweep : public ::testing::TestWithParam<MobiusParams> {
 protected:
  static std::shared_ptr<const GaugeField<double>> gauge() {
    static auto u = [] {
      auto g = std::make_shared<Geometry>(4, 4, 4, 4);
      auto field = std::make_shared<GaugeField<double>>(g);
      weak_gauge(*field, 1101, 0.25);
      return field;
    }();
    return u;
  }
};

TEST_P(MobiusSweep, SchurDaggerAdjoint) {
  const auto p = GetParam();
  MobiusOperator<double> op(gauge(), p);
  const auto g = gauge()->geom_ptr();
  SpinorField<double> x(g, p.l5, Subset::Odd), y(g, p.l5, Subset::Odd),
      mx(g, p.l5, Subset::Odd), mdy(g, p.l5, Subset::Odd);
  x.gaussian(1102);
  y.gaussian(1103);
  op.apply_schur(mx, x, false);
  op.apply_schur(mdy, y, true);
  const auto lhs = blas::cdot(y, mx);
  const auto rhs = blas::cdot(mdy, x);
  EXPECT_NEAR(lhs.re, rhs.re, 1e-8 * (std::abs(lhs.re) + 1));
  EXPECT_NEAR(lhs.im, rhs.im, 1e-8 * (std::abs(lhs.re) + 1));
}

TEST_P(MobiusSweep, SchurConsistentWithFullOperator) {
  const auto p = GetParam();
  MobiusOperator<double> op(gauge(), p);
  const auto g = gauge()->geom_ptr();
  SpinorField<double> x(g, p.l5, Subset::Full), b(g, p.l5, Subset::Full);
  x.gaussian(1104);
  op.apply_full(b, x);

  SpinorField<double> xo(g, p.l5, Subset::Odd);
  const auto xov = parity_view(const_cast<const SpinorField<double>&>(x), 1);
  for (int s = 0; s < p.l5; ++s)
    for (std::int64_t i = 0; i < xo.sites(); ++i)
      xo.store(s, i, xov.load(s, i));

  SpinorField<double> bhat(g, p.l5, Subset::Odd), mx(g, p.l5, Subset::Odd);
  op.prepare_source(bhat, b);
  op.apply_schur(mx, xo);
  blas::axpy(-1.0, bhat, mx);
  EXPECT_LT(blas::norm2(mx), 1e-16 * (blas::norm2(bhat) + 1e-30));

  SpinorField<double> xr(g, p.l5, Subset::Full);
  op.reconstruct(xr, xo, b);
  blas::axpy(-1.0, x, xr);
  EXPECT_LT(blas::norm2(xr), 1e-16 * blas::norm2(x));
}

TEST_P(MobiusSweep, NormalOperatorPositive) {
  const auto p = GetParam();
  MobiusOperator<double> op(gauge(), p);
  const auto g = gauge()->geom_ptr();
  SpinorField<double> x(g, p.l5, Subset::Odd), nx(g, p.l5, Subset::Odd);
  x.gaussian(1105);
  op.apply_normal(nx, x);
  EXPECT_GT(blas::redot(x, nx), 0.0);
}

INSTANTIATE_TEST_SUITE_P(
    ParamGrid, MobiusSweep,
    ::testing::Values(
        MobiusParams{4, -1.8, 1.5, 0.5, 0.1},   // production-like
        MobiusParams{8, -1.8, 1.5, 0.5, 0.1},   // deeper 5th dim
        MobiusParams{4, -1.8, 1.0, 0.0, 0.1},   // Shamir limit
        MobiusParams{4, -1.0, 1.5, 0.5, 0.1},   // shallow wall
        MobiusParams{4, -1.8, 2.0, 1.0, 0.1},   // strong Mobius scale
        MobiusParams{4, -1.8, 1.5, 0.5, 0.5},   // heavy quark
        MobiusParams{4, -1.8, 1.5, 0.5, 0.0},   // massless corner
        MobiusParams{6, -1.5, 1.25, 0.25, 0.05}),
    [](const ::testing::TestParamInfo<MobiusParams>& info) {
      const auto& p = info.param;
      auto fmt = [](double v) {
        std::string s = std::to_string(v);
        for (auto& c : s)
          if (c == '.' || c == '-') c = 'm';
        return s.substr(0, 5);
      };
      return "l5_" + std::to_string(p.l5) + "_h" + fmt(-p.m5) + "_b" +
             fmt(p.b5) + "_c" + fmt(p.c5) + "_m" + fmt(p.mf);
    });

}  // namespace
}  // namespace femto
