#include "dirac/fifth_dim.hpp"

#include <gtest/gtest.h>

namespace femto {
namespace {

std::shared_ptr<const Geometry> geom44() {
  return std::make_shared<Geometry>(4, 4, 4, 4);
}

TEST(Lambda, StructureAndBoundary) {
  const double mf = 0.1;
  const auto lp = lambda_plus(6, mf);
  EXPECT_EQ(lp(3, 2), 1.0);
  EXPECT_EQ(lp(0, 5), -mf);
  EXPECT_EQ(lp(0, 0), 0.0);
  const auto lm = lambda_minus(6, mf);
  EXPECT_EQ(lm(2, 3), 1.0);
  EXPECT_EQ(lm(5, 0), -mf);
  // Lambda- is the transpose of Lambda+ (same mf).
  const auto lpt = lp.transpose();
  for (int i = 0; i < 6; ++i)
    for (int j = 0; j < 6; ++j) EXPECT_EQ(lpt(i, j), lm(i, j));
}

TEST(FifthDim, IdentityOpIsIdentity) {
  auto g = geom44();
  const int l5 = 6;
  SpinorField<double> in(g, l5, Subset::Odd), out(g, l5, Subset::Odd);
  in.gaussian(41);
  FifthDimOp id{SMat::identity(l5), SMat::identity(l5)};
  id.apply<double>(view(out), cview(in));
  for (std::int64_t k = 0; k < in.reals(); ++k)
    EXPECT_EQ(out.data()[k], in.data()[k]);
}

TEST(FifthDim, ShiftMovesSlicesChirally) {
  // Lambda with mf = 0 moves the P+ components down one slice and the P-
  // components up one slice.
  auto g = geom44();
  const int l5 = 4;
  SpinorField<double> in(g, l5, Subset::Even), out(g, l5, Subset::Even);
  in.gaussian(42);
  FifthDimOp lam{lambda_plus(l5, 0.0), lambda_minus(l5, 0.0)};
  lam.apply<double>(view(out), cview(in));
  for (std::int64_t i = 0; i < in.sites(); i += 7) {
    for (int s = 1; s < l5; ++s) {
      const auto o = out.load(s, i);
      const auto prev = in.load(s - 1, i);
      for (int c = 0; c < kNc; ++c) {
        EXPECT_EQ(o[0][c].re, prev[0][c].re);  // P+ pair from s-1
        EXPECT_EQ(o[1][c].im, prev[1][c].im);
      }
    }
    for (int s = 0; s < l5 - 1; ++s) {
      const auto o = out.load(s, i);
      const auto next = in.load(s + 1, i);
      for (int c = 0; c < kNc; ++c) {
        EXPECT_EQ(o[2][c].re, next[2][c].re);  // P- pair from s+1
        EXPECT_EQ(o[3][c].im, next[3][c].im);
      }
    }
    // Chiral boundaries vanish at mf = 0.
    const auto o0 = out.load(0, i);
    const auto oL = out.load(l5 - 1, i);
    for (int c = 0; c < kNc; ++c) {
      EXPECT_EQ(o0[0][c].re, 0.0);
      EXPECT_EQ(oL[2][c].re, 0.0);
    }
  }
}

TEST(FifthDim, MassBoundaryCouples) {
  auto g = geom44();
  const int l5 = 4;
  const double mf = 0.25;
  SpinorField<double> in(g, l5, Subset::Even), out(g, l5, Subset::Even);
  in.gaussian(43);
  FifthDimOp lam{lambda_plus(l5, mf), lambda_minus(l5, mf)};
  lam.apply<double>(view(out), cview(in));
  const auto o0 = out.load(0, 5);
  const auto last = in.load(l5 - 1, 5);
  for (int c = 0; c < kNc; ++c)
    EXPECT_DOUBLE_EQ(o0[0][c].re, -mf * last[0][c].re);
}

TEST(FifthDim, CompositionMatchesMatrixProduct) {
  auto g = geom44();
  const int l5 = 6;
  SpinorField<double> in(g, l5, Subset::Odd), mid(g, l5, Subset::Odd),
      out1(g, l5, Subset::Odd), out2(g, l5, Subset::Odd);
  in.gaussian(44);
  FifthDimOp a{lambda_plus(l5, 0.3), lambda_minus(l5, 0.3)};
  SMat bp = SMat::identity(l5).scaled(2.0) + lambda_plus(l5, 0.1);
  SMat bm = SMat::identity(l5).scaled(2.0) + lambda_minus(l5, 0.1);
  FifthDimOp b{bp, bm};
  // Apply a then b...
  a.apply<double>(view(mid), cview(in));
  b.apply<double>(view(out1), cview(mid));
  // ...must equal applying (b*a).
  const FifthDimOp ba = b * a;
  ba.apply<double>(view(out2), cview(in));
  for (std::int64_t k = 0; k < out1.reals(); ++k)
    EXPECT_NEAR(out1.data()[k], out2.data()[k], 1e-12);
}

TEST(FifthDim, InverseUndoesApply) {
  auto g = geom44();
  const int l5 = 8;
  SpinorField<double> in(g, l5, Subset::Odd), mid(g, l5, Subset::Odd),
      back(g, l5, Subset::Odd);
  in.gaussian(45);
  // A well-conditioned operator (Mobius C-like).
  SMat cp = SMat::identity(l5).scaled(4.3) + lambda_plus(l5, 0.05).scaled(-0.9);
  SMat cm =
      SMat::identity(l5).scaled(4.3) + lambda_minus(l5, 0.05).scaled(-0.9);
  FifthDimOp c{cp, cm};
  c.apply<double>(view(mid), cview(in));
  c.inverse().apply<double>(view(back), cview(mid));
  for (std::int64_t k = 0; k < in.reals(); ++k)
    EXPECT_NEAR(back.data()[k], in.data()[k], 1e-10);
}

TEST(FifthDim, TransposeIsAdjointForRealBlocks) {
  // <u, A v> = <A^T u, v> for real per-chirality blocks.
  auto g = geom44();
  const int l5 = 6;
  SpinorField<double> u(g, l5, Subset::Odd), v(g, l5, Subset::Odd),
      av(g, l5, Subset::Odd), atu(g, l5, Subset::Odd);
  u.gaussian(46);
  v.gaussian(47);
  FifthDimOp a{lambda_plus(l5, 0.2).scaled(1.7) + SMat::identity(l5),
               lambda_minus(l5, 0.2).scaled(1.7) + SMat::identity(l5)};
  a.apply<double>(view(av), cview(v));
  a.transpose().apply<double>(view(atu), cview(u));
  double lhs = 0, rhs = 0;
  for (std::int64_t k = 0; k < u.reals(); ++k) {
    lhs += u.data()[k] * av.data()[k];
    rhs += atu.data()[k] * v.data()[k];
  }
  EXPECT_NEAR(lhs, rhs, 1e-9 * std::abs(lhs));
}

TEST(FifthDim, FloatApplyTracksDouble) {
  auto g = geom44();
  const int l5 = 4;
  SpinorField<double> in(g, l5, Subset::Odd), out(g, l5, Subset::Odd);
  SpinorField<float> inf(g, l5, Subset::Odd), outf(g, l5, Subset::Odd);
  in.gaussian(48);
  for (std::int64_t k = 0; k < in.reals(); ++k)
    inf.data()[k] = static_cast<float>(in.data()[k]);
  FifthDimOp a{lambda_plus(l5, 0.1) + SMat::identity(l5).scaled(3.0),
               lambda_minus(l5, 0.1) + SMat::identity(l5).scaled(3.0)};
  a.apply<double>(view(out), cview(in));
  a.apply<float>(view(outf), cview(inf));
  for (std::int64_t k = 0; k < in.reals(); k += 11)
    EXPECT_NEAR(outf.data()[k], out.data()[k],
                1e-5 * (std::abs(out.data()[k]) + 1.0));
}

}  // namespace
}  // namespace femto
