// Mobius operator validation.  The two strongest checks:
//  * apply_full (fused form D = D_W B + (1 - Lambda)) against an
//    independently coded block composition from the Schur pieces,
//  * dagger consistency via inner products for both the full and the Schur
//    operator (what CGNE correctness rests on).

#include "dirac/mobius.hpp"

#include <gtest/gtest.h>

#include "lattice/blas.hpp"
#include "lattice/gauge.hpp"

namespace femto {
namespace {

std::shared_ptr<const Geometry> geom44() {
  return std::make_shared<Geometry>(4, 4, 4, 4);
}

std::shared_ptr<const GaugeField<double>> make_gauge(std::uint64_t seed,
                                                     double eps = 0.25) {
  auto u = std::make_shared<GaugeField<double>>(geom44());
  weak_gauge(*u, seed, eps);
  return u;
}

const MobiusParams kParams{6, -1.8, 1.5, 0.5, 0.1};

TEST(Mobius, FullOperatorMatchesBlockComposition) {
  auto u = make_gauge(71);
  MobiusOperator<double> op(u, kParams);
  const auto g = u->geom_ptr();
  const int l5 = kParams.l5;

  SpinorField<double> in(g, l5, Subset::Full), got(g, l5, Subset::Full);
  in.gaussian(72);
  op.apply_full(got, in);

  // Independent composition: out = C in - 1/2 Dslash (B in), built from
  // scratch with the raw pieces (per parity).
  const double a = 4.0 + kParams.m5;
  FifthDimOp lam{lambda_plus(l5, kParams.mf), lambda_minus(l5, kParams.mf)};
  FifthDimOp b{SMat::identity(l5).scaled(kParams.b5) +
                   lambda_plus(l5, kParams.mf).scaled(kParams.c5),
               SMat::identity(l5).scaled(kParams.b5) +
                   lambda_minus(l5, kParams.mf).scaled(kParams.c5)};
  FifthDimOp c{SMat::identity(l5).scaled(kParams.b5 * a + 1.0) +
                   lambda_plus(l5, kParams.mf).scaled(kParams.c5 * a - 1.0),
               SMat::identity(l5).scaled(kParams.b5 * a + 1.0) +
                   lambda_minus(l5, kParams.mf).scaled(kParams.c5 * a - 1.0)};

  SpinorField<double> bin(g, l5, Subset::Full), dbin(g, l5, Subset::Full),
      want(g, l5, Subset::Full);
  b.apply<double>(view(bin), cview(in));
  for (int par = 0; par < 2; ++par)
    dslash<double>(parity_view(dbin, par), *u, parity_view(bin, 1 - par),
                   par, false, {});
  c.apply<double>(view(want), cview(in));
  blas::axpy(-0.5, dbin, want);

  for (std::int64_t k = 0; k < in.reals(); ++k)
    ASSERT_NEAR(got.data()[k], want.data()[k], 1e-11);
}

TEST(Mobius, ShamirLimitMatchesGeneric) {
  // b5 = 1, c5 = 0 through the generic code equals MobiusParams::shamir.
  auto u = make_gauge(73);
  MobiusOperator<double> generic(u, {6, -1.5, 1.0, 0.0, 0.05});
  MobiusOperator<double> shamir(u, MobiusParams::shamir(6, -1.5, 0.05));
  const auto g = u->geom_ptr();
  SpinorField<double> in(g, 6, Subset::Full), a(g, 6, Subset::Full),
      b(g, 6, Subset::Full);
  in.gaussian(74);
  generic.apply_full(a, in);
  shamir.apply_full(b, in);
  for (std::int64_t k = 0; k < in.reals(); ++k)
    ASSERT_EQ(a.data()[k], b.data()[k]);
}

TEST(Mobius, FullDaggerAdjointness) {
  auto u = make_gauge(75);
  MobiusOperator<double> op(u, kParams);
  const auto g = u->geom_ptr();
  SpinorField<double> x(g, kParams.l5, Subset::Full),
      y(g, kParams.l5, Subset::Full), dx(g, kParams.l5, Subset::Full),
      ddy(g, kParams.l5, Subset::Full);
  x.gaussian(76);
  y.gaussian(77);
  op.apply_full(dx, x, false);
  op.apply_full(ddy, y, true);
  const auto lhs = blas::cdot(y, dx);   // <y, D x>
  const auto rhs = blas::cdot(ddy, x);  // <D^dag y, x>
  EXPECT_NEAR(lhs.re, rhs.re, 1e-8 * (std::abs(lhs.re) + 1));
  EXPECT_NEAR(lhs.im, rhs.im, 1e-8 * (std::abs(lhs.re) + 1));
}

TEST(Mobius, SchurDaggerAdjointness) {
  auto u = make_gauge(78);
  MobiusOperator<double> op(u, kParams);
  const auto g = u->geom_ptr();
  SpinorField<double> x(g, kParams.l5, Subset::Odd),
      y(g, kParams.l5, Subset::Odd), mx(g, kParams.l5, Subset::Odd),
      mdy(g, kParams.l5, Subset::Odd);
  x.gaussian(79);
  y.gaussian(80);
  op.apply_schur(mx, x, false);
  op.apply_schur(mdy, y, true);
  const auto lhs = blas::cdot(y, mx);
  const auto rhs = blas::cdot(mdy, x);
  EXPECT_NEAR(lhs.re, rhs.re, 1e-8 * (std::abs(lhs.re) + 1));
  EXPECT_NEAR(lhs.im, rhs.im, 1e-8 * (std::abs(lhs.re) + 1));
}

TEST(Mobius, NormalOperatorIsHermitianPositive) {
  auto u = make_gauge(81);
  MobiusOperator<double> op(u, kParams);
  const auto g = u->geom_ptr();
  SpinorField<double> x(g, kParams.l5, Subset::Odd),
      y(g, kParams.l5, Subset::Odd), nx(g, kParams.l5, Subset::Odd),
      ny(g, kParams.l5, Subset::Odd);
  x.gaussian(82);
  y.gaussian(83);
  op.apply_normal(nx, x);
  op.apply_normal(ny, y);
  const auto a = blas::cdot(y, nx);
  const auto b = blas::cdot(ny, x);
  EXPECT_NEAR(a.re, b.re, 1e-8 * (std::abs(a.re) + 1));
  EXPECT_NEAR(a.im, b.im, 1e-8 * (std::abs(a.re) + 1));
  // Positivity: <x, Mhat^dag Mhat x> = ||Mhat x||^2 > 0.
  EXPECT_GT(blas::redot(x, nx), 0.0);
}

TEST(Mobius, SchurSolvesFullSystem) {
  // If x solves the full system via Schur decomposition then D x = b:
  // take arbitrary x_full, form b = D x_full, run prepare/Schur-identity/
  // reconstruct consistency: Mhat x_o must equal bhat when x is exact.
  auto u = make_gauge(84);
  MobiusOperator<double> op(u, kParams);
  const auto g = u->geom_ptr();
  const int l5 = kParams.l5;
  SpinorField<double> x(g, l5, Subset::Full), b(g, l5, Subset::Full);
  x.gaussian(85);
  op.apply_full(b, x);

  // Extract x_o.
  SpinorField<double> xo(g, l5, Subset::Odd);
  const auto xov = parity_view(const_cast<const SpinorField<double>&>(x), 1);
  for (int s = 0; s < l5; ++s)
    for (std::int64_t i = 0; i < xo.sites(); ++i)
      xo.store(s, i, xov.load(s, i));

  SpinorField<double> bhat(g, l5, Subset::Odd), mx(g, l5, Subset::Odd);
  op.prepare_source(bhat, b);
  op.apply_schur(mx, xo);
  blas::axpy(-1.0, bhat, mx);
  EXPECT_LT(blas::norm2(mx), 1e-18 * blas::norm2(bhat));

  // And reconstruction must reproduce the even half.
  SpinorField<double> xr(g, l5, Subset::Full);
  op.reconstruct(xr, xo, b);
  blas::axpy(-1.0, x, xr);
  EXPECT_LT(blas::norm2(xr), 1e-18 * blas::norm2(x));
}

TEST(Mobius, R5Gamma5HermiticityShamirKernel) {
  // D^dag = G5 R5 D R5 G5 with R5 the s-reflection.  This identity holds
  // exactly for the Shamir kernel (c5 = 0, where the hopping term carries
  // no chirality-blocked scale); for general Mobius the relation is
  // modified because D_W does not commute with B = b5 + c5*Lambda, so we
  // validate the Mobius dagger with the inner-product tests above instead.
  auto u = make_gauge(86);
  const MobiusParams shamir = MobiusParams::shamir(6, -1.8, 0.1);
  MobiusOperator<double> op(u, shamir);
  const auto g = u->geom_ptr();
  const int l5 = shamir.l5;
  SpinorField<double> x(g, l5, Subset::Full), lhs(g, l5, Subset::Full),
      tmp(g, l5, Subset::Full), rhs(g, l5, Subset::Full);
  x.gaussian(87);

  auto r5g5 = [&](SpinorField<double>& out, const SpinorField<double>& in) {
    for (int s = 0; s < l5; ++s)
      for (std::int64_t i = 0; i < in.sites(); ++i)
        out.store(l5 - 1 - s, i, apply_gamma5(in.load(s, i)));
  };

  op.apply_full(lhs, x, true);  // D^dag x
  r5g5(tmp, x);
  op.apply_full(rhs, tmp, false);
  SpinorField<double> rhs2(g, l5, Subset::Full);
  r5g5(rhs2, rhs);  // G5 R5 D R5 G5 x
  blas::axpy(-1.0, rhs2, lhs);
  EXPECT_LT(blas::norm2(lhs), 1e-16 * blas::norm2(rhs2));
}

TEST(Mobius, FlopsPerSchurInPaperRange) {
  // The paper quotes 10,000-12,000 flops per 5D lattice point for the
  // red-black stencil; our Schur operator (two dslash passes + m5inv-style
  // matvecs) must land in the same regime for production L5.
  auto u = make_gauge(88);
  for (int l5 : {8, 12, 16}) {
    MobiusParams p = kParams;
    p.l5 = l5;
    MobiusOperator<double> op(u, p);
    const double per_site5 =
        static_cast<double>(op.flops_per_schur()) /
        static_cast<double>(u->geom().half_volume() * l5);
    EXPECT_GT(per_site5, 2000.0) << l5;
    EXPECT_LT(per_site5, 13000.0) << l5;
  }
}

TEST(Mobius, FloatOperatorTracksDouble) {
  auto ud = make_gauge(89);
  auto uf = std::make_shared<GaugeField<float>>(ud->convert<float>());
  MobiusOperator<double> opd(ud, kParams);
  MobiusOperator<float> opf(uf, kParams);
  const auto g = ud->geom_ptr();
  SpinorField<double> in(g, kParams.l5, Subset::Odd),
      outd(g, kParams.l5, Subset::Odd);
  SpinorField<float> inf(g, kParams.l5, Subset::Odd),
      outf(g, kParams.l5, Subset::Odd);
  in.gaussian(90);
  blas::copy(inf, in);
  opd.apply_schur(outd, in);
  opf.apply_schur(outf, inf);
  double max_rel = 0;
  for (std::int64_t k = 0; k < in.reals(); k += 7) {
    const double d = std::abs(outd.data()[k] - outf.data()[k]);
    max_rel = std::max(max_rel, d / (std::abs(outd.data()[k]) + 1.0));
  }
  EXPECT_LT(max_rel, 1e-4);
}

}  // namespace
}  // namespace femto
