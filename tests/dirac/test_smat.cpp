#include "dirac/smat.hpp"

#include <gtest/gtest.h>

#include "lattice/rng.hpp"

namespace femto {
namespace {

SMat random_smat(int n, Xoshiro256& rng) {
  SMat m(n);
  for (int i = 0; i < n; ++i)
    for (int j = 0; j < n; ++j) m(i, j) = rng.gaussian();
  // Diagonally dominate to guarantee invertibility.
  for (int i = 0; i < n; ++i) m(i, i) += static_cast<double>(n);
  return m;
}

TEST(SMat, IdentityProperties) {
  const auto id = SMat::identity(5);
  for (int i = 0; i < 5; ++i)
    for (int j = 0; j < 5; ++j)
      EXPECT_EQ(id(i, j), i == j ? 1.0 : 0.0);
}

TEST(SMat, ProductMatchesManual) {
  SMat a(2), b(2);
  a(0, 0) = 1;
  a(0, 1) = 2;
  a(1, 0) = 3;
  a(1, 1) = 4;
  b(0, 0) = 5;
  b(0, 1) = 6;
  b(1, 0) = 7;
  b(1, 1) = 8;
  const auto c = a * b;
  EXPECT_EQ(c(0, 0), 19);
  EXPECT_EQ(c(0, 1), 22);
  EXPECT_EQ(c(1, 0), 43);
  EXPECT_EQ(c(1, 1), 50);
}

TEST(SMat, InverseRoundTrip) {
  Xoshiro256 rng(31);
  for (int n : {1, 2, 4, 8, 16}) {
    const auto a = random_smat(n, rng);
    const auto inv = a.inverse();
    const auto prod = a * inv;
    for (int i = 0; i < n; ++i)
      for (int j = 0; j < n; ++j)
        EXPECT_NEAR(prod(i, j), i == j ? 1.0 : 0.0, 1e-10) << n;
  }
}

TEST(SMat, InverseThrowsOnSingular) {
  SMat z(3);  // all zeros
  EXPECT_THROW(z.inverse(), std::runtime_error);
}

TEST(SMat, TransposeInvolution) {
  Xoshiro256 rng(32);
  const auto a = random_smat(6, rng);
  const auto att = a.transpose().transpose();
  for (int i = 0; i < 6; ++i)
    for (int j = 0; j < 6; ++j) EXPECT_EQ(att(i, j), a(i, j));
}

TEST(SMat, TransposeOfProduct) {
  Xoshiro256 rng(33);
  const auto a = random_smat(5, rng);
  const auto b = random_smat(5, rng);
  const auto lhs = (a * b).transpose();
  const auto rhs = b.transpose() * a.transpose();
  for (int i = 0; i < 5; ++i)
    for (int j = 0; j < 5; ++j) EXPECT_NEAR(lhs(i, j), rhs(i, j), 1e-12);
}

TEST(SMat, ScaledAndSum) {
  Xoshiro256 rng(34);
  const auto a = random_smat(4, rng);
  const auto s = a.scaled(2.0) + a.scaled(-2.0);
  for (int i = 0; i < 4; ++i)
    for (int j = 0; j < 4; ++j) EXPECT_EQ(s(i, j), 0.0);
}

}  // namespace
}  // namespace femto
