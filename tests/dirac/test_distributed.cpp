// Decomposition independence: the distributed Wilson dslash over the
// ranks-as-threads halo machinery must reproduce the single-rank
// optimised kernel for every process grid and communication policy —
// the correctness property the paper's whole comm stack rests on.

#include "dirac/distributed.hpp"

#include <gtest/gtest.h>

#include <mutex>

#include "dirac/wilson.hpp"
#include "lattice/gauge.hpp"

namespace femto {
namespace {

struct GridCase {
  std::array<int, 4> grid;
  comm::CommPolicy policy;
};

class DistributedDslashTest : public ::testing::TestWithParam<GridCase> {};

TEST_P(DistributedDslashTest, MatchesSingleRank) {
  const auto param = GetParam();
  const std::array<int, 4> global{8, 4, 4, 8};
  auto geom =
      std::make_shared<Geometry>(global[0], global[1], global[2], global[3]);
  GaugeField<double> u(geom);
  weak_gauge(u, 777, 0.3);
  SpinorField<double> in(geom, 1, Subset::Full), want(geom, 1, Subset::Full);
  in.gaussian(778);

  for (const bool dagger : {false, true}) {
    // Reference: the optimised single-rank kernel.
    for (int par = 0; par < 2; ++par)
      dslash<double>(parity_view(want, par), u, parity_view(in, 1 - par),
                     par, dagger, {});

    // Distributed application.
    DistributedLattice dl{global, comm::ProcessGrid(param.grid)};
    SpinorField<double> got(geom, 1, Subset::Full);
    std::mutex mu;
    comm::run_ranks(dl.grid.size(), [&](comm::RankHandle& h) {
      auto psi = scatter_spinor(dl, h.rank(), in);
      auto gauge = scatter_gauge(dl, h.rank(), u);
      comm::HaloField out(dl.local_extents(), kDistSpinorReals);
      comm::HaloExchanger ex(dl.grid, param.policy,
                             comm::Granularity::Fused);
      // Gauge halo once, then the collective dslash.
      ex.exchange(h, gauge);
      distributed_dslash(h, dl, ex, psi, gauge, out, dagger);
      std::lock_guard<std::mutex> lk(mu);
      gather_spinor(dl, h.rank(), out, got);
    });

    for (std::int64_t k = 0; k < want.reals(); ++k)
      ASSERT_NEAR(got.data()[k], want.data()[k], 1e-12)
          << "dagger=" << dagger << " k=" << k;
  }
}

INSTANTIATE_TEST_SUITE_P(
    GridsAndPolicies, DistributedDslashTest,
    ::testing::Values(
        GridCase{{1, 1, 1, 1}, comm::CommPolicy::ZeroCopy},
        GridCase{{2, 1, 1, 1}, comm::CommPolicy::ZeroCopy},
        GridCase{{1, 1, 1, 2}, comm::CommPolicy::ZeroCopy},
        GridCase{{2, 1, 1, 2}, comm::CommPolicy::HostStaged},
        GridCase{{2, 2, 1, 2}, comm::CommPolicy::ZeroCopy},
        GridCase{{2, 1, 2, 2}, comm::CommPolicy::DirectRdma},
        GridCase{{4, 1, 1, 2}, comm::CommPolicy::ZeroCopy}),
    [](const ::testing::TestParamInfo<GridCase>& info) {
      const auto& g = info.param.grid;
      std::string name = "g" + std::to_string(g[0]) + std::to_string(g[1]) +
                         std::to_string(g[2]) + std::to_string(g[3]);
      name += "_";
      name += comm::to_string(info.param.policy);
      for (auto& c : name)
        if (c == '-') c = '_';
      return name;
    });

TEST(DistributedDslash, ScatterGatherRoundTrip) {
  const std::array<int, 4> global{4, 4, 4, 8};
  auto geom = std::make_shared<Geometry>(4, 4, 4, 8);
  SpinorField<double> in(geom, 1, Subset::Full), back(geom, 1, Subset::Full);
  in.gaussian(779);
  DistributedLattice dl{global, comm::ProcessGrid({2, 1, 1, 2})};
  std::mutex mu;
  comm::run_ranks(4, [&](comm::RankHandle& h) {
    const auto f = scatter_spinor(dl, h.rank(), in);
    std::lock_guard<std::mutex> lk(mu);
    gather_spinor(dl, h.rank(), f, back);
  });
  for (std::int64_t k = 0; k < in.reals(); ++k)
    ASSERT_EQ(back.data()[k], in.data()[k]);
}

TEST(DistributedDslash, LocalExtentValidation) {
  DistributedLattice dl{{8, 8, 8, 8}, comm::ProcessGrid({3, 1, 1, 1})};
  EXPECT_THROW(dl.local_extents(), std::invalid_argument);
}

TEST(DistributedDslash, HaloTrafficMatchesSurface) {
  const std::array<int, 4> global{8, 4, 4, 8};
  auto geom = std::make_shared<Geometry>(8, 4, 4, 8);
  GaugeField<double> u(geom);
  unit_gauge(u);
  SpinorField<double> in(geom, 1, Subset::Full);
  in.gaussian(780);
  DistributedLattice dl{global, comm::ProcessGrid({2, 1, 1, 2})};
  std::mutex mu;
  comm::HaloStats total;
  comm::run_ranks(4, [&](comm::RankHandle& h) {
    auto psi = scatter_spinor(dl, h.rank(), in);
    auto gauge = scatter_gauge(dl, h.rank(), u);
    comm::HaloField out(dl.local_extents(), kDistSpinorReals);
    comm::HaloExchanger ex(dl.grid, comm::CommPolicy::ZeroCopy,
                           comm::Granularity::Fused);
    ex.exchange(h, gauge);
    comm::HaloStats stats;
    distributed_dslash(h, dl, ex, psi, gauge, out, false, &stats);
    std::lock_guard<std::mutex> lk(mu);
    total += stats;
  });
  // Per rank: 2 split dims x 2 faces; x-faces 4*4*4 sites, t-faces 4*4*4
  // sites; 24 reals each.
  EXPECT_EQ(total.messages, 4 * 4);
  EXPECT_EQ(total.bytes_sent, 4LL * 4 * 64 * 24 * 8);
}

}  // namespace
}  // namespace femto

namespace femto {
namespace {

TEST(DistributedDslash, OverlappedMatchesFused) {
  // The paper's explicit 4-step overlap (pack/post -> interior -> receive
  // -> halo completion) must be bit-identical to the fused application.
  const std::array<int, 4> global{8, 4, 4, 8};
  auto geom = std::make_shared<Geometry>(8, 4, 4, 8);
  GaugeField<double> u(geom);
  weak_gauge(u, 1301, 0.3);
  SpinorField<double> in(geom, 1, Subset::Full);
  in.gaussian(1302);

  for (auto grid : {std::array<int, 4>{2, 1, 1, 2},
                    std::array<int, 4>{2, 2, 1, 1},
                    std::array<int, 4>{1, 1, 1, 4}}) {
    DistributedLattice dl{global, comm::ProcessGrid(grid)};
    SpinorField<double> fused(geom, 1, Subset::Full),
        overlapped(geom, 1, Subset::Full);
    std::mutex mu;
    comm::run_ranks(dl.grid.size(), [&](comm::RankHandle& h) {
      auto psi1 = scatter_spinor(dl, h.rank(), in);
      auto psi2 = scatter_spinor(dl, h.rank(), in);
      auto gauge = scatter_gauge(dl, h.rank(), u);
      comm::HaloField out1(dl.local_extents(), kDistSpinorReals);
      comm::HaloField out2(dl.local_extents(), kDistSpinorReals);
      comm::HaloExchanger ex(dl.grid, comm::CommPolicy::ZeroCopy,
                             comm::Granularity::Fused);
      ex.exchange(h, gauge);
      distributed_dslash(h, dl, ex, psi1, gauge, out1);
      distributed_dslash_overlapped(h, dl, ex, psi2, gauge, out2);
      std::lock_guard<std::mutex> lk(mu);
      gather_spinor(dl, h.rank(), out1, fused);
      gather_spinor(dl, h.rank(), out2, overlapped);
    });
    for (std::int64_t k = 0; k < fused.reals(); ++k)
      ASSERT_EQ(overlapped.data()[k], fused.data()[k])
          << "grid " << grid[0] << grid[1] << grid[2] << grid[3];
  }
}

TEST(DistributedDslash, SplitExchangeMatchesMonolithic) {
  // exchange_begin + exchange_finish fills exactly the same ghosts as
  // exchange().
  const comm::ProcessGrid grid({2, 1, 1, 2});
  comm::run_ranks(grid.size(), [&](comm::RankHandle& h) {
    comm::HaloField a({4, 4, 4, 4}, 6), b({4, 4, 4, 4}, 6);
    for (std::int64_t s = 0; s < a.volume(); ++s)
      for (int r = 0; r < 6; ++r) {
        a.at(s)[r] = 0.5 * static_cast<double>(s + r) + h.rank();
        b.at(s)[r] = a.at(s)[r];
      }
    comm::HaloExchanger ex(grid, comm::CommPolicy::ZeroCopy,
                           comm::Granularity::Fused);
    ex.exchange(h, a);
    ex.exchange_begin(h, b);
    ex.exchange_finish(h, b);
    for (int mu = 0; mu < 4; ++mu)
      for (std::int64_t f = 0; f < a.face_sites(mu); ++f)
        for (int r = 0; r < 6; ++r) {
          ASSERT_EQ(a.ghost_fwd(mu, f)[r], b.ghost_fwd(mu, f)[r]);
          ASSERT_EQ(a.ghost_bwd(mu, f)[r], b.ghost_bwd(mu, f)[r]);
        }
  });
}

}  // namespace
}  // namespace femto
