// Dslash kernel-variant consistency: the scalar reference, the
// fifth-dim-vectorized kernel and the lane-blocked kernel are three
// implementations of one operator.  The vector variants do the same IEEE
// arithmetic per lane as the scalar path (broadcast links, no FMA on the
// baseline target, pack/unpack is pure data movement), so on this build
// they must agree BITWISE with the scalar kernel — including ragged
// l5 % W tails, both parities, and the dagger flag.  Repeat runs of one
// variant must also be bitwise stable.

#include "dirac/wilson.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <memory>
#include <vector>

#include "lattice/gauge.hpp"
#include "simd/vec.hpp"

namespace femto {
namespace {

std::shared_ptr<const Geometry> geom() {
  return std::make_shared<Geometry>(4, 4, 4, 8);
}

template <typename T>
void run_variant(SpinorField<T>& out, const GaugeField<T>& u,
                 const SpinorField<T>& in, bool dagger, DslashVariant v,
                 std::size_t grain) {
  DslashTuning tune;
  tune.grain = grain;
  tune.variant = v;
  for (int par = 0; par < 2; ++par)
    dslash<T>(parity_view(out, par), u, parity_view(in, 1 - par), par, dagger,
              tune);
}

template <typename T>
void check_variants_agree(int l5, bool dagger, std::size_t grain) {
  auto g = geom();
  GaugeField<double> ud(g);
  weak_gauge(ud, 91, 0.3);
  GaugeField<T> u = ud.template convert<T>();

  SpinorField<T> in(g, l5, Subset::Full);
  in.gaussian(17);
  SpinorField<T> ref(g, l5, Subset::Full), got(g, l5, Subset::Full);

  run_variant(ref, u, in, dagger, DslashVariant::kScalar, grain);
  for (DslashVariant v :
       {DslashVariant::kVector, DslashVariant::kVectorBlocked}) {
    run_variant(got, u, in, dagger, v, grain);
    for (std::int64_t k = 0; k < in.reals(); ++k)
      ASSERT_EQ(got.data()[k], ref.data()[k])
          << to_string(v) << " l5=" << l5 << " dagger=" << dagger
          << " k=" << k;
  }
}

TEST(WilsonSimd, VariantsAgreeBitwiseDouble) {
  // l5 = 8 fills W = 2 (double/SSE2) blocks evenly; l5 = 3 and 5 leave
  // ragged tails at every realistic width.
  for (int l5 : {3, 5, 8})
    for (bool dagger : {false, true})
      check_variants_agree<double>(l5, dagger, 16);
}

TEST(WilsonSimd, VariantsAgreeBitwiseFloat) {
  for (int l5 : {3, 8})
    for (bool dagger : {false, true})
      check_variants_agree<float>(l5, dagger, 16);
}

TEST(WilsonSimd, VariantsAgreeAcrossGrains) {
  // The launch grain partitions sites across workers; no variant may let
  // it leak into the arithmetic.
  auto g = geom();
  GaugeField<double> u(g);
  weak_gauge(u, 23, 0.25);
  const int l5 = 6;
  SpinorField<double> in(g, l5, Subset::Full);
  in.gaussian(29);
  SpinorField<double> ref(g, l5, Subset::Full), got(g, l5, Subset::Full);
  run_variant(ref, u, in, false, DslashVariant::kVector, 16);
  for (std::size_t grain : {std::size_t{1}, std::size_t{64},
                            std::size_t{4096}}) {
    run_variant(got, u, in, false, DslashVariant::kVector, grain);
    for (std::int64_t k = 0; k < in.reals(); ++k)
      ASSERT_EQ(got.data()[k], ref.data()[k]) << "grain=" << grain
                                              << " k=" << k;
  }
}

TEST(WilsonSimd, RepeatRunsBitwiseStable) {
  auto g = geom();
  GaugeField<double> u(g);
  weak_gauge(u, 37, 0.25);
  const int l5 = 5;
  SpinorField<double> in(g, l5, Subset::Full);
  in.gaussian(41);
  SpinorField<double> out(g, l5, Subset::Full);

  for (DslashVariant v : {DslashVariant::kScalar, DslashVariant::kVector,
                          DslashVariant::kVectorBlocked}) {
    std::vector<std::uint64_t> first;
    for (int rep = 0; rep < 3; ++rep) {
      run_variant(out, u, in, false, v, 64);
      if (rep == 0) {
        first.reserve(static_cast<std::size_t>(in.reals()));
        for (std::int64_t k = 0; k < in.reals(); ++k) {
          std::uint64_t b = 0;
          std::memcpy(&b, out.data() + k, sizeof(b));
          first.push_back(b);
        }
      } else {
        for (std::int64_t k = 0; k < in.reals(); ++k) {
          std::uint64_t b = 0;
          std::memcpy(&b, out.data() + k, sizeof(b));
          ASSERT_EQ(b, first[static_cast<std::size_t>(k)])
              << to_string(v) << " rep=" << rep << " k=" << k;
        }
      }
    }
  }
}

TEST(WilsonSimd, WilsonOpAgreesAcrossVariants) {
  auto g = geom();
  GaugeField<double> u(g);
  weak_gauge(u, 53, 0.3);
  const int l5 = 4;
  SpinorField<double> in(g, l5, Subset::Full);
  in.gaussian(59);
  SpinorField<double> ref(g, l5, Subset::Full), got(g, l5, Subset::Full);

  DslashTuning scalar;
  scalar.variant = DslashVariant::kScalar;
  wilson_op<double>(ref, u, in, 0.1, false, scalar);
  for (DslashVariant v :
       {DslashVariant::kVector, DslashVariant::kVectorBlocked}) {
    DslashTuning tune;
    tune.variant = v;
    wilson_op<double>(got, u, in, 0.1, false, tune);
    for (std::int64_t k = 0; k < in.reals(); ++k)
      ASSERT_EQ(got.data()[k], ref.data()[k]) << to_string(v) << " k=" << k;
  }
}

}  // namespace
}  // namespace femto
