// Wilson dslash validation:
//  * against an independent naive implementation that uses the full gamma
//    matrices (no projection trick),
//  * gamma_5 hermiticity (the dagger flag),
//  * free-field plane-wave eigenvalues (checks every sign convention and
//    the antiperiodic time boundary at once).

#include "dirac/wilson.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "lattice/blas.hpp"
#include "lattice/gauge.hpp"

namespace femto {
namespace {

std::shared_ptr<const Geometry> geom(int l, int t) {
  return std::make_shared<Geometry>(l, l, l, t);
}

/// Naive reference dslash on FULL fields using explicit gamma matrices.
void naive_dslash(SpinorField<double>& out, const GaugeField<double>& u,
                  const SpinorField<double>& in, bool dagger) {
  const Geometry& g = u.geom();
  const int l5 = in.l5();
  for (int s = 0; s < l5; ++s)
    for (std::int64_t site = 0; site < g.volume(); ++site) {
      Spinor<double> acc;
      const int par = site >= g.half_volume() ? 1 : 0;
      const std::int64_t cb = site - par * g.half_volume();
      for (int mu = 0; mu < 4; ++mu) {
        // Forward: U_mu(x) (1 -+ g_mu) psi(x+mu) * phase
        {
          const auto xf = g.site_fwd(site, mu);
          auto p = in.load(s, xf);
          auto gp = apply_gamma(mu, p);
          gp *= dagger ? -1.0 : 1.0;
          auto proj = p;
          proj -= gp;
          const double ph = g.phase_fwd(par, cb, mu);
          const auto link = u.load(mu, site);
          for (int sp = 0; sp < kNs; ++sp)
            acc[sp] += ph * (link * proj[sp]);
        }
        // Backward: U_mu(x-mu)^dag (1 +- g_mu) psi(x-mu) * phase
        {
          const auto xb = g.site_bwd(site, mu);
          auto p = in.load(s, xb);
          auto gp = apply_gamma(mu, p);
          gp *= dagger ? -1.0 : 1.0;
          auto proj = p;
          proj += gp;
          const double ph = g.phase_bwd(par, cb, mu);
          const auto link = u.load(mu, xb);
          for (int sp = 0; sp < kNs; ++sp)
            acc[sp] += ph * adj_mul(link, proj[sp]);
        }
      }
      out.store(s, site, acc);
    }
}

TEST(WilsonDslash, MatchesNaiveImplementation) {
  auto g = geom(4, 4);
  GaugeField<double> u(g);
  weak_gauge(u, 51, 0.3);
  const int l5 = 2;
  SpinorField<double> in(g, l5, Subset::Full), want(g, l5, Subset::Full),
      got(g, l5, Subset::Full);
  in.gaussian(52);
  for (bool dagger : {false, true}) {
    naive_dslash(want, u, in, dagger);
    for (int par = 0; par < 2; ++par)
      dslash<double>(parity_view(got, par), u, parity_view(in, 1 - par), par,
                     dagger, {});
    for (std::int64_t k = 0; k < in.reals(); ++k)
      ASSERT_NEAR(got.data()[k], want.data()[k], 1e-12)
          << "dagger=" << dagger << " k=" << k;
  }
}

TEST(WilsonDslash, Gamma5Hermiticity) {
  // <u, D v> == <D^dag u, v> with D^dag from the dagger flag.
  auto g = geom(4, 4);
  GaugeField<double> ugf(g);
  hot_gauge(ugf, 53);
  SpinorField<double> uf(g, 1, Subset::Full), vf(g, 1, Subset::Full),
      dv(g, 1, Subset::Full), du(g, 1, Subset::Full);
  uf.gaussian(54);
  vf.gaussian(55);
  for (int par = 0; par < 2; ++par) {
    dslash<double>(parity_view(dv, par), ugf, parity_view(vf, 1 - par), par,
                   false, {});
    dslash<double>(parity_view(du, par), ugf, parity_view(uf, 1 - par), par,
                   true, {});
  }
  const auto lhs = blas::cdot(uf, dv);
  const auto rhs = blas::cdot(du, vf);
  EXPECT_NEAR(lhs.re, rhs.re, 1e-9 * std::abs(lhs.re) + 1e-9);
  EXPECT_NEAR(lhs.im, rhs.im, 1e-9 * std::abs(lhs.re) + 1e-9);
}

TEST(WilsonDslash, Gamma5DGamma5EqualsDagger) {
  auto g = geom(4, 4);
  GaugeField<double> ugf(g);
  hot_gauge(ugf, 56);
  SpinorField<double> in(g, 1, Subset::Full), a(g, 1, Subset::Full),
      b(g, 1, Subset::Full), tmp(g, 1, Subset::Full);
  in.gaussian(57);
  // a = g5 D g5 in
  for (std::int64_t s = 0; s < g->volume(); ++s)
    tmp.store(0, s, apply_gamma5(in.load(0, s)));
  for (int par = 0; par < 2; ++par)
    dslash<double>(parity_view(a, par), ugf, parity_view(tmp, 1 - par), par,
                   false, {});
  for (std::int64_t s = 0; s < g->volume(); ++s)
    a.store(0, s, apply_gamma5(a.load(0, s)));
  // b = D^dag in
  for (int par = 0; par < 2; ++par)
    dslash<double>(parity_view(b, par), ugf, parity_view(in, 1 - par), par,
                   true, {});
  for (std::int64_t k = 0; k < in.reals(); ++k)
    ASSERT_NEAR(a.data()[k], b.data()[k], 1e-12);
}

TEST(WilsonDslash, FreeFieldPlaneWaveEigenvalue) {
  // On the free field, M^dag M acts on plane waves with eigenvalue
  //   (4 + m - sum_mu cos p_mu)^2 + sum_mu sin^2 p_mu ,
  // with p_t = (2 n_t + 1) pi / T from the antiperiodic boundary.
  const int l = 4, t = 8;
  auto g = geom(l, t);
  GaugeField<double> u(g);
  unit_gauge(u);
  const double mass = 0.2;

  const std::array<int, 4> n{1, 0, 2, 1};
  std::array<double, 4> p{};
  for (int mu = 0; mu < 3; ++mu)
    p[mu] = 2.0 * std::numbers::pi * n[mu] / l;
  p[3] = (2.0 * n[3] + 1.0) * std::numbers::pi / t;

  SpinorField<double> psi(g, 1, Subset::Full);
  for (std::int64_t s = 0; s < g->volume(); ++s) {
    const auto x = g->coord(s);
    double phase = 0;
    for (int mu = 0; mu < 4; ++mu) phase += p[mu] * x[mu];
    Spinor<double> sp;
    // Arbitrary fixed spinor structure.
    for (int spin = 0; spin < kNs; ++spin)
      for (int c = 0; c < kNc; ++c)
        sp[spin][c] = Cplx<double>(std::cos(phase), std::sin(phase)) *
                      Cplx<double>(0.3 * spin + 0.1, 0.2 * c - 0.1);
    psi.store(0, s, sp);
  }

  SpinorField<double> m_psi(g, 1, Subset::Full),
      mm_psi(g, 1, Subset::Full);
  wilson_op<double>(m_psi, u, psi, mass, false, {});
  wilson_op<double>(mm_psi, u, m_psi, mass, true, {});

  double cos_sum = 0, sin2_sum = 0;
  for (int mu = 0; mu < 4; ++mu) {
    cos_sum += std::cos(p[mu]);
    sin2_sum += std::sin(p[mu]) * std::sin(p[mu]);
  }
  const double lambda =
      (4.0 + mass - cos_sum) * (4.0 + mass - cos_sum) + sin2_sum;

  // ||M^dag M psi - lambda psi|| must vanish.
  blas::axpy(-lambda, psi, mm_psi);
  EXPECT_LT(blas::norm2(mm_psi), 1e-18 * lambda * lambda *
                                     blas::norm2(psi));
}

TEST(WilsonDslash, LinearInInput) {
  auto g = geom(4, 4);
  GaugeField<double> u(g);
  hot_gauge(u, 58);
  SpinorField<double> a(g, 1, Subset::Odd), b(g, 1, Subset::Odd),
      ab(g, 1, Subset::Odd), da(g, 1, Subset::Even), db(g, 1, Subset::Even),
      dab(g, 1, Subset::Even);
  a.gaussian(59);
  b.gaussian(60);
  ab = a;
  blas::axpy(2.5, b, ab);
  dslash<double>(view(da), u, cview(a), 0, false, {});
  dslash<double>(view(db), u, cview(b), 0, false, {});
  dslash<double>(view(dab), u, cview(ab), 0, false, {});
  blas::axpy(2.5, db, da);
  blas::axpy(-1.0, da, dab);
  EXPECT_LT(blas::norm2(dab), 1e-20 * blas::norm2(da));
}

TEST(WilsonDslash, FlopCountPerApplication) {
  auto g = geom(4, 4);
  GaugeField<double> u(g);
  unit_gauge(u);
  SpinorField<double> in(g, 3, Subset::Odd), out(g, 3, Subset::Even);
  in.gaussian(61);
  flops::reset();
  dslash<double>(view(out), u, cview(in), 0, false, {});
  EXPECT_EQ(flops::get(), 1320 * g->half_volume() * 3);
}

TEST(WilsonDslash, FiveDimSlicesAreIndependent) {
  // Dslash acts slice by slice: slice s of the output depends only on
  // slice s of the input.
  auto g = geom(4, 4);
  GaugeField<double> u(g);
  hot_gauge(u, 62);
  SpinorField<double> in(g, 2, Subset::Odd), out(g, 2, Subset::Even);
  in.gaussian(63);
  dslash<double>(view(out), u, cview(in), 0, false, {});

  // Solve slice 1 alone and compare.
  SpinorField<double> in1(g, 1, Subset::Odd), out1(g, 1, Subset::Even);
  for (std::int64_t i = 0; i < in1.sites(); ++i)
    in1.store(0, i, in.load(1, i));
  dslash<double>(view(out1), u, cview(in1), 0, false, {});
  for (std::int64_t i = 0; i < out1.sites(); ++i) {
    const auto a = out1.load(0, i);
    const auto b = out.load(1, i);
    for (int sp = 0; sp < kNs; ++sp)
      for (int c = 0; c < kNc; ++c)
        ASSERT_EQ(a[sp][c].re, b[sp][c].re);
  }
}

}  // namespace
}  // namespace femto
