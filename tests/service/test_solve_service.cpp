// Async solve service: exactly-once completion under many producers,
// correct solutions (each future's x solves the full Mobius system), and
// determinism — whatever batches the queue timing produces, every result
// is bitwise the one a solo DwfSolver::solve would return, because the
// block solvers keep per-RHS trajectories independent of batch mates.

#include "service/solve_service.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <future>
#include <memory>
#include <thread>
#include <vector>

#include "lattice/gauge.hpp"
#include "obs/flow.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace femto {
namespace {

std::shared_ptr<const Geometry> geom44() {
  return std::make_shared<Geometry>(4, 4, 4, 4);
}

const MobiusParams kParams{6, -1.8, 1.5, 0.5, 0.1};

std::shared_ptr<const GaugeField<double>> make_gauge(std::uint64_t seed) {
  auto u = std::make_shared<GaugeField<double>>(geom44());
  weak_gauge(*u, seed, 0.25);
  return u;
}

std::shared_ptr<const SpinorField<double>> make_source(
    const std::shared_ptr<const GaugeField<double>>& u, std::uint64_t seed) {
  auto b = std::make_shared<SpinorField<double>>(u->geom_ptr(), kParams.l5,
                                                 Subset::Full);
  b->gaussian(seed);
  return b;
}

double full_residual(const MobiusOperator<double>& op,
                     const SpinorField<double>& x,
                     const SpinorField<double>& b) {
  SpinorField<double> check(b.geom_ptr(), b.l5(), Subset::Full);
  op.apply_full(check, x);
  blas::axpy(-1.0, b, check);
  return std::sqrt(blas::norm2(check) / blas::norm2(b));
}

TEST(SolveService, BatchedResultsMatchSoloSolveBitwise) {
  auto u = make_gauge(401);
  SolveServiceConfig cfg;
  cfg.max_batch = 4;
  cfg.solver.tol = 1e-10;

  std::vector<std::shared_ptr<const SpinorField<double>>> b;
  for (std::uint64_t r = 0; r < 5; ++r) b.push_back(make_source(u, 410 + r));

  std::vector<std::future<SolveOutcome>> futs;
  {
    SolveService svc(cfg);
    for (const auto& src : b)
      futs.push_back(svc.submit(SolveRequest{u, kParams, src}));
    svc.drain();
    EXPECT_EQ(svc.pending(), 0u);
  }

  DwfSolver solo(u, kParams, cfg.solver);
  for (std::size_t r = 0; r < b.size(); ++r) {
    SolveOutcome out = futs[r].get();
    ASSERT_TRUE(out.x != nullptr);
    ASSERT_TRUE(out.stats.converged) << "r=" << r;
    SpinorField<double> want(u->geom_ptr(), kParams.l5, Subset::Full);
    SolveResult ws = solo.solve(want, *b[r]);
    EXPECT_EQ(out.stats.iterations, ws.iterations) << "r=" << r;
    for (std::int64_t k = 0; k < want.reals(); ++k)
      ASSERT_EQ(out.x->data()[k], want.data()[k]) << "r=" << r << " k=" << k;
  }
}

TEST(SolveService, ManyProducersExactlyOnce) {
  auto u = make_gauge(402);
  SolveServiceConfig cfg;
  cfg.max_batch = 3;
  cfg.workers = 2;
  cfg.solver.tol = 1e-8;

  const int kProducers = 4, kPerProducer = 3;
  std::vector<std::shared_ptr<const SpinorField<double>>> b;
  for (std::uint64_t r = 0; r < kProducers * kPerProducer; ++r)
    b.push_back(make_source(u, 420 + r));

  SolveService svc(cfg);
  std::vector<std::future<SolveOutcome>> futs(b.size());
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        const std::size_t r =
            static_cast<std::size_t>(p) * kPerProducer + i;
        futs[r] = svc.submit(SolveRequest{u, kParams, b[r]});
      }
    });
  }
  for (auto& t : producers) t.join();
  svc.drain();

  // Every future resolves exactly once with a correct solution.
  MobiusOperator<double> op(u, kParams);
  for (std::size_t r = 0; r < b.size(); ++r) {
    ASSERT_TRUE(futs[r].valid()) << "r=" << r;
    SolveOutcome out = futs[r].get();
    ASSERT_TRUE(out.stats.converged) << "r=" << r;
    EXPECT_LT(full_residual(op, *out.x, *b[r]), 1e-6) << "r=" << r;
  }
}

TEST(SolveService, IncompatibleRequestsNeverBatchTogether) {
  auto u1 = make_gauge(403);
  auto u2 = make_gauge(404);
  MobiusParams heavier = kParams;
  heavier.mf = 0.2;

  SolveServiceConfig cfg;
  cfg.max_batch = 8;
  cfg.solver.tol = 1e-8;
  SolveService svc(cfg);

  std::vector<std::future<SolveOutcome>> futs;
  std::vector<std::shared_ptr<const SpinorField<double>>> b;
  std::vector<const GaugeField<double>*> us;
  std::vector<MobiusParams> ps;
  for (std::uint64_t r = 0; r < 6; ++r) {
    auto& u = (r % 2 == 0) ? u1 : u2;
    const MobiusParams p = (r == 5) ? heavier : kParams;
    b.push_back(make_source(u, 430 + r));
    us.push_back(u.get());
    ps.push_back(p);
    futs.push_back(svc.submit(SolveRequest{u, p, b.back()}));
  }
  svc.drain();

  for (std::size_t r = 0; r < futs.size(); ++r) {
    SolveOutcome out = futs[r].get();
    ASSERT_TRUE(out.stats.converged) << "r=" << r;
    // Check against the right operator: a cross-batched request would
    // have been solved on the wrong configuration and fail loudly here.
    std::shared_ptr<const GaugeField<double>> u =
        us[r] == u1.get() ? u1 : u2;
    MobiusOperator<double> op(u, ps[r]);
    EXPECT_LT(full_residual(op, *out.x, *b[r]), 1e-6) << "r=" << r;
  }
}

TEST(SolveService, MetricsAndDestructorDrain) {
  auto u = make_gauge(405);
  SolveServiceConfig cfg;
  cfg.max_batch = 4;
  cfg.solver.tol = 1e-8;

  const std::int64_t completed0 =
      obs::Registry::global().counter("solve_service.completed").get();
  const std::int64_t batches0 =
      obs::Registry::global().counter("solve_service.batches").get();

  std::vector<std::future<SolveOutcome>> futs;
  std::vector<std::shared_ptr<const SpinorField<double>>> b;
  {
    SolveService svc(cfg);
    for (std::uint64_t r = 0; r < 4; ++r) {
      b.push_back(make_source(u, 440 + r));
      futs.push_back(svc.submit(SolveRequest{u, kParams, b.back()}));
    }
    // No drain(): the destructor must resolve everything.
  }
  for (auto& f : futs) EXPECT_TRUE(f.get().stats.converged);

  const std::int64_t completed =
      obs::Registry::global().counter("solve_service.completed").get() -
      completed0;
  const std::int64_t batches =
      obs::Registry::global().counter("solve_service.batches").get() -
      batches0;
  EXPECT_EQ(completed, 4);
  EXPECT_GE(batches, 1);
  EXPECT_LE(batches, 4);
  EXPECT_GT(
      obs::Registry::global().histogram("solve_service.batch_size").count(),
      0);
}

TEST(SolveService, DestructUnderLoadResolvesEveryFuture) {
  // Shutdown-ordering regression: tear the service down the instant the
  // last submit returns, with multiple workers mid-flight and a queue deep
  // enough that batches (including a second solver build for the second
  // gauge) are still pending.  The destructor must drain — waiting with
  // mu_ released so workers can fulfil promises — before raising the stop
  // flag, so every future resolves with a converged solution.
  auto u1 = make_gauge(407);
  auto u2 = make_gauge(408);
  SolveServiceConfig cfg;
  cfg.max_batch = 2;
  cfg.workers = 3;
  cfg.solver.tol = 1e-8;

  std::vector<std::future<SolveOutcome>> futs;
  std::vector<std::shared_ptr<const SpinorField<double>>> b;
  std::vector<const GaugeField<double>*> us;
  {
    SolveService svc(cfg);
    for (std::uint64_t r = 0; r < 10; ++r) {
      auto& u = (r % 2 == 0) ? u1 : u2;
      b.push_back(make_source(u, 470 + r));
      us.push_back(u.get());
      futs.push_back(svc.submit(SolveRequest{u, kParams, b.back()}));
    }
    // No drain(), no sleep: destruct under load.
  }
  for (std::size_t r = 0; r < futs.size(); ++r) {
    ASSERT_TRUE(futs[r].valid()) << "r=" << r;
    SolveOutcome out = futs[r].get();
    ASSERT_TRUE(out.stats.converged) << "r=" << r;
    std::shared_ptr<const GaugeField<double>> u =
        us[r] == u1.get() ? u1 : u2;
    MobiusOperator<double> op(u, kParams);
    EXPECT_LT(full_residual(op, *out.x, *b[r]), 1e-6) << "r=" << r;
  }
}

TEST(SolveService, AutotunedBatchBoundFeedsBack) {
  auto u = make_gauge(406);
  SolveServiceConfig cfg;
  cfg.max_batch = 4;
  cfg.autotune = true;
  cfg.solver.tol = 1e-8;

  SolveService svc(cfg);
  // Before any solver is built the bound is the configured cap.
  EXPECT_EQ(svc.effective_max_batch(), cfg.max_batch);

  std::vector<std::future<SolveOutcome>> futs;
  std::vector<std::shared_ptr<const SpinorField<double>>> b;
  for (std::uint64_t r = 0; r < 4; ++r) {
    b.push_back(make_source(u, 460 + r));
    futs.push_back(svc.submit(SolveRequest{u, kParams, b.back()}));
  }
  svc.drain();
  for (auto& f : futs) EXPECT_TRUE(f.get().stats.converged);

  // The first solver build ran autotune_multi and installed the sweep's
  // sweet spot as the live bound, clamped to [1, max_batch].
  EXPECT_GE(svc.effective_max_batch(), 1u);
  EXPECT_LE(svc.effective_max_batch(), cfg.max_batch);
  EXPECT_EQ(obs::Registry::global()
                .gauge("solve_service.effective_max_batch")
                .get(),
            static_cast<double>(svc.effective_max_batch()));
}

// Femtoscope causal layer (DESIGN.md §15): every traced submit records a
// flow-out span that the claiming worker's queue_wait flow-in matches;
// the edge's weight is the request's time-in-queue.
TEST(SolveService, SubmitClaimPairsAsFlowEdges) {
  obs::set_trace_enabled(true);
  obs::trace_clear();
  auto u = make_gauge(409);
  SolveServiceConfig cfg;
  cfg.max_batch = 2;
  cfg.solver.tol = 1e-8;

  constexpr std::uint64_t kReqs = 3;
  std::vector<std::future<SolveOutcome>> futs;
  std::vector<std::shared_ptr<const SpinorField<double>>> b;
  {
    SolveService svc(cfg);
    for (std::uint64_t r = 0; r < kReqs; ++r) {
      b.push_back(make_source(u, 480 + r));
      futs.push_back(svc.submit(SolveRequest{u, kParams, b.back()}));
    }
    svc.drain();
  }
  for (auto& f : futs) EXPECT_TRUE(f.get().stats.converged);

  const auto snap = obs::trace_snapshot();
  std::size_t service_edges = 0;
  for (const auto& e : obs::flow_edges(snap)) {
    if (std::string(e.out.name) != "submit") continue;
    ++service_edges;
    EXPECT_STREQ(e.in.name, "queue_wait");
    EXPECT_GE(e.wait_ns, 0);
  }
  EXPECT_EQ(service_edges, kReqs);
  obs::trace_clear();
}

}  // namespace
}  // namespace femto
