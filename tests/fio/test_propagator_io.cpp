#include "fio/propagator_io.hpp"

#include <gtest/gtest.h>

#include <cstdio>

namespace femto::fio {
namespace {

std::shared_ptr<const Geometry> geom44() {
  return std::make_shared<Geometry>(4, 4, 4, 4);
}

TEST(PropagatorIo, RoundTripPreservesFieldAndMeta) {
  auto g = geom44();
  SpinorField<double> prop(g, 6, Subset::Full);
  prop.gaussian(301);

  File f;
  PropagatorMeta meta;
  meta.ensemble = "testens";
  meta.config_id = 42;
  meta.mf = 0.01;
  meta.residual = 1e-9;
  write_propagator(f, "p0", prop, meta);

  SpinorField<double> back(g, 6, Subset::Full);
  const auto m2 = read_propagator(f, "p0", back);
  EXPECT_EQ(m2.ensemble, "testens");
  EXPECT_EQ(m2.config_id, 42);
  EXPECT_NEAR(m2.residual, 1e-9, 1e-15);
  for (std::int64_t k = 0; k < prop.reals(); ++k)
    ASSERT_EQ(back.data()[k], prop.data()[k]);
}

TEST(PropagatorIo, GeometryMismatchRejected) {
  auto g = geom44();
  SpinorField<double> prop(g, 6, Subset::Full);
  File f;
  write_propagator(f, "p0", prop, {});

  // Wrong L5.
  SpinorField<double> wrong_l5(g, 8, Subset::Full);
  EXPECT_THROW(read_propagator(f, "p0", wrong_l5), IoError);
  // Wrong lattice.
  auto g2 = std::make_shared<Geometry>(4, 4, 4, 8);
  SpinorField<double> wrong_geom(g2, 6, Subset::Full);
  EXPECT_THROW(read_propagator(f, "p0", wrong_geom), IoError);
  // Wrong subset.
  SpinorField<double> wrong_sub(g, 6, Subset::Odd);
  EXPECT_THROW(read_propagator(f, "p0", wrong_sub), IoError);
}

TEST(PropagatorIo, CorrelatorRoundTrip) {
  File f;
  write_correlator(f, "nucleon", {1.0, 0.5, 0.25}, "test corr");
  const auto c = read_correlator(f, "nucleon");
  ASSERT_EQ(c.size(), 3u);
  EXPECT_EQ(c[2], 0.25);
}

TEST(PropagatorIo, DiskRoundTripThroughSave) {
  const std::string path = "/tmp/femto_prop_io.bin";
  auto g = geom44();
  SpinorField<double> prop(g, 4, Subset::Full);
  prop.gaussian(302);
  {
    File f;
    write_propagator(f, "pX", prop, {.ensemble = "disk", .config_id = 7});
    f.save(path);
  }
  File f = File::load(path);
  SpinorField<double> back(g, 4, Subset::Full);
  const auto meta = read_propagator(f, "pX", back);
  EXPECT_EQ(meta.ensemble, "disk");
  for (std::int64_t k = 0; k < prop.reals(); k += 101)
    ASSERT_EQ(back.data()[k], prop.data()[k]);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace femto::fio

namespace femto::fio {
namespace {

TEST(GaugeIo, RoundTripPreservesLinksAndPlaquette) {
  auto g = std::make_shared<Geometry>(4, 4, 4, 4);
  GaugeField<double> u(g);
  // Fill with a recognizable deterministic pattern.
  for (std::int64_t k = 0; k < u.bytes() / 8; ++k)
    u.data()[k] = 0.001 * static_cast<double>(k % 977);

  File f;
  write_gauge(f, "cfg7", u, 0.5931);
  GaugeField<double> back(g);
  const double plaq = read_gauge(f, "cfg7", back);
  EXPECT_NEAR(plaq, 0.5931, 1e-12);
  for (std::int64_t k = 0; k < u.bytes() / 8; k += 53)
    ASSERT_EQ(back.data()[k], u.data()[k]);
}

TEST(GaugeIo, GeometryMismatchRejected) {
  auto g = std::make_shared<Geometry>(4, 4, 4, 4);
  GaugeField<double> u(g);
  File f;
  write_gauge(f, "cfg", u, 1.0);
  auto g2 = std::make_shared<Geometry>(4, 4, 4, 8);
  GaugeField<double> wrong(g2);
  EXPECT_THROW(read_gauge(f, "cfg", wrong), IoError);
}

}  // namespace
}  // namespace femto::fio
