#include "fio/fio.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

namespace femto::fio {
namespace {

TEST(Crc32, KnownVector) {
  // CRC-32 of "123456789" is the classic check value 0xCBF43926.
  const char* s = "123456789";
  EXPECT_EQ(crc32(s, 9), 0xCBF43926u);
}

TEST(Crc32, EmptyAndIncremental) {
  EXPECT_EQ(crc32(nullptr, 0), 0u);
  const char* s = "abcdef";
  const auto whole = crc32(s, 6);
  EXPECT_NE(whole, crc32(s, 5));
}

TEST(FioFile, WriteReadTypedDatasets) {
  File f;
  f.write_f64("/a/x", {1.5, 2.5, 3.5});
  f.write_f32("/a/y", {1.0f, 2.0f});
  f.write_i64("/b/z", {10, 20, 30, 40});
  EXPECT_EQ(f.read_f64("/a/x")[1], 2.5);
  EXPECT_EQ(f.read_f32("/a/y")[0], 1.0f);
  EXPECT_EQ(f.read_i64("/b/z")[3], 40);
  EXPECT_EQ(f.n_datasets(), 3u);
}

TEST(FioFile, DtypeMismatchThrows) {
  File f;
  f.write_f64("/x", {1.0});
  EXPECT_THROW(f.read_f32("/x"), IoError);
  EXPECT_THROW(f.read_i64("/x"), IoError);
}

TEST(FioFile, MissingDatasetThrows) {
  File f;
  EXPECT_THROW(f.read_f64("/nope"), IoError);
  EXPECT_FALSE(f.contains("/nope"));
}

TEST(FioFile, ShapeValidation) {
  File f;
  f.write_f64("/m", {1, 2, 3, 4, 5, 6}, {2, 3});
  EXPECT_EQ(f.dataset("/m").shape.size(), 2u);
  EXPECT_EQ(f.dataset("/m").elements(), 6);
  EXPECT_THROW(f.write_f64("/bad", {1, 2, 3}, {2, 2}), IoError);
}

TEST(FioFile, Attributes) {
  File f;
  f.write_f64("/p", {1.0});
  f.set_attr("/p", "ensemble", "a09m310");
  f.set_attr_f64("/p", "mf", 0.00951);
  EXPECT_EQ(f.attr("/p", "ensemble").value(), "a09m310");
  EXPECT_NEAR(f.attr_f64("/p", "mf"), 0.00951, 1e-12);
  EXPECT_FALSE(f.attr("/p", "missing").has_value());
  EXPECT_THROW(f.attr_f64("/p", "missing"), IoError);
}

TEST(FioFile, ListWithPrefix) {
  File f;
  f.write_f64("/prop/a", {1});
  f.write_f64("/prop/b", {2});
  f.write_f64("/corr/c", {3});
  EXPECT_EQ(f.list("/prop").size(), 2u);
  EXPECT_EQ(f.list().size(), 3u);
  EXPECT_EQ(f.list("/corr")[0], "/corr/c");
}

TEST(FioFile, SaveLoadRoundTrip) {
  const std::string path = "/tmp/femto_fio_test.bin";
  {
    File f;
    f.write_f64("/data/series", {3.14, 2.71, 1.41}, {3});
    f.write_i64("/meta/ids", {7, 8});
    f.set_attr("/data/series", "desc", "round trip");
    f.save(path);
  }
  File g = File::load(path);
  EXPECT_EQ(g.read_f64("/data/series")[0], 3.14);
  EXPECT_EQ(g.read_i64("/meta/ids")[1], 8);
  EXPECT_EQ(g.attr("/data/series", "desc").value(), "round trip");
  std::remove(path.c_str());
}

TEST(FioFile, CorruptionDetected) {
  const std::string path = "/tmp/femto_fio_corrupt.bin";
  {
    File f;
    std::vector<double> big(256, 1.25);
    f.write_f64("/payload", big);
    f.save(path);
  }
  // Flip a byte in the middle of the payload.
  {
    std::fstream s(path,
                   std::ios::in | std::ios::out | std::ios::binary);
    s.seekp(200);
    char c = 0x5A;
    s.write(&c, 1);
  }
  EXPECT_THROW(File::load(path), IoError);
  std::remove(path.c_str());
}

TEST(FioFile, BadMagicRejected) {
  const std::string path = "/tmp/femto_fio_magic.bin";
  {
    std::ofstream s(path, std::ios::binary);
    s << "this is not a femto file at all, padding padding";
  }
  EXPECT_THROW(File::load(path), IoError);
  std::remove(path.c_str());
}

TEST(FioFile, MissingFileThrows) {
  EXPECT_THROW(File::load("/tmp/no_such_femto_file.bin"), IoError);
}

TEST(FioFile, OverwriteDataset) {
  File f;
  f.write_f64("/x", {1.0});
  f.write_f64("/x", {2.0, 3.0});
  EXPECT_EQ(f.read_f64("/x").size(), 2u);
}

}  // namespace
}  // namespace femto::fio
