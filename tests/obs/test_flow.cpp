// Flow-edge matching and the critical-path reducer (DESIGN.md §15).  The
// DP tests run on hand-built snapshots with exact timestamps, so the
// expected chain is fully deterministic; one end-to-end test drives the
// real recording API from rank-tagged threads.

#include "obs/flow.hpp"

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "obs/trace.hpp"

namespace femto::obs {
namespace {

TraceEvent ev(const char* cat, const char* name, std::int64_t t0,
              std::int64_t dur, std::uint32_t tid, std::int32_t rank,
              std::uint64_t flow, FlowDir dir) {
  TraceEvent e;
  e.category = cat;
  e.name = name;
  e.t0_ns = t0;
  e.dur_ns = dur;
  e.tid = tid;
  e.rank = rank;
  e.flow_id = flow;
  e.flow = dir;
  return e;
}

TEST(FlowEdges, MatchesPairsAndCountsOrphans) {
  TraceSnapshot snap;
  // flow 1: rank0 sends at [0,10], rank1 waits [5,105].
  snap.events.push_back(
      ev("comm", "send", 0, 10, 0, 0, 1, FlowDir::Out));
  snap.events.push_back(
      ev("comm", "recv", 5, 100, 1, 1, 1, FlowDir::In));
  // flow 7: producer only -- consumer never recorded.
  snap.events.push_back(
      ev("service", "submit", 20, 5, 0, 0, 7, FlowDir::Out));

  const auto edges = flow_edges(snap);
  ASSERT_EQ(edges.size(), 1u);
  EXPECT_EQ(edges[0].out.rank, 0);
  EXPECT_EQ(edges[0].in.rank, 1);
  EXPECT_EQ(edges[0].wait_ns, 100);

  const auto report = critical_path(snap);
  EXPECT_EQ(report.edges_matched, 1);
  EXPECT_EQ(report.edges_unmatched, 1);
}

TEST(CriticalPath, ChainsEdgesAcrossSharedTimelines) {
  // rank0 --flow1--> rank1 --flow2--> rank2, plus a fat unrelated edge on
  // a disjoint pair of ranks that a naive "largest single wait" would
  // pick but that cannot chain.
  TraceSnapshot snap;
  snap.events.push_back(ev("comm", "send", 0, 10, 0, 0, 1, FlowDir::Out));
  snap.events.push_back(ev("comm", "recv", 50, 150, 1, 1, 1, FlowDir::In));
  // rank1's forward hand-off completes AFTER its inbound wait resolved.
  snap.events.push_back(
      ev("comm", "send", 210, 10, 1, 1, 2, FlowDir::Out));
  snap.events.push_back(
      ev("comm", "recv", 100, 400, 2, 2, 2, FlowDir::In));
  // Disjoint big edge rank3 -> rank4: weight 520 alone, but 150+400=550
  // beats it as a chain.
  snap.events.push_back(ev("comm", "send", 0, 5, 3, 3, 9, FlowDir::Out));
  snap.events.push_back(ev("comm", "recv", 0, 520, 4, 4, 9, FlowDir::In));

  const auto report = critical_path(snap);
  EXPECT_EQ(report.edges_matched, 3);
  ASSERT_EQ(report.chain.size(), 2u);
  EXPECT_EQ(report.chain[0].in.rank, 1);
  EXPECT_EQ(report.chain[1].in.rank, 2);
  EXPECT_EQ(report.total_wait_ns, 550);

  const std::string summary = critical_path_summary(report);
  EXPECT_NE(summary.find("longest wait:"), std::string::npos);
  EXPECT_NE(summary.find("comm/recv"), std::string::npos);
}

TEST(CriticalPath, UnrankedThreadsChainByTid) {
  // rank == -1 everywhere: the reducer falls back to tids as timelines.
  TraceSnapshot snap;
  snap.events.push_back(ev("q", "put", 0, 1, 10, -1, 1, FlowDir::Out));
  snap.events.push_back(ev("q", "take", 0, 30, 11, -1, 1, FlowDir::In));
  snap.events.push_back(ev("q", "put", 40, 1, 11, -1, 2, FlowDir::Out));
  snap.events.push_back(ev("q", "take", 0, 60, 12, -1, 2, FlowDir::In));

  const auto report = critical_path(snap);
  ASSERT_EQ(report.chain.size(), 2u);
  EXPECT_EQ(report.total_wait_ns, 90);
}

TEST(CriticalPath, EmptySnapshotIsClean) {
  const auto report = critical_path(TraceSnapshot{});
  EXPECT_TRUE(report.chain.empty());
  EXPECT_EQ(report.total_wait_ns, 0);
  EXPECT_EQ(report.edges_matched, 0);
  // The summary must not choke on nothing.
  EXPECT_FALSE(critical_path_summary(report).empty());
}

// End-to-end through the real recording API: two rank-tagged threads hand
// off one flow id; the snapshot must carry the rank tags and the Chrome
// export must draw the arrow.
TEST(FlowRecording, RankTaggedHandOffProducesArrow) {
  set_trace_enabled(true);
  trace_clear();
  const std::uint64_t flow = 424242;
  std::thread producer([&] {
    set_trace_rank(0);
    trace_flow_out("comm", "send", uptime_ns(), flow);
  });
  producer.join();
  std::thread consumer([&] {
    set_trace_rank(1);
    trace_flow_in("comm", "recv", uptime_ns(), flow);
  });
  consumer.join();

  const auto snap = trace_snapshot();
  const auto edges = flow_edges(snap);
  ASSERT_EQ(edges.size(), 1u);
  EXPECT_EQ(edges[0].out.rank, 0);
  EXPECT_EQ(edges[0].in.rank, 1);
  EXPECT_EQ(edges[0].out.flow, FlowDir::Out);

  const std::string json = chrome_trace_json();
  EXPECT_NE(json.find("\"ph\":\"s\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"f\""), std::string::npos);
  // Merge mode: the two ranks land on distinct Chrome process rows.
  EXPECT_NE(json.find("\"pid\":0"), std::string::npos);
  EXPECT_NE(json.find("\"pid\":1"), std::string::npos);
  trace_clear();
}

}  // namespace
}  // namespace femto::obs
