// Span-attributed sampling profiler: stack upkeep through TraceScope,
// timer-thread accumulation, and the collapsed-stack export.  Timing is
// kept honest with deadline loops (the sampler fires on its own cadence),
// never exact sample counts.

#include "obs/sampler.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>

#include "obs/trace.hpp"
#include "obs/wallclock.hpp"

namespace femto::obs {
namespace {

TEST(SpanStack, TracksNestedScopesWhenArmed) {
  detail::span_stack_retain();
  {
    FEMTO_TRACE_SCOPE("test", "outer");
    {
      FEMTO_TRACE_SCOPE("test", "inner");
      detail::SpanFrame frames[8];
      const int depth = detail::current_span_stack(frames, 8);
      ASSERT_GE(depth, 2);
      EXPECT_STREQ(frames[depth - 2].name, "outer");
      EXPECT_STREQ(frames[depth - 1].name, "inner");
    }
    detail::SpanFrame frames[8];
    const int depth = detail::current_span_stack(frames, 8);
    ASSERT_GE(depth, 1);
    EXPECT_STREQ(frames[depth - 1].name, "outer");
  }
  detail::SpanFrame frames[8];
  EXPECT_EQ(detail::current_span_stack(frames, 8), 0);
  detail::span_stack_release();
}

TEST(SpanStack, DisarmedScopesCostNoStack) {
  // No retain in force: scopes must leave the stack untouched.
  FEMTO_TRACE_SCOPE("test", "unarmed");
  detail::SpanFrame frames[8];
  EXPECT_EQ(detail::current_span_stack(frames, 8), 0);
}

TEST(Sampler, AttributesSamplesToLiveSpans) {
  sampler_clear();
  SamplerOptions opt;
  opt.period_us = 200;
  sampler_start(opt);
  EXPECT_TRUE(sampler_running());
  {
    FEMTO_TRACE_SCOPE("test", "sampled_outer");
    FEMTO_TRACE_SCOPE("test", "sampled_inner");
    const Stopwatch sw;
    while (sampler_snapshot().samples < 3 && sw.seconds() < 10.0)
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  sampler_stop();
  EXPECT_FALSE(sampler_running());

  const SamplerSnapshot snap = sampler_snapshot();
  ASSERT_GE(snap.samples, 3);
  EXPECT_GE(snap.threads, 1);
  bool found = false;
  for (const auto& [stack, count] : snap.stacks) {
    if (stack.find("test:sampled_outer;test:sampled_inner") !=
        std::string::npos) {
      found = true;
      EXPECT_GT(count, 0);
    }
  }
  EXPECT_TRUE(found) << collapsed_stacks();
  sampler_clear();
  EXPECT_EQ(sampler_snapshot().samples, 0);
}

TEST(Sampler, CollapsedExportIsFlamegraphFood) {
  sampler_clear();
  SamplerOptions opt;
  opt.period_us = 200;
  sampler_start(opt);
  {
    FEMTO_TRACE_SCOPE("test", "collapse_me");
    const Stopwatch sw;
    while (sampler_snapshot().samples < 1 && sw.seconds() < 10.0)
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  sampler_stop();

  const std::string body = collapsed_stacks();
  ASSERT_FALSE(body.empty());
  // Every line: "root;cat:name[;...] <count>\n".
  std::istringstream in(body);
  std::string line;
  while (std::getline(in, line)) {
    const auto space = line.rfind(' ');
    ASSERT_NE(space, std::string::npos) << line;
    EXPECT_GT(std::stoll(line.substr(space + 1)), 0) << line;
    EXPECT_NE(line.substr(0, space).find(';'), std::string::npos) << line;
  }

  const std::string path =
      ::testing::TempDir() + "femto_test_collapsed.txt";
  ASSERT_TRUE(write_collapsed_stacks(path));
  std::ifstream f(path);
  std::stringstream read_back;
  read_back << f.rdbuf();
  EXPECT_EQ(read_back.str(), body);
  std::remove(path.c_str());
  sampler_clear();
}

TEST(Sampler, StartIsIdempotentAndStopIsSafeTwice) {
  SamplerOptions opt;
  opt.period_us = 500;
  sampler_start(opt);
  sampler_start(opt);  // second start: no-op, no second thread
  EXPECT_TRUE(sampler_running());
  sampler_stop();
  sampler_stop();  // second stop: no-op
  EXPECT_FALSE(sampler_running());
}

}  // namespace
}  // namespace femto::obs
