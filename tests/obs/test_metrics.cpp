// Femtoscope metrics: log2-histogram bucket edges, atomic counter/gauge
// semantics, and the registry's stable-reference / bounded-solve-log
// contracts.

#include "obs/metrics.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <string>
#include <thread>
#include <vector>

namespace femto::obs {
namespace {

TEST(Histogram, BucketOfEdgeCases) {
  EXPECT_EQ(Histogram::bucket_of(std::numeric_limits<std::int64_t>::min()),
            0);
  EXPECT_EQ(Histogram::bucket_of(-1), 0);
  EXPECT_EQ(Histogram::bucket_of(0), 0);
  EXPECT_EQ(Histogram::bucket_of(1), 1);   // [1, 1]
  EXPECT_EQ(Histogram::bucket_of(2), 2);   // [2, 3]
  EXPECT_EQ(Histogram::bucket_of(3), 2);
  EXPECT_EQ(Histogram::bucket_of(4), 3);   // [4, 7]
  EXPECT_EQ(Histogram::bucket_of(7), 3);
  EXPECT_EQ(Histogram::bucket_of(8), 4);
  EXPECT_EQ(Histogram::bucket_of((std::int64_t{1} << 62) - 1), 62);
  EXPECT_EQ(Histogram::bucket_of(std::int64_t{1} << 62), 63);
  EXPECT_EQ(Histogram::bucket_of(std::numeric_limits<std::int64_t>::max()),
            63);
}

TEST(Histogram, BucketLowerBoundInvertsBucketOf) {
  EXPECT_EQ(Histogram::bucket_lower_bound(0), 0);
  for (int b = 1; b < Histogram::kBuckets; ++b) {
    const std::int64_t lo = Histogram::bucket_lower_bound(b);
    EXPECT_EQ(Histogram::bucket_of(lo), b) << "bucket " << b;
    if (b > 1) {
      EXPECT_EQ(Histogram::bucket_of(lo - 1), b - 1) << "bucket " << b;
    }
  }
}

TEST(Histogram, ObserveAccumulatesAndResets) {
  Histogram h;
  h.observe(0);
  h.observe(1);
  h.observe(3);
  h.observe(3);
  h.observe(-7);
  EXPECT_EQ(h.count(), 5);
  EXPECT_EQ(h.sum(), 0);  // 0 + 1 + 3 + 3 - 7
  EXPECT_EQ(h.bucket(0), 2);
  EXPECT_EQ(h.bucket(1), 1);
  EXPECT_EQ(h.bucket(2), 2);
  EXPECT_EQ(h.bucket(3), 0);
  h.reset();
  EXPECT_EQ(h.count(), 0);
  EXPECT_EQ(h.sum(), 0);
  EXPECT_EQ(h.bucket(2), 0);
}

TEST(CounterGauge, Basics) {
  Counter c;
  c.add();
  c.add(41);
  EXPECT_EQ(c.get(), 42);
  c.reset();
  EXPECT_EQ(c.get(), 0);

  Gauge g;
  g.set(2.5);
  g.add(0.5);
  EXPECT_DOUBLE_EQ(g.get(), 3.0);
  g.reset();
  EXPECT_DOUBLE_EQ(g.get(), 0.0);
}

TEST(CounterGauge, ConcurrentUpdatesAreLossless) {
  Counter c;
  Gauge g;
  Histogram h;
  constexpr int kThreads = 4;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t)
    threads.emplace_back([&] {
      for (int i = 0; i < kPerThread; ++i) {
        c.add();
        g.add(1.0);
        h.observe(i);
      }
    });
  for (auto& t : threads) t.join();
  EXPECT_EQ(c.get(), kThreads * kPerThread);
  EXPECT_DOUBLE_EQ(g.get(), kThreads * kPerThread);
  EXPECT_EQ(h.count(), kThreads * kPerThread);
}

TEST(Registry, SameNameSameObjectAndResetKeepsReferences) {
  auto& reg = Registry::global();
  reg.reset();
  Counter& a = reg.counter("test.registry_counter");
  Counter& b = reg.counter("test.registry_counter");
  EXPECT_EQ(&a, &b);
  a.add(5);
  reg.reset();
  // The object survives reset (cached references stay valid), zeroed.
  EXPECT_EQ(b.get(), 0);
  b.add(3);
  EXPECT_EQ(reg.counter("test.registry_counter").get(), 3);
}

TEST(Registry, SnapshotsAreSortedByName) {
  auto& reg = Registry::global();
  reg.reset();
  reg.counter("test.zzz").add(1);
  reg.counter("test.aaa").add(2);
  const auto cs = reg.counters();
  for (std::size_t i = 1; i < cs.size(); ++i)
    EXPECT_LT(cs[i - 1].first, cs[i].first);
}

TEST(Registry, SolveLogIsBoundedButTotalKeepsCounting) {
  auto& reg = Registry::global();
  reg.reset();
  const auto base = reg.total_solves();
  const int n = static_cast<int>(Registry::kMaxSolveRecords) + 44;
  for (int i = 0; i < n; ++i) {
    SolveRecord rec;
    rec.solver = "solve_" + std::to_string(i);
    rec.iterations = i;
    reg.record_solve(std::move(rec));
  }
  const auto solves = reg.solves();
  EXPECT_EQ(solves.size(), Registry::kMaxSolveRecords);
  EXPECT_EQ(reg.total_solves() - base, n);
  // Oldest evicted: the window starts at record 44.
  EXPECT_EQ(solves.front().solver, "solve_44");
  EXPECT_EQ(solves.back().solver, "solve_" + std::to_string(n - 1));
}

}  // namespace
}  // namespace femto::obs
