// Femtoscope report: JSON schema validation, the derived
// sustained-performance block computed from seeded metrics, and the
// human-readable summary.

#include "obs/report.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <fstream>
#include <limits>
#include <sstream>
#include <string>

#include "obs/json.hpp"
#include "obs/metrics.hpp"

namespace femto::obs {
namespace {

// Seed the registry with a known telemetry state so every derived value
// is predictable.
void seed_registry() {
  auto& reg = Registry::global();
  reg.reset();
  reg.counter("solver.flops").add(2'000'000'000);
  reg.counter("solver.bytes").add(1'000'000'000);
  reg.gauge("solver.seconds").set(2.0);
  reg.counter("autotune.cache_hits").add(3);
  reg.counter("autotune.cache_misses").add(1);
  reg.counter("jm.lump_busy_us").add(900'000);
  reg.counter("jm.lump_idle_us").add(100'000);
  reg.histogram("solver.iterations").observe(100);

  SolveRecord rec;
  rec.solver = "mixed_cg";
  rec.converged = true;
  rec.iterations = 100;
  rec.reliable_updates = 2;
  rec.final_rel_residual = 1e-10;
  rec.seconds = 2.0;
  rec.flops = 2'000'000'000;
  rec.bytes = 1'000'000'000;
  rec.history.push_back({1, 0.5, 's', false});
  rec.history.push_back({50, 1e-5, 'd', true});
  reg.record_solve(std::move(rec));
}

// Pull the numeric value of "key": out of a flat JSON key (test helper,
// not a parser: the report emits well-known keys exactly once).
double json_value(const std::string& json, const std::string& key) {
  const auto pos = json.find("\"" + key + "\":");
  EXPECT_NE(pos, std::string::npos) << key;
  if (pos == std::string::npos) return -1.0;
  return std::stod(json.substr(pos + key.size() + 3));
}

TEST(Report, JsonValidatesAgainstSchema) {
  seed_registry();
  const std::string json = report_json("test-run");
  std::string err;
  ASSERT_TRUE(json_validate(json, &err)) << err;
  EXPECT_NE(json.find(kReportSchema), std::string::npos);
  EXPECT_NE(json.find("\"title\":\"test-run\""), std::string::npos);
  for (const char* key :
       {"counters", "gauges", "histograms", "solves", "total_solves",
        "trace", "derived"})
    EXPECT_NE(json.find("\"" + std::string(key) + "\""), std::string::npos)
        << key;
}

TEST(Report, DerivedBlockComputedFromMeasuredMetrics) {
  seed_registry();
  const std::string json = report_json();
  EXPECT_DOUBLE_EQ(json_value(json, "sustained_gflops"), 1.0);
  EXPECT_DOUBLE_EQ(json_value(json, "arithmetic_intensity"), 2.0);
  EXPECT_DOUBLE_EQ(json_value(json, "autotune_hit_rate"), 0.75);
  EXPECT_DOUBLE_EQ(json_value(json, "jm_efficiency"), 0.9);
  EXPECT_DOUBLE_EQ(json_value(json, "application_gflops"), 0.9);
  // Measured lump timeline takes precedence over schedule-model gauges.
  EXPECT_NE(json.find("\"jm_source\":\"mpi_jm_lump_timeline\""),
            std::string::npos);
}

TEST(Report, JmEfficiencyFallsBackToScheduleReport) {
  auto& reg = Registry::global();
  reg.reset();
  reg.gauge("jm.busy_node_seconds").set(75.0);
  reg.gauge("jm.alloc_node_seconds").set(100.0);
  const std::string json = report_json();
  EXPECT_DOUBLE_EQ(json_value(json, "jm_efficiency"), 0.75);
  EXPECT_NE(json.find("\"jm_source\":\"schedule_report\""),
            std::string::npos);
}

TEST(Report, SolveHistorySurfacesPrecisionAndReliableUpdates) {
  seed_registry();
  const std::string json = report_json();
  EXPECT_NE(json.find("\"solver\":\"mixed_cg\""), std::string::npos);
  EXPECT_NE(json.find("\"precision\":\"s\""), std::string::npos);
  EXPECT_NE(json.find("\"reliable_update\":true"), std::string::npos);
}

TEST(Report, SummaryMentionsEveryRollup) {
  seed_registry();
  const std::string s = report_summary();
  EXPECT_NE(s.find("sustained"), std::string::npos);
  EXPECT_NE(s.find("arithmetic intensity"), std::string::npos);
  EXPECT_NE(s.find("autotune"), std::string::npos);
  EXPECT_NE(s.find("job manager"), std::string::npos);
  EXPECT_NE(s.find("trace"), std::string::npos);
}

// An empty run (nothing ever fed a denominator) reports its ratios as
// explicit JSON nulls, never as a fake measured zero.
TEST(Report, EmptyRunReportsUndefinedRatiosAsNull) {
  Registry::global().reset();
  const std::string json = report_json("empty-run");
  std::string err;
  ASSERT_TRUE(json_validate(json, &err)) << err;
  for (const char* key :
       {"sustained_gflops", "arithmetic_intensity", "autotune_hit_rate",
        "jm_efficiency", "application_gflops", "solve_service_batch_mean",
        "solve_service_throughput"}) {
    EXPECT_NE(json.find("\"" + std::string(key) + "\":null"),
              std::string::npos)
        << key;
  }
  // Plain accumulators legitimately ARE zero on an empty run.
  EXPECT_NE(json.find("\"solver_flops\":0"), std::string::npos);
  EXPECT_NE(json.find("\"jm_source\":\"none\""), std::string::npos);
}

TEST(Report, ZeroDenominatorIsNullEvenWithANumerator) {
  Registry::global().reset();
  // Flops accumulated but the clock never ran: the rate is undefined,
  // not infinite and not zero.
  Registry::global().counter("solver.flops").add(12345);
  const std::string json = report_json("clockless");
  EXPECT_NE(json.find("\"sustained_gflops\":null"), std::string::npos);
  EXPECT_NE(json.find("\"arithmetic_intensity\":null"), std::string::npos);
  EXPECT_NE(json.find("\"solver_flops\":12345"), std::string::npos);
}

TEST(Report, EmptyRunSummarySaysNotAvailable) {
  Registry::global().reset();
  const std::string s = report_summary();
  EXPECT_NE(s.find("n/a"), std::string::npos);
  // No raw NaN may ever leak into the table.
  EXPECT_EQ(s.find("nan"), std::string::npos) << s;
  EXPECT_EQ(s.find("-nan"), std::string::npos) << s;
}

TEST(Report, SeededRunHasNoNullRatios) {
  seed_registry();
  const std::string json = report_json("seeded");
  for (const char* key :
       {"sustained_gflops", "arithmetic_intensity", "autotune_hit_rate",
        "jm_efficiency", "application_gflops"}) {
    EXPECT_EQ(json.find("\"" + std::string(key) + "\":null"),
              std::string::npos)
        << key;
  }
}

TEST(Report, WriteReportProducesValidFile) {
  seed_registry();
  const std::string path =
      testing::TempDir() + "/femtoscope_report_test.json";
  ASSERT_TRUE(write_report(path, "file-run"));
  std::ifstream in(path);
  std::ostringstream body;
  body << in.rdbuf();
  std::string err;
  EXPECT_TRUE(json_validate(body.str(), &err)) << err;
  std::remove(path.c_str());
}

TEST(Json, ValidatorAcceptsAndRejects) {
  EXPECT_TRUE(json_validate("{\"a\":[1,2.5,-3e4,null,true,\"x\\n\"]}"));
  EXPECT_FALSE(json_validate(""));
  EXPECT_FALSE(json_validate("{"));
  EXPECT_FALSE(json_validate("{\"a\":1,}"));
  EXPECT_FALSE(json_validate("{\"a\":1} trailing"));
  EXPECT_FALSE(json_validate("{'a':1}"));
  EXPECT_FALSE(json_validate("{\"a\":01}"));
  EXPECT_TRUE(json_validate("[]"));
  EXPECT_TRUE(json_validate("-0.5e-2"));
}

TEST(Json, EscapeAndNumbers) {
  EXPECT_EQ(json_escape("a\"b\\c\n"), "a\\\"b\\\\c\\n");
  EXPECT_EQ(json_number(std::int64_t{42}), "42");
  // Non-finite doubles must not corrupt the document.
  EXPECT_EQ(json_number(std::numeric_limits<double>::infinity()), "null");
  EXPECT_EQ(json_number(std::numeric_limits<double>::quiet_NaN()), "null");
  EXPECT_TRUE(json_validate(json_number(0.1)));
}

TEST(Json, DuplicateObjectKeysReject) {
  std::string err;
  EXPECT_FALSE(json_validate("{\"a\":1,\"a\":2}", &err));
  EXPECT_NE(err.find("duplicate"), std::string::npos) << err;
  // Same key in SIBLING or NESTED objects is fine -- only one scope.
  EXPECT_TRUE(json_validate("{\"a\":{\"a\":1},\"b\":{\"a\":2}}"));
  EXPECT_TRUE(json_validate("[{\"a\":1},{\"a\":2}]"));
  // Byte-identical escaped keys are still duplicates.
  EXPECT_FALSE(json_validate("{\"x\\n\":1,\"x\\n\":2}"));
}

// Malformed report inputs a consumer may meet in the wild: the validator
// must reject each with a diagnostic, never half-accept.
TEST(ReportValidate, RejectsMalformedInput) {
  seed_registry();
  const std::string good = report_json("valid-run");
  ASSERT_TRUE(report_validate(good));

  std::string err;
  // Truncated file (interrupted write): chop mid-document.
  EXPECT_FALSE(report_validate(good.substr(0, good.size() / 2), &err));
  EXPECT_FALSE(err.empty());
  // Empty file.
  EXPECT_FALSE(report_validate("", &err));
  // Wrong schema version.
  std::string wrong = good;
  const auto at = wrong.find("femtoscope-report-v1");
  ASSERT_NE(at, std::string::npos);
  wrong.replace(at, std::strlen("femtoscope-report-v1"),
                "femtoscope-report-v9");
  EXPECT_FALSE(report_validate(wrong, &err));
  EXPECT_NE(err.find("schema"), std::string::npos) << err;
  // Raw NaN / Infinity tokens (a writer that skipped json_number).
  EXPECT_FALSE(report_validate("{\"schema\":\"femtoscope-report-v1\","
                               "\"x\":NaN}",
                               &err));
  EXPECT_FALSE(report_validate("{\"schema\":\"femtoscope-report-v1\","
                               "\"x\":-Infinity}",
                               &err));
  // Duplicate keys.
  EXPECT_FALSE(report_validate("{\"schema\":\"femtoscope-report-v1\","
                               "\"x\":1,\"x\":2}",
                               &err));
  // Well-formed JSON that is not a report at all.
  EXPECT_FALSE(report_validate("{\"schema\":\"other-thing-v3\"}", &err));
}

}  // namespace
}  // namespace femto::obs
