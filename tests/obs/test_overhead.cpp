// Disabled-tracing overhead guard: a FEMTO_TRACE_SCOPE in a hot loop with
// tracing OFF costs one relaxed atomic load and a branch -- this test
// asserts the instrumented loop stays within noise of the bare loop, so a
// regression that sneaks a clock read or a lock into the disabled path
// fails CI.  (Enabled-mode overhead is characterised by
// scripts/bench_obs.sh on a real BLAS workload, not unit-tested: wall
// clock bounds under CI load would flake.)

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cstdint>

#include "obs/trace.hpp"

namespace femto::obs {
namespace {

// xorshift mixing: real enough work that the loop is not folded away,
// cheap enough (~ns/iter) that scope overhead would be visible.
inline std::uint64_t step(std::uint64_t s) {
  s ^= s << 13;
  s ^= s >> 7;
  s ^= s << 17;
  return s;
}

constexpr std::size_t kIters = 2'000'000;
constexpr int kRepeats = 5;

double bare_loop_seconds(std::uint64_t* sink) {
  double best = 1e300;
  for (int r = 0; r < kRepeats; ++r) {
    std::uint64_t s = 0x2545F4914F6CDD1Dull;
    const auto t0 = std::chrono::steady_clock::now();
    for (std::size_t i = 0; i < kIters; ++i) s = step(s);
    const double dt = std::chrono::duration<double>(
                          std::chrono::steady_clock::now() - t0)
                          .count();
    best = std::min(best, dt);
    *sink += s;
  }
  return best;
}

double scoped_loop_seconds(std::uint64_t* sink) {
  double best = 1e300;
  for (int r = 0; r < kRepeats; ++r) {
    std::uint64_t s = 0x2545F4914F6CDD1Dull;
    const auto t0 = std::chrono::steady_clock::now();
    for (std::size_t i = 0; i < kIters; ++i) {
      FEMTO_TRACE_SCOPE("overhead", "hot_iter");
      s = step(s);
    }
    const double dt = std::chrono::duration<double>(
                          std::chrono::steady_clock::now() - t0)
                          .count();
    best = std::min(best, dt);
    *sink += s;
  }
  return best;
}

TEST(TraceOverhead, DisabledScopeIsWithinNoiseOfBareLoop) {
  set_trace_enabled(false);
  std::uint64_t sink = 0;
  const double bare = bare_loop_seconds(&sink);
  const double scoped = scoped_loop_seconds(&sink);
  ASSERT_NE(sink, 0u);  // keep the loops alive
  // min-of-5 timings still wobble on shared CI machines; a disabled scope
  // regression (clock read, lock) costs >10x this allowance per iteration.
  const double per_iter_overhead_ns =
      (scoped - bare) / static_cast<double>(kIters) * 1e9;
  EXPECT_LT(per_iter_overhead_ns, 15.0)
      << "bare " << bare << " s, scoped " << scoped << " s";
  set_trace_enabled(true);
}

}  // namespace
}  // namespace femto::obs
