// Crash flight recorder: dump schema/content, provider quarantine, and a
// death test proving a failed check in a checked build leaves a valid
// femtoscope-blackbox-v1 file behind before the abort.

#include "obs/blackbox.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "core/check.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace femto::obs {
namespace {

std::string slurp(const std::string& path) {
  std::ifstream f(path);
  std::stringstream ss;
  ss << f.rdbuf();
  return ss.str();
}

TEST(BlackboxJson, ValidatesAndCarriesTheFailingCheck) {
  counter("blackbox_test.touched").add(3);
  const std::string body =
      blackbox_json("check_failure", "foo.cpp", 42, "x > 0", "boom");
  std::string err;
  ASSERT_TRUE(json_validate(body, &err)) << err;
  EXPECT_NE(body.find(kBlackboxSchema), std::string::npos);
  EXPECT_NE(body.find("\"reason\":\"check_failure\""), std::string::npos);
  EXPECT_NE(body.find("foo.cpp"), std::string::npos);
  EXPECT_NE(body.find("\"line\":42"), std::string::npos);
  EXPECT_NE(body.find("x > 0"), std::string::npos);
  EXPECT_NE(body.find("\"message\":\"boom\""), std::string::npos);
  EXPECT_NE(body.find("\"span_stack\""), std::string::npos);
  EXPECT_NE(body.find("\"recent_spans\""), std::string::npos);
  EXPECT_NE(body.find("blackbox_test.touched"), std::string::npos);
}

TEST(BlackboxJson, CapturesTheFailingThreadsSpanStack) {
  detail::span_stack_retain();
  {
    FEMTO_TRACE_SCOPE("test", "doomed_phase");
    FEMTO_TRACE_SCOPE("test", "doomed_step");
    const std::string body = blackbox_json("test", "", 0, "", "");
    EXPECT_NE(body.find("doomed_phase"), std::string::npos);
    EXPECT_NE(body.find("doomed_step"), std::string::npos);
    // Outermost first.
    EXPECT_LT(body.find("doomed_phase"), body.find("doomed_step"));
  }
  detail::span_stack_release();
}

TEST(BlackboxProviders, GoodBadAndThrowingAreQuarantined) {
  const int good = blackbox_register_provider(
      "good", [] { return std::string("{\"depth\":7}"); });
  const int bad = blackbox_register_provider(
      "bad", [] { return std::string("not json {"); });
  const int thrower = blackbox_register_provider(
      "thrower", []() -> std::string { throw std::runtime_error("no"); });

  const std::string body = blackbox_json("test", "", 0, "", "");
  std::string err;
  ASSERT_TRUE(json_validate(body, &err)) << err;
  EXPECT_NE(body.find("\"good\":{\"depth\":7}"), std::string::npos);
  EXPECT_NE(body.find("\"bad\":{\"_invalid\":true}"), std::string::npos);
  EXPECT_NE(body.find("\"thrower\":{\"_invalid\":true}"),
            std::string::npos);

  blackbox_unregister_provider(good);
  blackbox_unregister_provider(bad);
  blackbox_unregister_provider(thrower);
  const std::string after = blackbox_json("test", "", 0, "", "");
  EXPECT_EQ(after.find("\"good\""), std::string::npos);
}

TEST(BlackboxInstall, WriteNowProducesAValidDumpFile) {
  const std::string path = ::testing::TempDir() + "femto_blackbox_now.json";
  std::remove(path.c_str());
  EXPECT_FALSE(blackbox_installed());
  blackbox_install(path);
  EXPECT_TRUE(blackbox_installed());
  EXPECT_EQ(blackbox_path(), path);

  ASSERT_TRUE(blackbox_write_now("manual"));
  const std::string body = slurp(path);
  std::string err;
  EXPECT_TRUE(json_validate(body, &err)) << err;
  EXPECT_NE(body.find(kBlackboxSchema), std::string::npos);
  EXPECT_NE(body.find("\"reason\":\"manual\""), std::string::npos);

  blackbox_uninstall();
  EXPECT_FALSE(blackbox_installed());
  // With no recorder armed there is nowhere to write.
  EXPECT_FALSE(blackbox_write_now("after_uninstall"));
  std::remove(path.c_str());
}

using BlackboxDeathTest = ::testing::Test;

TEST(BlackboxDeathTest, FailedCheckWritesTheDumpBeforeAborting) {
  const std::string path =
      ::testing::TempDir() + "femto_blackbox_death.json";
  std::remove(path.c_str());
  // The death test forks: the child installs, arms a span, and dies on a
  // failed check; the parent then reads the dump the child left behind.
  EXPECT_DEATH(
      {
        blackbox_install(path);
        FEMTO_TRACE_SCOPE("test", "fatal_section");
        femto::check::fail(__FILE__, __LINE__, "invariant_holds",
                           " blackbox death test");
      },
      "invariant_holds");
  const std::string body = slurp(path);
  ASSERT_FALSE(body.empty()) << "child wrote no dump at " << path;
  std::string err;
  EXPECT_TRUE(json_validate(body, &err)) << err;
  EXPECT_NE(body.find(kBlackboxSchema), std::string::npos);
  EXPECT_NE(body.find("\"reason\":\"check_failure\""), std::string::npos);
  EXPECT_NE(body.find("invariant_holds"), std::string::npos);
  EXPECT_NE(body.find("fatal_section"), std::string::npos);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace femto::obs
