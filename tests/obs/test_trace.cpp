// Femtoscope tracer: ring wrap-around semantics, thread-interleave
// determinism of the merged export (same sweep discipline as
// tests/parallel/test_reduce_sweep.cpp), and the Chrome JSON emitter.

#include "obs/trace.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "obs/json.hpp"

namespace femto::obs {
namespace {

TEST(TraceRing, WrapAroundKeepsNewestAndCountsDrops) {
  TraceRing ring(4, /*tid=*/7);
  for (std::int64_t i = 0; i < 6; ++i)
    ring.push("cat", "name", /*t0_ns=*/i * 100, /*dur_ns=*/i, /*rank=*/-1);

  EXPECT_EQ(ring.pushed(), 6u);
  EXPECT_EQ(ring.dropped(), 2u);  // spans 0 and 1 overwritten

  const auto evs = ring.events();
  ASSERT_EQ(evs.size(), 4u);
  // Oldest surviving span first: 2, 3, 4, 5.
  for (std::size_t k = 0; k < evs.size(); ++k) {
    EXPECT_EQ(evs[k].t0_ns, static_cast<std::int64_t>((k + 2) * 100));
    EXPECT_EQ(evs[k].tid, 7u);
  }

  ring.clear();
  EXPECT_EQ(ring.pushed(), 0u);
  EXPECT_EQ(ring.dropped(), 0u);
  EXPECT_TRUE(ring.events().empty());
}

TEST(TraceRing, NoDropsBeforeCapacity) {
  TraceRing ring(8, 0);
  for (std::int64_t i = 0; i < 8; ++i) ring.push("c", "n", i, 1, -1);
  EXPECT_EQ(ring.dropped(), 0u);
  EXPECT_EQ(ring.events().size(), 8u);
}

TEST(TraceScope, DisabledRecordsNothing) {
  set_trace_enabled(false);
  trace_clear();
  const auto before = trace_snapshot().events.size();
  {
    FEMTO_TRACE_SCOPE("test", "disabled_scope");
  }
  EXPECT_EQ(trace_snapshot().events.size(), before);
  set_trace_enabled(true);
}

TEST(TraceScope, EnabledRecordsCategoryNameAndDuration) {
  set_trace_enabled(true);
  trace_clear();
  {
    FEMTO_TRACE_SCOPE("test", "enabled_scope");
  }
  const auto snap = trace_snapshot();
  const auto it = std::find_if(
      snap.events.begin(), snap.events.end(), [](const TraceEvent& e) {
        return std::string(e.name) == "enabled_scope";
      });
  ASSERT_NE(it, snap.events.end());
  EXPECT_EQ(std::string(it->category), "test");
  EXPECT_GE(it->dur_ns, 0);
}

// Interleave determinism: N threads push spans with SYNTHETIC timestamps
// concurrently; the merged snapshot must come back in the same (t0, tid)
// order every repetition regardless of how the threads interleaved.  Same
// sweep-and-repeat harness as the parallel reduction tests.
TEST(TraceSweep, SnapshotOrderStableUnderThreadInterleave) {
  set_trace_enabled(true);
  const std::size_t kSweep[] = {1, 2, 7};
  constexpr int kRepeats = 5;
  constexpr std::int64_t kSpansPerThread = 50;

  for (std::size_t nt : kSweep) {
    std::vector<std::int64_t> first;
    for (int rep = 0; rep < kRepeats; ++rep) {
      trace_clear();
      std::vector<std::thread> threads;
      for (std::size_t j = 0; j < nt; ++j) {
        threads.emplace_back([j] {
          for (std::int64_t i = 0; i < kSpansPerThread; ++i)
            trace_push("sweep", "span",
                       static_cast<std::int64_t>(j) * 1'000'000 + i * 10,
                       i + 1);
        });
      }
      for (auto& t : threads) t.join();

      const auto snap = trace_snapshot();
      // trace_clear() emptied every ring and the main thread pushed no
      // spans of its own, so the count is exact.
      ASSERT_EQ(snap.events.size(),
                static_cast<std::size_t>(nt) * kSpansPerThread)
          << "threads=" << nt << " rep=" << rep;
      std::vector<std::int64_t> order;
      order.reserve(snap.events.size());
      for (const auto& e : snap.events) order.push_back(e.t0_ns);
      EXPECT_TRUE(std::is_sorted(order.begin(), order.end()))
          << "threads=" << nt << " rep=" << rep;
      if (rep == 0)
        first = order;
      else
        EXPECT_EQ(order, first) << "threads=" << nt << " rep=" << rep;
    }
  }
}

TEST(TraceExport, ChromeJsonParses) {
  set_trace_enabled(true);
  trace_clear();
  {
    FEMTO_TRACE_SCOPE("test", "json_span");
  }
  const std::string json = chrome_trace_json();
  std::string err;
  EXPECT_TRUE(json_validate(json, &err)) << err;
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("json_span"), std::string::npos);
}

}  // namespace
}  // namespace femto::obs
