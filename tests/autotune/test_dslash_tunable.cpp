#include "autotune/dslash_tunable.hpp"

#include <gtest/gtest.h>

#include <set>
#include <sstream>

#include "lattice/gauge.hpp"
#include "simd/vec.hpp"

namespace femto::tune {
namespace {

std::shared_ptr<const GaugeField<double>> make_gauge() {
  auto g = std::make_shared<Geometry>(4, 4, 4, 8);
  auto u = std::make_shared<GaugeField<double>>(g);
  weak_gauge(*u, 201, 0.2);
  return u;
}

TEST(DslashTunable, KeyEncodesGeometryAndPrecision) {
  auto u = make_gauge();
  DslashTunable<double> t(u, 8, 0);
  EXPECT_NE(t.key().find("4x4x4x8"), std::string::npos);
  EXPECT_NE(t.key().find("l5=8"), std::string::npos);
  EXPECT_NE(t.key().find("prec=8"), std::string::npos);

  auto uf = std::make_shared<GaugeField<float>>(u->convert<float>());
  DslashTunable<float> tf(uf, 8, 0);
  EXPECT_NE(tf.key(), t.key());
}

TEST(DslashTunable, CandidatesCoverGrainRange) {
  auto u = make_gauge();
  DslashTunable<double> t(u, 4, 0);
  const auto c = t.candidates();
  ASSERT_GE(c.size(), 2u);
  EXPECT_EQ(c.front().get("grain"), 16);
  // Last candidate runs the whole half-volume in one chunk.
  EXPECT_EQ(c.back().get("grain"), u->geom().half_volume());
}

TEST(DslashTunable, CandidatesSweepKernelVariants) {
  auto u = make_gauge();
  DslashTunable<double> t(u, 4, 0);
  const auto c = t.candidates();
  // The reference kernel leads the search at every width.
  EXPECT_EQ(c.front().get("variant"), 0);
  std::set<std::int64_t> variants;
  for (const auto& p : c) variants.insert(p.get("variant"));
  if (simd::kWidth<double> > 1) {
    // Vectorized builds race scalar vs vector vs lane-blocked; each
    // variant gets the full grain sweep.
    EXPECT_EQ(variants, (std::set<std::int64_t>{0, 1, 2}));
    EXPECT_EQ(c.size() % variants.size(), 0u);
  } else {
    // Scalar builds must not waste tuning time on lane variants that
    // degenerate to the scalar kernel with gather overhead.
    EXPECT_EQ(variants, (std::set<std::int64_t>{0}));
  }
}

TEST(DslashTunable, KeyEncodesSimdBuild) {
  // A femtotune cache written by a vectorized build must miss in a scalar
  // build (the variant ordinal would mean a kernel that isn't profitable
  // there), so the ISA/width is part of the key.
  auto u = make_gauge();
  DslashTunable<double> t(u, 4, 0);
  std::ostringstream want;
  want << ",simd=" << simd::kIsaName << "/" << simd::kWidth<double>;
  EXPECT_NE(t.key().find(want.str()), std::string::npos) << t.key();
}

TEST(DslashTunable, TunedVariantIsRecordedAndValid) {
  Autotuner::global().clear();
  auto u = make_gauge();
  const auto t = tuned_dslash_grain<double>(u, 2, 0);
  const int v = static_cast<int>(t.variant);
  EXPECT_GE(v, 0);
  EXPECT_LE(v, 2);
  if (simd::kWidth<double> == 1) EXPECT_EQ(t.variant, DslashVariant::kScalar);
  Autotuner::global().clear();
}

TEST(DslashTunable, TunedGrainComesFromCache) {
  Autotuner::global().clear();
  auto u = make_gauge();
  const auto t1 = tuned_dslash_grain<double>(u, 4, 0);
  EXPECT_GT(t1.grain, 0u);
  const auto misses = Autotuner::global().cache_misses();
  const auto t2 = tuned_dslash_grain<double>(u, 4, 0);
  EXPECT_EQ(t2.grain, t1.grain);
  EXPECT_EQ(Autotuner::global().cache_misses(), misses);  // pure lookup
  Autotuner::global().clear();
}

TEST(DslashTunable, MetricsPopulated) {
  Autotuner tuner;
  tuner.set_reps(1);
  auto u = make_gauge();
  DslashTunable<double> t(u, 2, 1);
  const auto& e = tuner.tune(t);
  EXPECT_GT(e.gflops, 0.0);
  EXPECT_GT(e.gbytes, 0.0);
  EXPECT_GT(e.seconds, 0.0);
}

TEST(DslashMultiTunable, KeyExtendsSingleRhsKeyWithBatchBound) {
  auto u = make_gauge();
  DslashMultiTunable<double> t4(u, 2, 0, 4);
  DslashMultiTunable<double> t8(u, 2, 0, 8);
  EXPECT_NE(t4.key().find("dslash_multi"), std::string::npos);
  EXPECT_NE(t4.key().find("bmax=4"), std::string::npos);
  EXPECT_NE(t4.key(), t8.key());  // batch bound is part of the cache key
  DslashTunable<double> single(u, 2, 0);
  EXPECT_NE(t4.key(), single.key());
}

TEST(DslashMultiTunable, CandidatesSweepBatchTimesGrainTimesVariant) {
  auto u = make_gauge();
  DslashMultiTunable<double> t(u, 2, 0, 8);
  const auto c = t.candidates();
  std::set<std::int64_t> nrhs, grains, variants;
  for (const auto& p : c) {
    nrhs.insert(p.get("nrhs"));
    grains.insert(p.get("grain"));
    variants.insert(p.get("variant"));
  }
  // Power-of-two batch sizes up to the bound, every grain, and the same
  // variant set the single-RHS tunable races.
  EXPECT_EQ(nrhs, (std::set<std::int64_t>{1, 2, 4, 8}));
  EXPECT_GE(grains.size(), 2u);
  if (simd::kWidth<double> > 1)
    EXPECT_EQ(variants, (std::set<std::int64_t>{0, 1, 2}));
  else
    EXPECT_EQ(variants, (std::set<std::int64_t>{0}));
}

TEST(DslashMultiTunable, TunedMultiRhsReturnsValidBatch) {
  Autotuner::global().clear();
  auto u = make_gauge();
  const MultiRhsTuning t = tuned_multi_rhs<double>(u, 2, 4, 0);
  EXPECT_GE(t.nrhs, 1u);
  EXPECT_LE(t.nrhs, 4u);
  EXPECT_GT(t.dslash.grain, 0u);
  // Cached: a second lookup with the same bound is a pure cache hit.
  const auto misses = Autotuner::global().cache_misses();
  const MultiRhsTuning t2 = tuned_multi_rhs<double>(u, 2, 4, 0);
  EXPECT_EQ(t2.nrhs, t.nrhs);
  EXPECT_EQ(Autotuner::global().cache_misses(), misses);
  Autotuner::global().clear();
}

}  // namespace
}  // namespace femto::tune

// ---------------------------------------------------------------------------
// The gauge storage tier axis (DESIGN.md §16): format is an autotuned
// dimension alongside variant and grain.
// ---------------------------------------------------------------------------

namespace femto::tune {
namespace {

std::shared_ptr<const GaugeField<double>> make_hot_gauge() {
  // hot links: recon8's phase parameterisation degenerates on unit-like
  // gauge, and the tuner really builds a Recon8GaugeField per candidate.
  auto g = std::make_shared<Geometry>(4, 4, 4, 8);
  auto u = std::make_shared<GaugeField<double>>(g);
  hot_gauge(*u, 211);
  return u;
}

TEST(DslashTunable, DefaultCandidatesStayFullFormat) {
  // Callers that never opt into tiers must see the pre-tier sweep: every
  // candidate reads full18 links.
  auto u = make_hot_gauge();
  DslashTunable<double> t(u, 4, 0);
  for (const auto& p : t.candidates()) EXPECT_EQ(p.get("format", 0), 0);
}

TEST(DslashTunable, CandidatesSweepAllFormats) {
  auto u = make_hot_gauge();
  DslashTunable<double> t(u, 4, 0, FormatSet::kAll);
  const auto c = t.candidates();
  // The reference tier leads the search (front stays full18/scalar).
  EXPECT_EQ(c.front().get("format", 0), 0);
  EXPECT_EQ(c.front().get("variant"), 0);
  std::set<std::int64_t> formats;
  for (const auto& p : c) formats.insert(p.get("format", 0));
  EXPECT_EQ(formats, (std::set<std::int64_t>{0, 1, 2, 3}));
  // Every format gets the full variant x grain sweep.
  EXPECT_EQ(c.size() % formats.size(), 0u);
  DslashTunable<double> exact(u, 4, 0, FormatSet::kExact);
  std::set<std::int64_t> exact_formats;
  for (const auto& p : exact.candidates())
    exact_formats.insert(p.get("format", 0));
  EXPECT_EQ(exact_formats, (std::set<std::int64_t>{0, 1}));
}

TEST(DslashTunable, KeyEncodesFormatSet) {
  // A cache entry tuned over the full tier sweep must not be served to a
  // caller that only admits full18 (the stored ordinal could name a tier
  // the caller cannot decode).
  auto u = make_hot_gauge();
  DslashTunable<double> full(u, 4, 0);
  DslashTunable<double> all(u, 4, 0, FormatSet::kAll);
  EXPECT_NE(full.key(), all.key());
  EXPECT_NE(all.key().find(",fmt=2"), std::string::npos) << all.key();
}

TEST(DslashTunable, TunedFormatIsRecordedAndValid) {
  Autotuner::global().clear();
  auto u = make_hot_gauge();
  const auto t = tuned_dslash_grain<double>(u, 2, 0, FormatSet::kAll);
  const int f = static_cast<int>(t.format);
  EXPECT_GE(f, 0);
  EXPECT_LT(f, kNumGaugeFormats);
  // The default sweep still pins full18.
  const auto t0 = tuned_dslash_grain<double>(u, 2, 1);
  EXPECT_EQ(t0.format, GaugeFormat::kFull18);
  Autotuner::global().clear();
}

TEST(DslashMultiTunable, FormatAxisComposesWithBatch) {
  auto u = make_hot_gauge();
  DslashMultiTunable<double> t(u, 2, 0, 4, FormatSet::kExact);
  std::set<std::int64_t> formats, nrhs;
  for (const auto& p : t.candidates()) {
    formats.insert(p.get("format", 0));
    nrhs.insert(p.get("nrhs"));
  }
  EXPECT_EQ(formats, (std::set<std::int64_t>{0, 1}));
  EXPECT_EQ(nrhs, (std::set<std::int64_t>{1, 2, 4}));
  EXPECT_NE(t.key().find(",fmt=1"), std::string::npos) << t.key();
}

}  // namespace
}  // namespace femto::tune
