#include "autotune/policy_tunable.hpp"

#include <gtest/gtest.h>

namespace femto::tune {
namespace {

TEST(PolicyTunable, CandidateSpaceIsFullCross) {
  HaloPolicyTunable t({2, 1, 1, 1}, {4, 4, 4, 4}, 24);
  EXPECT_EQ(t.candidates().size(), 6u);  // 3 policies x 2 granularities
}

TEST(PolicyTunable, DecodeRoundTrip) {
  HaloPolicyTunable t({2, 1, 1, 1}, {4, 4, 4, 4}, 24);
  for (const auto& p : t.candidates()) {
    const auto c = HaloPolicyTunable::decode(p);
    // Encode values are indices; spot check the corners.
    if (p.get("policy") == 0)
      EXPECT_EQ(c.policy, comm::CommPolicy::HostStaged);
    if (p.get("policy") == 2)
      EXPECT_EQ(c.policy, comm::CommPolicy::DirectRdma);
    if (p.get("granularity") == 1)
      EXPECT_EQ(c.granularity, comm::Granularity::PerDimension);
  }
}

TEST(PolicyTunable, KeyDependsOnConfiguration) {
  HaloPolicyTunable a({2, 1, 1, 1}, {4, 4, 4, 4}, 24);
  HaloPolicyTunable b({2, 1, 1, 2}, {4, 4, 4, 4}, 24);
  HaloPolicyTunable c({2, 1, 1, 1}, {8, 4, 4, 4}, 24);
  EXPECT_NE(a.key(), b.key());
  EXPECT_NE(a.key(), c.key());
}

TEST(PolicyTunable, TuningSelectsAWorkingPolicy) {
  Autotuner tuner;
  tuner.set_reps(1);
  HaloPolicyTunable t({2, 1, 1, 1}, {4, 4, 4, 2}, 8);
  const auto& e = tuner.tune(t);
  EXPECT_EQ(e.candidates_tried, 6);
  const auto choice = HaloPolicyTunable::decode(e.param);
  // Any policy is functionally valid; the tuner must pick one of them.
  (void)choice;
  EXPECT_GE(e.param.get("policy"), 0);
  EXPECT_LE(e.param.get("policy"), 2);
}

TEST(PolicyTunable, BytesAccountsDistributedDimsOnly) {
  HaloPolicyTunable t({2, 1, 1, 1}, {4, 4, 4, 4}, 10);
  // One split dim: 2 faces x 64 face sites x 10 reals x 8 bytes x 2 ranks.
  EXPECT_EQ(t.bytes_per_call(), 2LL * 64 * 10 * 8 * 2);
}

TEST(PolicyTunable, TunedHaloPolicyHelper) {
  Autotuner::global().clear();
  const auto c = tuned_halo_policy({2, 1, 1, 1}, {2, 2, 2, 2}, 4);
  (void)c;
  EXPECT_TRUE(Autotuner::global().size() >= 1);
  Autotuner::global().clear();
}

}  // namespace
}  // namespace femto::tune
