#include "autotune/blas_tunable.hpp"

#include <gtest/gtest.h>

#include "lattice/blas.hpp"

namespace femto::tune {
namespace {

std::shared_ptr<const Geometry> geom448() {
  return std::make_shared<Geometry>(4, 4, 4, 8);
}

TEST(BlasTunable, KeyEncodesKernelShapeAndPrecision) {
  auto g = geom448();
  BlasTunable<float> t(g, 8, Subset::Odd, BlasKernel::AxpyNorm2);
  EXPECT_NE(t.key().find("blas:axpy_norm2"), std::string::npos);
  EXPECT_NE(t.key().find("4x4x4x8"), std::string::npos);
  EXPECT_NE(t.key().find("l5=8"), std::string::npos);
  EXPECT_NE(t.key().find("prec=4"), std::string::npos);

  BlasTunable<double> td(g, 8, Subset::Odd, BlasKernel::AxpyNorm2);
  EXPECT_NE(td.key(), t.key());
  BlasTunable<float> tt(g, 8, Subset::Odd, BlasKernel::TripleCgUpdate);
  EXPECT_NE(tt.key(), t.key());
  EXPECT_NE(tt.key().find("triple_cg_update"), std::string::npos);
}

TEST(BlasTunable, CandidatesCoverGrainRange) {
  auto g = geom448();
  BlasTunable<float> t(g, 4, Subset::Odd, BlasKernel::AxpyNorm2);
  const auto c = t.candidates();
  ASSERT_GE(c.size(), 2u);
  EXPECT_EQ(c.front().get("grain"), 1024);
  // Last candidate runs the whole field in one chunk.
  const std::int64_t reals =
      g->half_volume() * 4 * static_cast<std::int64_t>(kSpinorReals);
  EXPECT_EQ(c.back().get("grain"), reals);
}

TEST(BlasTunable, RestoreUndoesTheSearchMutations) {
  // The fused kernels are data-destructive; the tuner's backup/restore
  // hooks must leave the scratch fields bitwise where they started.
  Autotuner tuner;
  tuner.set_reps(1);
  auto g = geom448();
  BlasTunable<float> t(g, 2, Subset::Odd, BlasKernel::TripleCgUpdate);
  const SpinorField<float> x_before = t.scratch_x();
  const SpinorField<float> y_before = t.scratch_y();
  tuner.tune(t);
  for (std::int64_t k = 0; k < x_before.reals(); k += 13) {
    ASSERT_EQ(t.scratch_x().data()[k], x_before.data()[k]) << "k=" << k;
    ASSERT_EQ(t.scratch_y().data()[k], y_before.data()[k]) << "k=" << k;
  }
}

TEST(BlasTunable, TunedGrainComesFromCacheWithFusedEntries) {
  Autotuner::global().clear();
  auto g = geom448();
  const std::size_t grain = tuned_blas_grain<float>(g, 4, Subset::Odd);
  EXPECT_GT(grain, 0u);
  // The CG hot-path fused kernels are all visible in the tune cache.
  EXPECT_GE(Autotuner::global().size(), 3u);
  const auto misses = Autotuner::global().cache_misses();
  const std::size_t again = tuned_blas_grain<float>(g, 4, Subset::Odd);
  EXPECT_EQ(again, grain);
  EXPECT_EQ(Autotuner::global().cache_misses(), misses);  // pure lookup
  Autotuner::global().clear();
}

TEST(BlasTunable, MetricsPopulated) {
  Autotuner tuner;
  tuner.set_reps(1);
  auto g = geom448();
  BlasTunable<double> t(g, 2, Subset::Even, BlasKernel::AxpyNorm2);
  const auto& e = tuner.tune(t);
  EXPECT_GT(e.gflops, 0.0);
  EXPECT_GT(e.gbytes, 0.0);
  EXPECT_GT(e.seconds, 0.0);
  EXPECT_GT(e.candidates_tried, 0);
}

}  // namespace
}  // namespace femto::tune
