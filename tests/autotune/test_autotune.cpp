#include "autotune/autotune.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <thread>

namespace femto::tune {
namespace {

/// A tunable whose "kernel" sleeps longer for worse knob values, so the
/// brute-force search has a known optimum.
class FakeKernel : public Tunable {
 public:
  explicit FakeKernel(std::string key) : key_(std::move(key)) {}

  std::string key() const override { return key_; }

  std::vector<TuneParam> candidates() const override {
    std::vector<TuneParam> c;
    for (std::int64_t block : {1, 2, 4, 8}) {
      TuneParam p;
      p.knobs["block"] = block;
      c.push_back(p);
    }
    return c;
  }

  void apply(const TuneParam& p) override {
    ++applies;
    last_block = p.get("block");
    // block == 4 is fastest.  Busy-wait (sleep granularity on loaded
    // machines can invert sub-millisecond orderings).
    const auto us = last_block == 4 ? 100 : 1500;
    const auto t0 = std::chrono::steady_clock::now();
    while (std::chrono::steady_clock::now() - t0 <
           std::chrono::microseconds(us)) {
    }
  }

  void backup() override { ++backups; }
  void restore() override { ++restores; }
  std::int64_t flops_per_call() const override { return 1000000; }
  std::int64_t bytes_per_call() const override { return 500000; }

  int applies = 0;
  int backups = 0;
  int restores = 0;
  std::int64_t last_block = 0;

 private:
  std::string key_;
};

TEST(Autotuner, FindsFastestCandidate) {
  Autotuner tuner;
  FakeKernel k("kern-a");
  const auto& e = tuner.tune(k);
  EXPECT_EQ(e.param.get("block"), 4);
  EXPECT_EQ(e.candidates_tried, 4);
  EXPECT_GT(e.gflops, 0.0);
  EXPECT_GT(e.gbytes, 0.0);
}

TEST(Autotuner, SecondCallIsCacheHit) {
  Autotuner tuner;
  FakeKernel k("kern-b");
  tuner.tune(k);
  const int applies_after_search = k.applies;
  tuner.tune(k);
  EXPECT_EQ(k.applies, applies_after_search);  // no re-search
  EXPECT_EQ(tuner.cache_hits(), 1);
  EXPECT_EQ(tuner.cache_misses(), 1);
}

TEST(Autotuner, DistinctKeysTunedSeparately) {
  Autotuner tuner;
  FakeKernel a("kern-c1"), b("kern-c2");
  tuner.tune(a);
  tuner.tune(b);
  EXPECT_EQ(tuner.size(), 2u);
  EXPECT_TRUE(tuner.contains("kern-c1"));
  EXPECT_TRUE(tuner.contains("kern-c2"));
  EXPECT_FALSE(tuner.contains("kern-c3"));
}

TEST(Autotuner, BackupRestoreBracketTheSearch) {
  // Data-destructive kernels rely on backup() before and restore() after.
  Autotuner tuner;
  FakeKernel k("kern-d");
  tuner.tune(k);
  EXPECT_EQ(k.backups, 1);
  EXPECT_EQ(k.restores, 1);
}

TEST(Autotuner, SaveLoadRoundTrip) {
  Autotuner tuner;
  FakeKernel k("kern-e");
  const auto& e = tuner.tune(k);
  const std::string path = "/tmp/femtotune_test.cache";
  tuner.save(path);

  Autotuner fresh;
  EXPECT_EQ(fresh.load(path), 1);
  EXPECT_TRUE(fresh.contains("kern-e"));
  // Tuning the same key in the fresh tuner is now a pure lookup.
  FakeKernel k2("kern-e");
  const auto& e2 = fresh.tune(k2);
  EXPECT_EQ(k2.applies, 0);
  EXPECT_EQ(e2.param.get("block"), e.param.get("block"));
  std::remove(path.c_str());
}

TEST(Autotuner, LoadRejectsUnknownFile) {
  const std::string path = "/tmp/femtotune_bad.cache";
  {
    FILE* f = fopen(path.c_str(), "w");
    fputs("not a tune cache\n", f);
    fclose(f);
  }
  Autotuner tuner;
  EXPECT_EQ(tuner.load(path), 0);
  EXPECT_EQ(tuner.load("/tmp/definitely_missing_file.cache"), 0);
  std::remove(path.c_str());
}

TEST(Autotuner, InsertAndClear) {
  Autotuner tuner;
  TuneEntry e;
  e.param.knobs["grain"] = 128;
  tuner.insert("manual", e);
  EXPECT_TRUE(tuner.contains("manual"));
  tuner.clear();
  EXPECT_EQ(tuner.size(), 0u);
}

TEST(TuneParamTest, ToStringStable) {
  TuneParam p;
  p.knobs["b"] = 2;
  p.knobs["a"] = 1;
  EXPECT_EQ(p.to_string(), "a=1,b=2");  // map order: deterministic
}

}  // namespace
}  // namespace femto::tune
