#include "jobmgr/metaq_queue.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <thread>

namespace femto::jm {
namespace {

class MetaqQueueTest : public ::testing::Test {
 protected:
  MetaqQueueTest()
      : root_("/tmp/femto_metaq_" +
              std::to_string(
                  ::testing::UnitTest::GetInstance()->random_seed()) +
              "_" + std::string(::testing::UnitTest::GetInstance()
                                    ->current_test_info()
                                    ->name())) {
    std::filesystem::remove_all(root_);
  }
  ~MetaqQueueTest() override { std::filesystem::remove_all(root_); }

  Task make_task(int id, int nodes = 4) {
    Task t;
    t.id = id;
    t.nodes = nodes;
    t.duration = 100 + id;
    return t;
  }

  std::string root_;
};

TEST_F(MetaqQueueTest, SubmitClaimFinishLifecycle) {
  MetaqQueue q(root_);
  q.submit(make_task(1));
  EXPECT_EQ(q.pending(), 1u);
  auto claimed = q.claim(8);
  ASSERT_TRUE(claimed.has_value());
  EXPECT_EQ(claimed->task.id, 1);
  EXPECT_EQ(q.pending(), 0u);
  EXPECT_EQ(q.working(), 1u);
  q.finish(*claimed);
  EXPECT_EQ(q.working(), 0u);
  EXPECT_EQ(q.finished(), 1u);
}

TEST_F(MetaqQueueTest, TaskFileRoundTrip) {
  Task t;
  t.id = 42;
  t.kind = TaskKind::CpuContraction;
  t.nodes = 1;
  t.gpus_per_node = 0;
  t.cpu_slots_per_node = 16;
  t.duration = 123.5;
  const auto back = MetaqQueue::parse_task(MetaqQueue::format_task(t));
  EXPECT_EQ(back.id, 42);
  EXPECT_EQ(back.kind, TaskKind::CpuContraction);
  EXPECT_EQ(back.nodes, 1);
  EXPECT_EQ(back.cpu_slots_per_node, 16);
  EXPECT_DOUBLE_EQ(back.duration, 123.5);
}

TEST_F(MetaqQueueTest, PriorityOrderDrainsLowFirst) {
  MetaqQueue q(root_);
  q.submit(make_task(10), /*priority=*/7);
  q.submit(make_task(11), /*priority=*/1);
  q.submit(make_task(12), /*priority=*/4);
  EXPECT_EQ(q.claim(8)->task.id, 11);
  EXPECT_EQ(q.claim(8)->task.id, 12);
  EXPECT_EQ(q.claim(8)->task.id, 10);
}

TEST_F(MetaqQueueTest, ResourceFilteringSkipsBigTasks) {
  MetaqQueue q(root_);
  q.submit(make_task(1, /*nodes=*/16), 0);
  q.submit(make_task(2, /*nodes=*/2), 5);
  // Only 4 free nodes: the 16-node task is skipped even though it has
  // higher priority (this is backfilling).
  auto claimed = q.claim(4);
  ASSERT_TRUE(claimed.has_value());
  EXPECT_EQ(claimed->task.id, 2);
  EXPECT_FALSE(q.claim(4).has_value());
  EXPECT_TRUE(q.claim(16).has_value());
}

TEST_F(MetaqQueueTest, EmptyQueueClaimsNothing) {
  MetaqQueue q(root_);
  EXPECT_FALSE(q.claim(128).has_value());
}

TEST_F(MetaqQueueTest, RequeueReturnsTaskToPending) {
  MetaqQueue q(root_);
  q.submit(make_task(5));
  auto claimed = q.claim(8);
  ASSERT_TRUE(claimed.has_value());
  q.requeue(*claimed, 0);
  EXPECT_EQ(q.working(), 0u);
  EXPECT_EQ(q.pending(), 1u);
  EXPECT_EQ(q.claim(8)->task.id, 5);
}

TEST_F(MetaqQueueTest, FinishUnclaimedThrows) {
  MetaqQueue q(root_);
  QueuedTask fake;
  fake.name = "task_9_99";
  EXPECT_THROW(q.finish(fake), std::runtime_error);
}

TEST_F(MetaqQueueTest, ConcurrentWorkersClaimEachTaskExactlyOnce) {
  MetaqQueue q(root_);
  const int n_tasks = 60;
  for (int i = 0; i < n_tasks; ++i) q.submit(make_task(i, 1));

  std::atomic<int> claimed_total{0};
  std::vector<std::thread> workers;
  std::array<std::atomic<int>, 60> seen{};
  for (int w = 0; w < 4; ++w) {
    workers.emplace_back([&] {
      MetaqQueue local(root_);  // each allocation opens the same queue dir
      while (auto t = local.claim(8)) {
        seen[static_cast<std::size_t>(t->task.id)]++;
        claimed_total++;
        local.finish(*t);
      }
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(claimed_total.load(), n_tasks);
  for (auto& s : seen) EXPECT_EQ(s.load(), 1);
  EXPECT_EQ(q.finished(), static_cast<std::size_t>(n_tasks));
  EXPECT_EQ(q.pending(), 0u);
}

TEST_F(MetaqQueueTest, QueueSurvivesReopen) {
  {
    MetaqQueue q(root_);
    q.submit(make_task(3));
  }
  MetaqQueue q2(root_);  // fresh "allocation" sees the same state
  EXPECT_EQ(q2.pending(), 1u);
  EXPECT_EQ(q2.claim(8)->task.id, 3);
}

}  // namespace
}  // namespace femto::jm
