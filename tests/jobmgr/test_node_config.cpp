#include "jobmgr/node_config.hpp"

#include "jobmgr/workload.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

namespace femto::jm {
namespace {

const char* kSierraLike = R"(
# sierra-like partition
nodes       = 256
gpus        = 4
cpu_slots   = 40
memory_gb   = 256
block_nodes = 4
lump_nodes  = 64
jitter      = 0.03
bad_node_prob = 0.004
seed        = 11
)";

TEST(NodeConfig, ParsesAllKeys) {
  const auto d = parse_node_description(kSierraLike);
  EXPECT_EQ(d.cluster.n_nodes, 256);
  EXPECT_EQ(d.cluster.node.gpus, 4);
  EXPECT_EQ(d.cluster.node.cpu_slots, 40);
  EXPECT_DOUBLE_EQ(d.cluster.node.mem_gb, 256.0);
  EXPECT_EQ(d.cluster.nodes_per_block, 4);
  EXPECT_EQ(d.lump_nodes, 64);
  EXPECT_DOUBLE_EQ(d.cluster.perf_jitter_sigma, 0.03);
  EXPECT_DOUBLE_EQ(d.cluster.bad_node_prob, 0.004);
  EXPECT_EQ(d.cluster.seed, 11u);
  EXPECT_EQ(d.jm_options().lump_nodes, 64);
}

TEST(NodeConfig, DefaultsSurviveSparseInput) {
  const auto d = parse_node_description("nodes = 8\n");
  EXPECT_EQ(d.cluster.n_nodes, 8);
  EXPECT_EQ(d.cluster.node.gpus, 4);  // spec default
}

TEST(NodeConfig, CommentsAndBlanksIgnored) {
  const auto d = parse_node_description(
      "\n# full line comment\nnodes = 16   # trailing comment\n\n");
  EXPECT_EQ(d.cluster.n_nodes, 16);
}

TEST(NodeConfig, UnknownKeyRejectedWithLineNumber) {
  try {
    parse_node_description("nodes = 8\ngpu_count = 4\n");
    FAIL() << "expected throw";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("gpu_count"), std::string::npos);
  }
}

TEST(NodeConfig, MalformedLinesRejected) {
  EXPECT_THROW(parse_node_description("nodes 8\n"), std::invalid_argument);
  EXPECT_THROW(parse_node_description("nodes =\n"), std::invalid_argument);
  EXPECT_THROW(parse_node_description("nodes = eight\n"),
               std::invalid_argument);
}

TEST(NodeConfig, StructuralConstraints) {
  // Lumps must be block multiples (blocks subdivide lumps, paper S V).
  EXPECT_THROW(
      parse_node_description("nodes = 8\nblock_nodes = 4\nlump_nodes = 6\n"),
      std::invalid_argument);
  EXPECT_THROW(
      parse_node_description("nodes = 8\nblock_nodes = 8\nlump_nodes = 4\n"),
      std::invalid_argument);
  EXPECT_THROW(parse_node_description("nodes = 0\n"), std::invalid_argument);
}

TEST(NodeConfig, FormatParsesBack) {
  const auto d = parse_node_description(kSierraLike);
  const auto d2 = parse_node_description(format_node_description(d));
  EXPECT_EQ(d2.cluster.n_nodes, d.cluster.n_nodes);
  EXPECT_EQ(d2.lump_nodes, d.lump_nodes);
  EXPECT_DOUBLE_EQ(d2.cluster.bad_node_prob, d.cluster.bad_node_prob);
}

TEST(NodeConfig, LoadFromFile) {
  const std::string path = "/tmp/femto_nodes.cfg";
  {
    std::ofstream out(path);
    out << kSierraLike;
  }
  const auto d = load_node_description(path);
  EXPECT_EQ(d.cluster.n_nodes, 256);
  std::remove(path.c_str());
  EXPECT_THROW(load_node_description("/tmp/no_such_nodes.cfg"),
               std::invalid_argument);
}

TEST(NodeConfig, DrivesARealSchedulerRun) {
  // End to end: parse -> build cluster -> run mpi_jm.
  auto d = parse_node_description(kSierraLike);
  d.cluster.n_nodes = 32;  // keep the test quick
  cluster::Cluster cl(d.cluster);
  WorkloadOptions w;
  w.n_propagators = 16;
  const auto rep = run_mpi_jm(cl, make_campaign(w), d.jm_options());
  EXPECT_EQ(rep.tasks_completed, 32);
}

}  // namespace
}  // namespace femto::jm
