// Job-management behaviour the paper reports:
//  * naive bundling idles 20-25% of the allocation,
//  * METAQ backfilling recovers most of it,
//  * mpi_jm matches/beats METAQ, never fragments placements across blocks,
//    co-schedules CPU contractions for free, starts thousands of nodes in
//    minutes, and drops lumps containing bad nodes instead of dying.

#include "jobmgr/schedulers.hpp"

#include <gtest/gtest.h>

#include "jobmgr/workload.hpp"

namespace femto::jm {
namespace {

cluster::ClusterSpec sierra_like(int n_nodes) {
  cluster::ClusterSpec s;
  s.n_nodes = n_nodes;
  s.node.gpus = 4;
  s.node.cpu_slots = 40;
  s.nodes_per_block = 4;
  s.perf_jitter_sigma = 0.03;
  s.seed = 404;
  return s;
}

WorkloadOptions campaign(int n_props) {
  WorkloadOptions w;
  w.n_propagators = n_props;
  w.nodes_per_solve = 4;
  w.solve_seconds = 600;
  w.duration_jitter = 0.18;
  w.seed = 77;
  return w;
}

TEST(Workload, CampaignShape) {
  const auto tasks = make_campaign(campaign(10));
  EXPECT_EQ(tasks.size(), 20u);  // solve + contraction each
  int solves = 0, contractions = 0;
  for (const auto& t : tasks) {
    if (t.kind == TaskKind::GpuSolve) {
      ++solves;
      EXPECT_EQ(t.nodes, 4);
      EXPECT_TRUE(t.deps.empty());
    } else {
      ++contractions;
      ASSERT_EQ(t.deps.size(), 1u);
    }
  }
  EXPECT_EQ(solves, 10);
  EXPECT_EQ(contractions, 10);
}

TEST(Workload, DurationsJitterAroundNominal) {
  const auto tasks = make_campaign(campaign(200));
  double lo = 1e30, hi = 0, sum = 0;
  int n = 0;
  for (const auto& t : tasks) {
    if (t.kind != TaskKind::GpuSolve) continue;
    lo = std::min(lo, t.duration);
    hi = std::max(hi, t.duration);
    sum += t.duration;
    ++n;
  }
  EXPECT_NEAR(sum / n, 600.0, 40.0);
  EXPECT_LT(lo, 500.0);
  EXPECT_GT(hi, 700.0);
}

TEST(Schedulers, AllCompleteEveryTask) {
  cluster::Cluster cl(sierra_like(64));
  const auto tasks = make_campaign(campaign(64));
  for (auto rep : {run_naive_bundling(cl, tasks), run_metaq(cl, tasks),
                   run_mpi_jm(cl, tasks, {.lump_nodes = 16})}) {
    EXPECT_EQ(rep.tasks_completed, static_cast<int>(tasks.size()))
        << rep.scheduler;
    // Dependencies respected: contraction starts after its solve ends.
    std::map<int, double> end_time;
    for (const auto& r : rep.records) end_time[r.task_id] = r.end;
    for (const auto& t : tasks)
      for (int d : t.deps)
        for (const auto& r : rep.records)
          if (r.task_id == t.id)
            EXPECT_GE(r.start, end_time[d] - 1e-9) << rep.scheduler;
  }
}

TEST(Schedulers, NaiveBundlingIdlesTwentyishPercent) {
  cluster::Cluster cl(sierra_like(128));
  auto w = campaign(256);
  w.with_contractions = false;
  const auto rep = run_naive_bundling(cl, make_campaign(w));
  EXPECT_GT(rep.idle_fraction(), 0.12);
  EXPECT_LT(rep.idle_fraction(), 0.33);
}

TEST(Schedulers, MetaqBeatsNaive) {
  cluster::Cluster cl(sierra_like(128));
  auto w = campaign(256);
  w.with_contractions = false;
  const auto tasks = make_campaign(w);
  const auto naive = run_naive_bundling(cl, tasks);
  const auto metaq = run_metaq(cl, tasks);
  EXPECT_LT(metaq.makespan, naive.makespan);
  EXPECT_LT(metaq.idle_fraction(), naive.idle_fraction());
  // The paper: backfilling gave an across-the-board ~25% speed-up.
  EXPECT_GT(naive.makespan / metaq.makespan, 1.1);
}

TEST(Schedulers, MetaqFragmentsPlacements) {
  // With MIXED task sizes (the realistic campaign: 4-node solves plus
  // 1-node contractions) completing tasks free scattered nodes, so METAQ's
  // first-fit placements drift across block boundaries.  A uniform
  // aligned workload would never fragment — the mix is what bites.
  cluster::Cluster cl(sierra_like(64));
  auto w = campaign(150);
  w.duration_jitter = 0.3;
  w.with_contractions = true;  // 1-node tasks interleave with 4-node ones
  const auto rep = run_metaq(cl, make_campaign(w));
  EXPECT_GT(rep.fragmented_placements, 0);
}

TEST(Schedulers, MpiJmNeverFragments) {
  cluster::Cluster cl(sierra_like(64));
  auto w = campaign(200);
  w.duration_jitter = 0.3;
  const auto rep = run_mpi_jm(cl, make_campaign(w), {.lump_nodes = 16});
  EXPECT_EQ(rep.fragmented_placements, 0);
  for (const auto& r : rep.records) EXPECT_FALSE(r.spans_blocks);
}

TEST(Schedulers, MpiJmCoschedulesContractions) {
  cluster::Cluster cl(sierra_like(32));
  const auto rep =
      run_mpi_jm(cl, make_campaign(campaign(64)), {.lump_nodes = 16});
  EXPECT_GT(rep.cpu_tasks_coscheduled, 0);
}

TEST(Schedulers, MpiJmAtLeastAsEfficientAsMetaq) {
  cluster::Cluster cl(sierra_like(128));
  const auto tasks = make_campaign(campaign(400));
  const auto metaq = run_metaq(cl, tasks);
  const auto jm = run_mpi_jm(cl, tasks, {.lump_nodes = 32});
  EXPECT_LE(jm.makespan, metaq.makespan * 1.05);
}

TEST(Schedulers, MpiJmStartupScalesGently) {
  // Paper: 4224 nodes up and running in 3-5 minutes.
  cluster::ClusterSpec spec = sierra_like(4224);
  cluster::Cluster cl(spec);
  auto w = campaign(50);
  w.with_contractions = false;
  const auto rep = run_mpi_jm(cl, make_campaign(w), {.lump_nodes = 128});
  EXPECT_GT(rep.startup_time, 60.0);
  EXPECT_LT(rep.startup_time, 300.0);
}

TEST(Schedulers, MpiJmDropsLumpsWithBadNodes) {
  auto spec = sierra_like(256);
  spec.bad_node_prob = 0.02;
  cluster::Cluster cl(spec);
  auto w = campaign(64);
  w.with_contractions = false;
  const auto rep = run_mpi_jm(cl, make_campaign(w), {.lump_nodes = 8});
  // Everything still completes despite bad nodes (lumps dropped, work
  // rescheduled on the survivors).
  EXPECT_EQ(rep.tasks_completed, 64);
}

TEST(Schedulers, MvapichRateFactorSlowsJobs) {
  cluster::Cluster cl(sierra_like(64));
  auto w = campaign(64);
  w.with_contractions = false;
  const auto tasks = make_campaign(w);
  const auto tuned = run_mpi_jm(cl, tasks, {.lump_nodes = 16});
  MpiJmOptions untuned;
  untuned.lump_nodes = 16;
  untuned.mpi_rate_factor = 0.75;  // 15% vs 20% of peak at scale
  const auto slow = run_mpi_jm(cl, tasks, untuned);
  EXPECT_GT(slow.makespan, tuned.makespan * 1.1);
}

TEST(Schedulers, GpuGranularPlacement) {
  // Summit example (S VII): jobs that use a subset of each node's GPUs can
  // share nodes under mpi_jm.
  cluster::ClusterSpec spec = sierra_like(8);
  spec.node.gpus = 6;  // Summit nodes
  spec.nodes_per_block = 8;
  cluster::Cluster cl(spec);

  std::vector<Task> tasks;
  for (int j = 0; j < 3; ++j) {
    Task t;
    t.id = j;
    t.kind = TaskKind::GpuSolve;
    t.nodes = 8;
    t.gpus_per_node = 2;  // 16 GPUs spread as 2/node over 8 nodes
    t.cpu_slots_per_node = 2;
    t.duration = 500;
    tasks.push_back(t);
  }
  const auto rep = run_mpi_jm(cl, tasks, {.lump_nodes = 8});
  EXPECT_EQ(rep.tasks_completed, 3);
  // All three must run CONCURRENTLY on the same 8 nodes (6 GPUs = 3 x 2).
  double latest_start = 0, earliest_end = 1e30;
  for (const auto& r : rep.records) {
    latest_start = std::max(latest_start, r.start);
    earliest_end = std::min(earliest_end, r.end);
  }
  EXPECT_LT(latest_start, earliest_end);
}

TEST(Schedulers, ReportSummariesMentionScheduler) {
  cluster::Cluster cl(sierra_like(16));
  auto w = campaign(8);
  const auto rep = run_metaq(cl, make_campaign(w));
  EXPECT_NE(rep.summary().find("metaq"), std::string::npos);
}

}  // namespace
}  // namespace femto::jm
