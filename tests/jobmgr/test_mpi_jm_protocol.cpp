// The mpi_jm control plane over REAL message passing: connect handshake
// with grace period, job dispatch, completion accounting, dead-lump
// tolerance, clean shutdown.

#include "jobmgr/mpi_jm_protocol.hpp"

#include <gtest/gtest.h>

#include <set>

namespace femto::jm {
namespace {

std::vector<Task> make_tasks(int n, int nodes = 4) {
  std::vector<Task> tasks;
  for (int i = 0; i < n; ++i) {
    Task t;
    t.id = i;
    t.nodes = nodes;
    t.duration = 50 + 10 * (i % 3);
    tasks.push_back(t);
  }
  return tasks;
}

TEST(MpiJmProtocol, AllLumpsConnectAndAllJobsComplete) {
  ProtocolOptions opts;
  opts.n_lumps = 4;
  const auto tasks = make_tasks(20);
  const auto rep = run_mpi_jm_protocol(tasks, opts);
  EXPECT_EQ(rep.lumps_connected, 4);
  EXPECT_EQ(rep.lumps_ignored, 0);
  EXPECT_EQ(rep.jobs_completed, 20);
  EXPECT_TRUE(rep.clean_shutdown);
  // Every job placed exactly once.
  std::set<int> placed;
  for (const auto& [job, lump] : rep.placement) {
    EXPECT_GE(lump, 1);
    EXPECT_LE(lump, 4);
    placed.insert(job);
  }
  EXPECT_EQ(placed.size(), 20u);
}

TEST(MpiJmProtocol, WorkSpreadsAcrossLumps) {
  ProtocolOptions opts;
  opts.n_lumps = 4;
  const auto rep = run_mpi_jm_protocol(make_tasks(24), opts);
  // With 24 similar jobs on 4 lumps every lump must have run several.
  for (int lump = 1; lump <= 4; ++lump)
    EXPECT_GE(rep.lump_logs[static_cast<std::size_t>(lump)].size(), 3u)
        << lump;
}

TEST(MpiJmProtocol, DeadLumpsAreIgnoredAndWorkStillFinishes) {
  ProtocolOptions opts;
  opts.n_lumps = 4;
  opts.dead_lumps = {2, 3};  // half the machine never comes up
  const auto tasks = make_tasks(12);
  const auto rep = run_mpi_jm_protocol(tasks, opts);
  EXPECT_EQ(rep.lumps_connected, 2);
  EXPECT_EQ(rep.lumps_ignored, 2);
  EXPECT_EQ(rep.jobs_completed, 12);
  EXPECT_TRUE(rep.clean_shutdown);
  // Nothing placed on the dead lumps.
  for (const auto& [job, lump] : rep.placement) {
    (void)job;
    EXPECT_NE(lump, 2);
    EXPECT_NE(lump, 3);
  }
}

TEST(MpiJmProtocol, AllLumpsDeadShutsDownCleanly) {
  ProtocolOptions opts;
  opts.n_lumps = 3;
  opts.dead_lumps = {1, 2, 3};
  const auto rep = run_mpi_jm_protocol(make_tasks(5), opts);
  EXPECT_EQ(rep.lumps_connected, 0);
  EXPECT_EQ(rep.jobs_completed, 0);
  EXPECT_TRUE(rep.clean_shutdown);
}

TEST(MpiJmProtocol, NoTasksIsCleanNoop) {
  ProtocolOptions opts;
  opts.n_lumps = 2;
  const auto rep = run_mpi_jm_protocol({}, opts);
  EXPECT_EQ(rep.jobs_completed, 0);
  EXPECT_TRUE(rep.clean_shutdown);
}

TEST(MpiJmProtocol, OversizedTaskRejected) {
  ProtocolOptions opts;
  opts.n_lumps = 2;
  opts.nodes_per_lump = 4;
  EXPECT_THROW(run_mpi_jm_protocol(make_tasks(1, /*nodes=*/8), opts),
               std::invalid_argument);
}

TEST(MpiJmProtocol, CompletionLogsAccountForEveryJob) {
  ProtocolOptions opts;
  opts.n_lumps = 3;
  const auto rep = run_mpi_jm_protocol(make_tasks(15), opts);
  std::set<int> seen;
  for (const auto& log : rep.lump_logs)
    for (int id : log) EXPECT_TRUE(seen.insert(id).second);
  EXPECT_EQ(seen.size(), 15u);
}

}  // namespace
}  // namespace femto::jm
