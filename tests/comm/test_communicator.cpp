#include "comm/communicator.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>

#include "comm/process_grid.hpp"
#include "obs/flow.hpp"
#include "obs/trace.hpp"

namespace femto::comm {
namespace {

TEST(Communicator, PointToPoint) {
  run_ranks(2, [](RankHandle& h) {
    if (h.rank() == 0) {
      h.send_vec<double>(1, 7, {1.0, 2.0, 3.0});
    } else {
      auto v = h.recv_vec<double>(0, 7);
      ASSERT_EQ(v.size(), 3u);
      EXPECT_EQ(v[1], 2.0);
    }
  });
}

TEST(Communicator, TagMatching) {
  // Messages with different tags must not cross even if sent out of order.
  run_ranks(2, [](RankHandle& h) {
    if (h.rank() == 0) {
      h.send_vec<int>(1, 5, {55});
      h.send_vec<int>(1, 4, {44});
    } else {
      auto a = h.recv_vec<int>(0, 4);
      auto b = h.recv_vec<int>(0, 5);
      EXPECT_EQ(a[0], 44);
      EXPECT_EQ(b[0], 55);
    }
  });
}

TEST(Communicator, FifoPerTag) {
  run_ranks(2, [](RankHandle& h) {
    if (h.rank() == 0) {
      for (int i = 0; i < 10; ++i) h.send_vec<int>(1, 9, {i});
    } else {
      for (int i = 0; i < 10; ++i)
        EXPECT_EQ(h.recv_vec<int>(0, 9)[0], i);
    }
  });
}

TEST(Communicator, AnySource) {
  run_ranks(3, [](RankHandle& h) {
    if (h.rank() != 0) {
      h.send_vec<int>(0, 1, {h.rank()});
    } else {
      int sum = 0;
      for (int i = 0; i < 2; ++i) {
        Message m = h.recv(-1, 1);
        int v;
        std::memcpy(&v, m.payload.data(), sizeof(int));
        sum += v;
      }
      EXPECT_EQ(sum, 3);
    }
  });
}

TEST(Communicator, Barrier) {
  std::atomic<int> phase0{0}, violations{0};
  run_ranks(4, [&](RankHandle& h) {
    phase0++;
    h.barrier();
    if (phase0.load() != 4) violations++;
  });
  EXPECT_EQ(violations.load(), 0);
}

TEST(Communicator, BarrierReusable) {
  std::atomic<int> counter{0};
  run_ranks(3, [&](RankHandle& h) {
    for (int it = 0; it < 10; ++it) {
      counter++;
      h.barrier();
      EXPECT_EQ(counter.load() % 3, 0);
      h.barrier();
    }
  });
}

TEST(Communicator, AllreduceSum) {
  run_ranks(5, [](RankHandle& h) {
    const double got = h.allreduce_sum(static_cast<double>(h.rank() + 1));
    EXPECT_DOUBLE_EQ(got, 15.0);
  });
}

TEST(Communicator, Broadcast) {
  run_ranks(4, [](RankHandle& h) {
    const double v = h.rank() == 2 ? 3.25 : -1.0;
    EXPECT_DOUBLE_EQ(h.broadcast(v, 2), 3.25);
  });
}

TEST(Communicator, RankExceptionPropagates) {
  EXPECT_THROW(run_ranks(2,
                         [](RankHandle& h) {
                           if (h.rank() == 1)
                             throw std::runtime_error("rank failure");
                         }),
               std::runtime_error);
}

TEST(ProcessGrid, RankCoordRoundTrip) {
  ProcessGrid grid({2, 3, 1, 4});
  EXPECT_EQ(grid.size(), 24);
  for (int r = 0; r < grid.size(); ++r)
    EXPECT_EQ(grid.rank_of(grid.coords_of(r)), r);
}

TEST(ProcessGrid, NeighborsWrap) {
  ProcessGrid grid({2, 2, 1, 2});
  // +x then -x returns home.
  for (int r = 0; r < grid.size(); ++r) {
    EXPECT_EQ(grid.neighbor(grid.neighbor(r, 0, +1), 0, -1), r);
    // dim 2 has size 1: neighbor is self.
    EXPECT_EQ(grid.neighbor(r, 2, +1), r);
  }
}

TEST(ProcessGrid, LocalExtentDivides) {
  EXPECT_EQ(ProcessGrid::local_extent(48, 4), 12);
  EXPECT_THROW(ProcessGrid::local_extent(48, 5), std::invalid_argument);
}

// Femtoscope causal layer (DESIGN.md §15): every traced send must pair
// with its recv in the snapshot, rank-tagged on both ends, and the claim
// edge's wait is the recv-side blocked time.
TEST(Communicator, TracedSendRecvPairsAsFlowEdges) {
  obs::set_trace_enabled(true);
  obs::trace_clear();
  constexpr int kMsgs = 4;
  run_ranks(2, [](RankHandle& h) {
    if (h.rank() == 0) {
      for (int i = 0; i < kMsgs; ++i) h.send_vec<int>(1, 3, {i});
    } else {
      for (int i = 0; i < kMsgs; ++i) h.recv_vec<int>(0, 3);
    }
  });
  const auto snap = obs::trace_snapshot();
  const auto edges = obs::flow_edges(snap);
  ASSERT_EQ(edges.size(), static_cast<std::size_t>(kMsgs));
  for (const auto& e : edges) {
    EXPECT_EQ(e.out.rank, 0);
    EXPECT_EQ(e.in.rank, 1);
    EXPECT_STREQ(e.out.name, "send");
    EXPECT_STREQ(e.in.name, "recv");
    EXPECT_GE(e.wait_ns, 0);
  }
  const auto report = obs::critical_path(snap);
  EXPECT_EQ(report.edges_matched, kMsgs);
  EXPECT_FALSE(report.chain.empty());
  obs::trace_clear();
}

TEST(Communicator, UntracedMessagesCarryNoFlow) {
  obs::set_trace_enabled(false);
  obs::trace_clear();
  run_ranks(2, [](RankHandle& h) {
    if (h.rank() == 0) {
      h.send_vec<int>(1, 8, {1});
    } else {
      Message m = h.recv(0, 8);
      EXPECT_EQ(m.flow_id, 0u);
    }
  });
  EXPECT_TRUE(obs::trace_snapshot().events.empty());
  obs::set_trace_enabled(true);
}

}  // namespace
}  // namespace femto::comm
