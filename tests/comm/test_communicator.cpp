#include "comm/communicator.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>

#include "comm/process_grid.hpp"

namespace femto::comm {
namespace {

TEST(Communicator, PointToPoint) {
  run_ranks(2, [](RankHandle& h) {
    if (h.rank() == 0) {
      h.send_vec<double>(1, 7, {1.0, 2.0, 3.0});
    } else {
      auto v = h.recv_vec<double>(0, 7);
      ASSERT_EQ(v.size(), 3u);
      EXPECT_EQ(v[1], 2.0);
    }
  });
}

TEST(Communicator, TagMatching) {
  // Messages with different tags must not cross even if sent out of order.
  run_ranks(2, [](RankHandle& h) {
    if (h.rank() == 0) {
      h.send_vec<int>(1, 5, {55});
      h.send_vec<int>(1, 4, {44});
    } else {
      auto a = h.recv_vec<int>(0, 4);
      auto b = h.recv_vec<int>(0, 5);
      EXPECT_EQ(a[0], 44);
      EXPECT_EQ(b[0], 55);
    }
  });
}

TEST(Communicator, FifoPerTag) {
  run_ranks(2, [](RankHandle& h) {
    if (h.rank() == 0) {
      for (int i = 0; i < 10; ++i) h.send_vec<int>(1, 9, {i});
    } else {
      for (int i = 0; i < 10; ++i)
        EXPECT_EQ(h.recv_vec<int>(0, 9)[0], i);
    }
  });
}

TEST(Communicator, AnySource) {
  run_ranks(3, [](RankHandle& h) {
    if (h.rank() != 0) {
      h.send_vec<int>(0, 1, {h.rank()});
    } else {
      int sum = 0;
      for (int i = 0; i < 2; ++i) {
        Message m = h.recv(-1, 1);
        int v;
        std::memcpy(&v, m.payload.data(), sizeof(int));
        sum += v;
      }
      EXPECT_EQ(sum, 3);
    }
  });
}

TEST(Communicator, Barrier) {
  std::atomic<int> phase0{0}, violations{0};
  run_ranks(4, [&](RankHandle& h) {
    phase0++;
    h.barrier();
    if (phase0.load() != 4) violations++;
  });
  EXPECT_EQ(violations.load(), 0);
}

TEST(Communicator, BarrierReusable) {
  std::atomic<int> counter{0};
  run_ranks(3, [&](RankHandle& h) {
    for (int it = 0; it < 10; ++it) {
      counter++;
      h.barrier();
      EXPECT_EQ(counter.load() % 3, 0);
      h.barrier();
    }
  });
}

TEST(Communicator, AllreduceSum) {
  run_ranks(5, [](RankHandle& h) {
    const double got = h.allreduce_sum(static_cast<double>(h.rank() + 1));
    EXPECT_DOUBLE_EQ(got, 15.0);
  });
}

TEST(Communicator, Broadcast) {
  run_ranks(4, [](RankHandle& h) {
    const double v = h.rank() == 2 ? 3.25 : -1.0;
    EXPECT_DOUBLE_EQ(h.broadcast(v, 2), 3.25);
  });
}

TEST(Communicator, RankExceptionPropagates) {
  EXPECT_THROW(run_ranks(2,
                         [](RankHandle& h) {
                           if (h.rank() == 1)
                             throw std::runtime_error("rank failure");
                         }),
               std::runtime_error);
}

TEST(ProcessGrid, RankCoordRoundTrip) {
  ProcessGrid grid({2, 3, 1, 4});
  EXPECT_EQ(grid.size(), 24);
  for (int r = 0; r < grid.size(); ++r)
    EXPECT_EQ(grid.rank_of(grid.coords_of(r)), r);
}

TEST(ProcessGrid, NeighborsWrap) {
  ProcessGrid grid({2, 2, 1, 2});
  // +x then -x returns home.
  for (int r = 0; r < grid.size(); ++r) {
    EXPECT_EQ(grid.neighbor(grid.neighbor(r, 0, +1), 0, -1), r);
    // dim 2 has size 1: neighbor is self.
    EXPECT_EQ(grid.neighbor(r, 2, +1), r);
  }
}

TEST(ProcessGrid, LocalExtentDivides) {
  EXPECT_EQ(ProcessGrid::local_extent(48, 4), 12);
  EXPECT_THROW(ProcessGrid::local_extent(48, 5), std::invalid_argument);
}

}  // namespace
}  // namespace femto::comm
