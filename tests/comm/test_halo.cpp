// Halo-exchange correctness: every policy/granularity combination must put
// exactly the neighbour's boundary sites into the ghost buffers, and a
// distributed radius-1 stencil built on the exchange must reproduce the
// single-rank result bit for bit.

#include "comm/halo.hpp"

#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <mutex>
#include <vector>

namespace femto::comm {
namespace {

/// Fill a rank's local block so each site holds its GLOBAL coordinates
/// (x, y, z, t) — makes ghost verification self-describing.
void fill_with_global_coords(HaloField& f, const ProcessGrid& grid,
                             int rank) {
  const auto pc = grid.coords_of(rank);
  for (int t = 0; t < f.extent(3); ++t)
    for (int z = 0; z < f.extent(2); ++z)
      for (int y = 0; y < f.extent(1); ++y)
        for (int x = 0; x < f.extent(0); ++x) {
          double* p = f.at(f.site(x, y, z, t));
          p[0] = pc[0] * f.extent(0) + x;
          p[1] = pc[1] * f.extent(1) + y;
          p[2] = pc[2] * f.extent(2) + z;
          p[3] = pc[3] * f.extent(3) + t;
        }
}

struct PolicyCase {
  CommPolicy policy;
  Granularity gran;
};

class HaloPolicyTest : public ::testing::TestWithParam<PolicyCase> {};

TEST_P(HaloPolicyTest, GhostsHoldNeighborBoundary) {
  const auto param = GetParam();
  const ProcessGrid grid({2, 1, 1, 2});
  const std::array<int, 4> local{4, 4, 4, 4};
  const std::array<int, 4> global{8, 4, 4, 8};

  run_ranks(grid.size(), [&](RankHandle& h) {
    HaloField f(local, 4);
    fill_with_global_coords(f, grid, h.rank());
    HaloExchanger ex(grid, param.policy, param.gran);
    HaloStats stats;
    ex.exchange(h, f, &stats);

    const auto pc = grid.coords_of(h.rank());
    // Check the ghost received from the +x neighbour: it must be the
    // global column x = (our last x + 1) mod global_x.
    const int expected_x =
        ((pc[0] * local[0] + local[0] - 1) + 1) % global[0];
    for (int t = 0; t < local[3]; ++t)
      for (int z = 0; z < local[2]; ++z)
        for (int y = 0; y < local[1]; ++y) {
          const auto fi = f.face_index(0, {0, y, z, t});
          const double* gp = f.ghost_fwd(0, fi);
          EXPECT_EQ(gp[0], expected_x);
          EXPECT_EQ(gp[1], pc[1] * local[1] + y);
          EXPECT_EQ(gp[3], pc[3] * local[3] + t);
        }
    // Ghost from the -t neighbour: global row t = our first t - 1 (mod).
    const int expected_t =
        ((pc[3] * local[3]) - 1 + global[3]) % global[3];
    for (int z = 0; z < local[2]; ++z)
      for (int y = 0; y < local[1]; ++y)
        for (int x = 0; x < local[0]; ++x) {
          const auto fi = f.face_index(3, {x, y, z, 0});
          const double* gp = f.ghost_bwd(3, fi);
          EXPECT_EQ(gp[3], expected_t);
          EXPECT_EQ(gp[0], pc[0] * local[0] + x);
        }
  });
}

TEST_P(HaloPolicyTest, SelfWrapDimensions) {
  // Dims where the grid is 1 wide must wrap periodically onto ourselves.
  const auto param = GetParam();
  const ProcessGrid grid({2, 1, 1, 1});
  run_ranks(grid.size(), [&](RankHandle& h) {
    HaloField f({2, 4, 4, 2}, 4);
    fill_with_global_coords(f, grid, h.rank());
    HaloExchanger ex(grid, param.policy, param.gran);
    ex.exchange(h, f);
    // +y ghost of site (x,*,z,t) is our own y = 0 column.
    const auto fi = f.face_index(1, {1, 0, 2, 1});
    const double* gp = f.ghost_fwd(1, fi);
    EXPECT_EQ(gp[1], 0);  // y wrapped
    EXPECT_EQ(gp[2], 2);
  });
}

INSTANTIATE_TEST_SUITE_P(
    AllPolicies, HaloPolicyTest,
    ::testing::Values(
        PolicyCase{CommPolicy::HostStaged, Granularity::Fused},
        PolicyCase{CommPolicy::HostStaged, Granularity::PerDimension},
        PolicyCase{CommPolicy::ZeroCopy, Granularity::Fused},
        PolicyCase{CommPolicy::ZeroCopy, Granularity::PerDimension},
        PolicyCase{CommPolicy::DirectRdma, Granularity::Fused},
        PolicyCase{CommPolicy::DirectRdma, Granularity::PerDimension}),
    [](const ::testing::TestParamInfo<PolicyCase>& info) {
      std::string name = to_string(info.param.policy);
      name += "_";
      name += to_string(info.param.gran);
      for (auto& c : name)
        if (c == '-') c = '_';
      return name;
    });

TEST(HaloStatsTest, PolicyCopyCountsDiffer) {
  const ProcessGrid grid({2, 1, 1, 1});
  for (auto policy : {CommPolicy::HostStaged, CommPolicy::ZeroCopy,
                      CommPolicy::DirectRdma}) {
    std::mutex mu;
    HaloStats total;
    run_ranks(grid.size(), [&](RankHandle& h) {
      HaloField f({4, 4, 4, 4}, 24);
      HaloExchanger ex(grid, policy, Granularity::Fused);
      HaloStats stats;
      ex.exchange(h, f, &stats);
      std::lock_guard<std::mutex> lk(mu);
      total += stats;
    });
    // Only x is distributed: per rank 2 messages of 4*4*4 sites * 24 reals.
    EXPECT_EQ(total.messages, 2 * 2);
    EXPECT_EQ(total.bytes_sent, 2LL * 2 * 64 * 24 * 8);
    if (policy == CommPolicy::HostStaged)
      EXPECT_GT(total.staging_copies, 0);
    else
      EXPECT_EQ(total.staging_copies, 0);
  }
}

TEST(HaloStatsTest, FusedHasFewerUnpackPasses) {
  const ProcessGrid grid({2, 2, 1, 1});
  for (auto gran : {Granularity::Fused, Granularity::PerDimension}) {
    std::mutex mu;
    HaloStats total;
    run_ranks(grid.size(), [&](RankHandle& h) {
      HaloField f({4, 4, 4, 4}, 4);
      HaloExchanger ex(grid, CommPolicy::ZeroCopy, gran);
      HaloStats stats;
      ex.exchange(h, f, &stats);
      std::lock_guard<std::mutex> lk(mu);
      total += stats;
    });
    // 2 self-wrap dims always cost one pass each; the 2 remote dims cost
    // 1 pass fused vs 2 passes per-dimension (per rank, 4 ranks).
    const std::int64_t expected =
        gran == Granularity::Fused ? 4 * (2 + 1) : 4 * (2 + 2);
    EXPECT_EQ(total.unpack_passes, expected);
  }
}

// A distributed 4D nearest-neighbour Laplacian over the halo machinery must
// agree with the single-rank computation (up to summation-order rounding):
// the full decomposition-correctness loop the paper's stencil relies on.
TEST(DistributedStencil, MatchesSingleRank) {
  const std::array<int, 4> global{8, 4, 4, 8};
  auto global_site = [&](int x, int y, int z, int t) {
    return ((t * global[2] + z) * global[1] + y) * global[0] + x;
  };
  // Reference field and serial Laplacian.
  std::vector<double> ref(static_cast<size_t>(8 * 4 * 4 * 8));
  for (size_t i = 0; i < ref.size(); ++i)
    ref[i] = std::sin(0.3 * static_cast<double>(i)) + 0.1;
  std::vector<double> want(ref.size());
  for (int t = 0; t < global[3]; ++t)
    for (int z = 0; z < global[2]; ++z)
      for (int y = 0; y < global[1]; ++y)
        for (int x = 0; x < global[0]; ++x) {
          auto idx = [&](int dx, int dy, int dz, int dt) {
            return global_site((x + dx + global[0]) % global[0],
                               (y + dy + global[1]) % global[1],
                               (z + dz + global[2]) % global[2],
                               (t + dt + global[3]) % global[3]);
          };
          want[static_cast<size_t>(global_site(x, y, z, t))] =
              ref[static_cast<size_t>(idx(1, 0, 0, 0))] +
              ref[static_cast<size_t>(idx(-1, 0, 0, 0))] +
              ref[static_cast<size_t>(idx(0, 1, 0, 0))] +
              ref[static_cast<size_t>(idx(0, -1, 0, 0))] +
              ref[static_cast<size_t>(idx(0, 0, 1, 0))] +
              ref[static_cast<size_t>(idx(0, 0, -1, 0))] +
              ref[static_cast<size_t>(idx(0, 0, 0, 1))] +
              ref[static_cast<size_t>(idx(0, 0, 0, -1))] -
              8.0 * ref[static_cast<size_t>(global_site(x, y, z, t))];
        }

  const ProcessGrid grid({2, 1, 1, 2});
  const std::array<int, 4> local{4, 4, 4, 4};
  std::vector<double> got(ref.size());
  std::mutex mu;

  run_ranks(grid.size(), [&](RankHandle& h) {
    const auto pc = grid.coords_of(h.rank());
    HaloField f(local, 1);
    for (int t = 0; t < 4; ++t)
      for (int z = 0; z < 4; ++z)
        for (int y = 0; y < 4; ++y)
          for (int x = 0; x < 4; ++x)
            f.at(f.site(x, y, z, t))[0] =
                ref[static_cast<size_t>(global_site(
                    pc[0] * 4 + x, pc[1] * 4 + y, pc[2] * 4 + z,
                    pc[3] * 4 + t))];

    HaloExchanger ex(grid, CommPolicy::ZeroCopy, Granularity::Fused);
    ex.exchange(h, f);

    auto value = [&](int x, int y, int z, int t, int mu, int sign) {
      std::array<int, 4> c{x, y, z, t};
      c[static_cast<size_t>(mu)] += sign;
      if (c[static_cast<size_t>(mu)] < 0)
        return f.ghost_bwd(mu, f.face_index(
                                   mu, {x, y, z, t}))[0];
      if (c[static_cast<size_t>(mu)] >= local[static_cast<size_t>(mu)])
        return f.ghost_fwd(mu, f.face_index(mu, {x, y, z, t}))[0];
      return f.at(f.site(c[0], c[1], c[2], c[3]))[0];
    };

    std::lock_guard<std::mutex> lk(mu);
    for (int t = 0; t < 4; ++t)
      for (int z = 0; z < 4; ++z)
        for (int y = 0; y < 4; ++y)
          for (int x = 0; x < 4; ++x) {
            double acc = -8.0 * f.at(f.site(x, y, z, t))[0];
            for (int d = 0; d < 4; ++d) {
              acc += value(x, y, z, t, d, +1);
              acc += value(x, y, z, t, d, -1);
            }
            got[static_cast<size_t>(global_site(pc[0] * 4 + x, pc[1] * 4 + y,
                                                pc[2] * 4 + z,
                                                pc[3] * 4 + t))] = acc;
          }
  });

  for (size_t i = 0; i < want.size(); ++i)
    EXPECT_NEAR(got[i], want[i], 1e-12 * (std::abs(want[i]) + 1.0));
}

}  // namespace
}  // namespace femto::comm
