#include "cluster/cluster.hpp"

#include <gtest/gtest.h>

namespace femto::cluster {
namespace {

ClusterSpec small_spec() {
  ClusterSpec s;
  s.n_nodes = 16;
  s.nodes_per_block = 4;
  s.node.gpus = 4;
  s.node.cpu_slots = 40;
  s.perf_jitter_sigma = 0.05;
  s.seed = 11;
  return s;
}

TEST(ClusterTest, NodesInitialisedFromSpec) {
  Cluster cl(small_spec());
  EXPECT_EQ(cl.size(), 16);
  EXPECT_EQ(cl.n_blocks(), 4);
  for (const auto& n : cl.nodes()) {
    EXPECT_EQ(n.gpu_free, 4);
    EXPECT_EQ(n.cpu_free, 40);
    EXPECT_LE(n.perf_factor, 1.0);
    EXPECT_GT(n.perf_factor, 0.5);
  }
}

TEST(ClusterTest, BlocksPartitionNodes) {
  Cluster cl(small_spec());
  int total = 0;
  for (int b = 0; b < cl.n_blocks(); ++b) {
    const auto ids = cl.block_nodes(b);
    EXPECT_EQ(ids.size(), 4u);
    total += static_cast<int>(ids.size());
    EXPECT_TRUE(cl.same_block(ids));
  }
  EXPECT_EQ(total, 16);
  EXPECT_FALSE(cl.same_block({0, 4}));  // crosses a block boundary
}

TEST(ClusterTest, JitterIsReproducibleAndHeterogeneous) {
  Cluster a(small_spec()), b(small_spec());
  bool any_diff = false;
  for (int i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.node(i).perf_factor, b.node(i).perf_factor);
    if (a.node(i).perf_factor != a.node(0).perf_factor) any_diff = true;
  }
  EXPECT_TRUE(any_diff);  // nodes differ in performance
}

TEST(ClusterTest, MinPerfIsSlowestMember) {
  Cluster cl(small_spec());
  std::vector<int> ids{0, 1, 2, 3};
  double expect = 1.0;
  for (int id : ids) expect = std::min(expect, cl.node(id).perf_factor);
  EXPECT_DOUBLE_EQ(cl.min_perf(ids), expect);
}

TEST(ClusterTest, FailureInjection) {
  auto spec = small_spec();
  spec.n_nodes = 400;
  spec.bad_node_prob = 0.1;
  Cluster cl(spec);
  const double frac = cl.healthy_fraction();
  EXPECT_GT(frac, 0.8);
  EXPECT_LT(frac, 0.98);
}

TEST(ClusterTest, CountAvailableRespectsResources) {
  Cluster cl(small_spec());
  EXPECT_EQ(cl.count_available(4, 1), 16);
  EXPECT_EQ(cl.count_available(5, 1), 0);  // no node has 5 GPUs
  cl.node(0).gpu_free = 0;
  EXPECT_EQ(cl.count_available(1, 1), 15);
}

TEST(ClusterTest, NoJitterMeansUniform) {
  auto spec = small_spec();
  spec.perf_jitter_sigma = 0.0;
  Cluster cl(spec);
  for (const auto& n : cl.nodes()) EXPECT_DOUBLE_EQ(n.perf_factor, 1.0);
}

}  // namespace
}  // namespace femto::cluster
