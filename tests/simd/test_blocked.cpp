// Lane-blocked pack/unpack round-trip tests: the blocked dslash variant is
// only correct if the transpose into [block][site][real][lane] and back is
// lossless for every (l5, W) combination, including l5 % W != 0 tails.

#include "lattice/blocked_spinor.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>

#include "lattice/field.hpp"
#include "simd/aligned.hpp"

namespace femto {
namespace {

std::shared_ptr<const Geometry> geom() {
  return std::make_shared<Geometry>(4, 4, 4, 4);
}

template <int W>
void roundtrip_case(int l5) {
  SpinorField<double> f(geom(), l5, Subset::Even);
  f.gaussian(1234 + l5);
  SpinorField<double> out(geom(), l5, Subset::Even);

  BlockedSpinorView<double, W> blocked(f.sites(), l5);
  EXPECT_EQ(blocked.blocks(), (l5 + W - 1) / W);
  blocked.pack(cview(f), 16);
  blocked.unpack(view(out), 16);

  for (std::int64_t k = 0; k < f.reals(); ++k)
    ASSERT_EQ(out.data()[k], f.data()[k]) << "W=" << W << " l5=" << l5
                                          << " k=" << k;
}

TEST(BlockedSpinor, RoundTripExactAcrossWidthsAndTails) {
  roundtrip_case<1>(3);
  roundtrip_case<2>(4);   // even split
  roundtrip_case<2>(5);   // one tail lane
  roundtrip_case<4>(8);   // even split
  roundtrip_case<4>(6);   // half-full tail block
  roundtrip_case<8>(3);   // single mostly-tail block
}

TEST(BlockedSpinor, TailLanesStayZero) {
  const int l5 = 3;
  constexpr int W = 4;
  SpinorField<double> f(geom(), l5, Subset::Even);
  f.gaussian(77);
  BlockedSpinorView<double, W> blocked(f.sites(), l5);
  blocked.pack(cview(f), 64);
  // Lane j >= l5 % W of the last block must be zero: the blocked kernel
  // computes on them and relies on 0 * x == 0 staying out of real lanes.
  for (std::int64_t i = 0; i < f.sites(); ++i) {
    const double* q = blocked.block(blocked.blocks() - 1, i);
    for (int k = 0; k < kSpinorReals; ++k)
      for (int j = l5 % W; j < W; ++j)
        ASSERT_EQ(q[k * W + j], 0.0) << "i=" << i << " k=" << k << " j=" << j;
  }
}

TEST(BlockedSpinor, BlockPointersAreCacheAligned) {
  // The whole point of the blocked layout: every (block, site) record
  // starts a run of kSpinorReals contiguous W-lane vectors, and the
  // backing store is 64-byte aligned so those vectors never straddle a
  // cache line when W*sizeof(T) divides 64.
  BlockedSpinorView<float, 4> blocked(32, 8);
  const auto base = reinterpret_cast<std::uintptr_t>(blocked.block(0, 0));
  EXPECT_EQ(base % simd::kAlignment, 0u);
  EXPECT_EQ(blocked.block(0, 1) - blocked.block(0, 0), kSpinorReals * 4);
  EXPECT_EQ(blocked.bytes(),
            static_cast<std::int64_t>(2 * 32 * kSpinorReals * 4 *
                                      sizeof(float)));
}

}  // namespace
}  // namespace femto
