// femtosimd unit tests: the Vec<T, W> contract every vectorized kernel
// leans on.  The arithmetic tests run at several widths (including widths
// wider than the hardware, which the compiler legalizes by splitting) so
// a width bump can never change what the wrappers mean; sum_ordered is
// pinned to EXACT lane order because the deterministic reductions in
// lattice/blas.hpp define their answer in terms of it.

#include "simd/vec.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstring>

namespace femto::simd {
namespace {

template <typename T, int W>
Vec<T, W> iota(T base, T step) {
  Vec<T, W> v;
  for (int j = 0; j < W; ++j)
    v.set(j, base + static_cast<T>(j) * step);
  return v;
}

TEST(Vec, WidthMatchesBuildMode) {
  if (compiled_with_simd()) {
    EXPECT_EQ(kWidth<float>,
              kMaxVectorBytes / static_cast<int>(sizeof(float)));
    EXPECT_EQ(kWidth<double>,
              kMaxVectorBytes / static_cast<int>(sizeof(double)));
    EXPECT_GE(kWidth<float>, 2);
  } else {
    EXPECT_EQ(kWidth<float>, 1);
    EXPECT_EQ(kWidth<double>, 1);
    EXPECT_STREQ(kIsaName, "scalar");
  }
}

TEST(Vec, BroadcastAndLanes) {
  const Vec<double, 4> v(2.5);
  for (int j = 0; j < 4; ++j) EXPECT_EQ(v[j], 2.5);
  Vec<float, 8> w;  // default: all lanes zero
  for (int j = 0; j < 8; ++j) EXPECT_EQ(w[j], 0.0f);
  w.set(3, 1.5f);
  EXPECT_EQ(w[3], 1.5f);
  EXPECT_EQ(w[2], 0.0f);
}

TEST(Vec, LoadStoreRoundTrip) {
  const double src[4] = {1.0, -2.0, 3.5, 0.25};
  const auto v = Vec<double, 4>::load(src);
  double dst[4] = {};
  v.store(dst);
  for (int j = 0; j < 4; ++j) EXPECT_EQ(dst[j], src[j]);
}

TEST(Vec, PartialLoadZeroesTailAndPartialStoreLeavesTail) {
  const float src[3] = {1.0f, 2.0f, 3.0f};
  const auto v = Vec<float, 8>::load_partial(src, 3);
  for (int j = 0; j < 3; ++j) EXPECT_EQ(v[j], src[j]);
  for (int j = 3; j < 8; ++j) EXPECT_EQ(v[j], 0.0f);
  float dst[8];
  for (int j = 0; j < 8; ++j) dst[j] = -9.0f;
  v.store_partial(dst, 3);
  for (int j = 0; j < 3; ++j) EXPECT_EQ(dst[j], src[j]);
  for (int j = 3; j < 8; ++j) EXPECT_EQ(dst[j], -9.0f);
}

TEST(Vec, ArithmeticIsLanewise) {
  const auto a = iota<double, 4>(1.0, 0.5);
  const auto b = iota<double, 4>(-2.0, 1.25);
  const auto sum = a + b;
  const auto prod = a * b;
  const auto neg = -a;
  for (int j = 0; j < 4; ++j) {
    EXPECT_EQ(sum[j], a[j] + b[j]);
    EXPECT_EQ(prod[j], a[j] * b[j]);
    EXPECT_EQ(neg[j], -a[j]);
  }
  auto c = a;
  c += b;
  c -= a;
  c *= Vec<double, 4>(2.0);
  for (int j = 0; j < 4; ++j) EXPECT_EQ(c[j], b[j] * 2.0);
}

TEST(Vec, MaxAndMaxLanes) {
  const auto a = iota<float, 4>(-1.0f, 1.0f);   // -1 0 1 2
  const auto b = iota<float, 4>(2.0f, -1.0f);   //  2 1 0 -1
  const auto m = max(a, b);
  EXPECT_EQ(m[0], 2.0f);
  EXPECT_EQ(m[1], 1.0f);
  EXPECT_EQ(m[2], 1.0f);
  EXPECT_EQ(m[3], 2.0f);
  EXPECT_EQ(max_lanes(a), 2.0f);
  // max(v, -v) is the vectorized fabs used by the half-precision encoder.
  const auto ab = max(a, -a);
  for (int j = 0; j < 4; ++j) EXPECT_EQ(ab[j], std::fabs(a[j]));
}

TEST(Vec, SwapPairsAndInterleave) {
  const auto v = iota<double, 4>(0.0, 1.0);  // 0 1 2 3
  const auto s = swap_pairs(v);
  EXPECT_EQ(s[0], 1.0);
  EXPECT_EQ(s[1], 0.0);
  EXPECT_EQ(s[2], 3.0);
  EXPECT_EQ(s[3], 2.0);
  const auto i = interleave<double, 4>(-7.0, 7.0);
  EXPECT_EQ(i[0], -7.0);
  EXPECT_EQ(i[1], 7.0);
  EXPECT_EQ(i[2], -7.0);
  EXPECT_EQ(i[3], 7.0);
}

TEST(Vec, ConvertInt16ToFloat) {
  Vec<std::int16_t, 4> q;
  const std::int16_t vals[4] = {-32767, -1, 0, 32767};
  q = Vec<std::int16_t, 4>::load(vals);
  const auto f = convert<float>(q);
  for (int j = 0; j < 4; ++j)
    EXPECT_EQ(f[j], static_cast<float>(vals[j]));
}

TEST(Vec, SumOrderedIsExactLaneOrder) {
  // Values chosen so every association rounds differently; the contract is
  // ((l0 + l1) + l2) + l3, nothing else.
  Vec<double, 4> v;
  v.set(0, 1.0);
  v.set(1, 1e-16);
  v.set(2, 1e-16);
  v.set(3, -1.0);
  const double want = ((1.0 + 1e-16) + 1e-16) + -1.0;
  std::uint64_t a = 0, b = 0;
  const double got = sum_ordered(v);
  std::memcpy(&a, &got, sizeof(a));
  std::memcpy(&b, &want, sizeof(b));
  EXPECT_EQ(a, b);
}

TEST(Vec, WidthOneIsPlainScalar) {
  // The FEMTO_SIMD=OFF fallback width: everything must still compile and
  // behave like a scalar.
  Vec<double, 1> v(3.0);
  EXPECT_EQ(v[0], 3.0);
  EXPECT_EQ(sum_ordered(v), 3.0);
  EXPECT_EQ(max_lanes(v), 3.0);
  const double src = 5.0;
  const auto loaded = Vec<double, 1>::load(&src);
  EXPECT_EQ(loaded[0], 5.0);
}

}  // namespace
}  // namespace femto::simd
