// femtolint-expect: clean
//
// A well-behaved kernel: charges flops and bytes, reduces through
// parallel_reduce, accumulates only into locally declared or subscripted
// storage, and carries an explicit suppression where it must cast.

#include <cstddef>
#include <cstring>
#include <vector>

namespace femto {

double norm2_clean(const std::vector<double>& x) {
  const double sum = par::parallel_reduce(
      0, x.size(), [&](std::size_t lo, std::size_t hi) {
        double acc = 0.0;
        for (std::size_t i = lo; i < hi; ++i) acc += x[i] * x[i];
        return acc;
      });
  flops::add(2 * static_cast<long long>(x.size()));
  flops::add_bytes(8 * static_cast<long long>(x.size()));
  return sum;
}

void axpy_clean(std::vector<double>& y, const std::vector<double>& x,
                double a) {
  par::parallel_for(0, y.size(), [&](std::size_t i) {
    y[i] += a * x[i];
  });
  flops::add(2 * static_cast<long long>(y.size()));
  flops::add_bytes(24 * static_cast<long long>(y.size()));
}

void serialize(std::vector<char>& out, const double* src, std::size_t n) {
  out.resize(n * sizeof(double));
  // femtolint: allow(cast): byte-wise serialisation through char* is
  // aliasing-legal; memcpy never reinterprets the double representation.
  std::memcpy(out.data(), reinterpret_cast<const char*>(src), out.size());
}

}  // namespace femto
