// femtolint-expect: kernel-traffic
//
// A stencil kernel that reads a COMPRESSED gauge container but charges the
// full-18 field's bytes.  The charge is present, so the transitive
// coverage check passes — but it lies: recon12 streams 2/3 of the bytes,
// so the femtoscope AI/GB/s derivations would overstate the gauge stream.
// The charge must come from the compressed container's own bytes().
//
// Fixtures are lint inputs, not build inputs -- they only have to parse as
// text, so the femto types are sketched minimally.

#include <cstddef>

namespace femto {

template <typename T>
void dslash_sloppy(double* out, const CompressedGaugeField<T>& u,
                   const GaugeField<T>& u_full, const double* in,
                   std::size_t sites) {
  par::parallel_for(0, sites, [&](std::size_t s) {
    out[s] = in[s] * static_cast<double>(s);  // stand-in stencil body
  });
  // WRONG: charges the full-18 field, not the compressed container that
  // the kernel actually streamed.  Honest form: flops::add_bytes(u.bytes()).
  flops::add_bytes(u_full.bytes());
}

}  // namespace femto
