#pragma once
// femtolint-expect: header-hygiene
//
// `using namespace` in a header leaks the whole namespace into every
// translation unit that includes it.

#include <vector>

using namespace std;

namespace femto {

inline vector<double> zeros(size_t n) { return vector<double>(n, 0.0); }

}  // namespace femto
