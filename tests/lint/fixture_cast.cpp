// femtolint-expect: cast
//
// reinterpret_cast without an allow(cast) suppression: every aliasing or
// constness escape hatch in the tree must carry a comment saying why it is
// safe, so the audit trail survives refactors.

#include <cstdint>

namespace femto {

std::uint64_t bits_of(double x) {
  return *reinterpret_cast<std::uint64_t*>(&x);
}

}  // namespace femto
