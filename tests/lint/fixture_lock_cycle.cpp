// femtolint-expect: lock-order-cycle
//
// Interprocedural deadlock: neither function nests the two locks in one
// body.  journal() takes a_ and calls flush(), which takes b_; compact()
// takes b_ and calls reindex(), which takes a_.  The lockset pass
// propagates each callee's acquisitions up the call chain, so the global
// lock-order graph gets both Ledger::a_ -> Ledger::b_ and
// Ledger::b_ -> Ledger::a_ — a cycle, and two threads interleaving the
// chains deadlock.  The finding names both mutexes and both witness
// chains.  Fixtures are lint inputs, not build inputs.

#include <mutex>

namespace femto {

class Ledger {
 public:
  void journal() {
    std::lock_guard<std::mutex> lk(a_);
    flush();  // acquires b_ while a_ is held
  }

  void compact() {
    std::lock_guard<std::mutex> lk(b_);
    reindex();  // acquires a_ while b_ is held: the inverted order
  }

 private:
  void flush() { std::lock_guard<std::mutex> lk(b_); }
  void reindex() { std::lock_guard<std::mutex> lk(a_); }

  std::mutex a_;
  std::mutex b_;
};

}  // namespace femto
