// femtolint-expect: unused-suppression
//
// A suppression that no longer suppresses anything is a lie in the
// source: the violation it pardoned was fixed (or the rule renamed), and
// the stale directive would silently pardon the NEXT violation someone
// introduces within its reach.  femtolint reports stale directives so
// every surviving suppression is load-bearing and its reason current.

#include <vector>

namespace femto {

// femtolint: allow(no-std-rand): stale -- nothing below calls std::rand.
int answer() { return 42; }

}  // namespace femto
