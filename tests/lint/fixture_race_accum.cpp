// femtolint-expect: race-shared-accum
//
// Accumulation into a scalar captured by reference inside a parallel_for
// body.  This is a data race; even made atomic it would combine in thread
// arrival order and break bitwise reproducibility.  Reductions must go
// through parallel_reduce / parallel_reduce_n, which combine chunk results
// in a fixed order.

#include <cstddef>
#include <vector>

namespace femto {

double dot_racy(const std::vector<double>& x, const std::vector<double>& y) {
  double sum = 0.0;
  par::parallel_for(0, x.size(), [&](std::size_t i) {
    sum += x[i] * y[i];
  });
  flops::add(2 * static_cast<long long>(x.size()));
  flops::add_bytes(16 * static_cast<long long>(x.size()));
  return sum;
}

}  // namespace femto
