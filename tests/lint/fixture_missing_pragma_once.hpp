// femtolint-expect: pragma-once
//
// Header without the #pragma once guard: double inclusion breaks the
// one-definition rule for the inline kernels headers carry.

namespace femto {

inline int answer() { return 42; }

}  // namespace femto
