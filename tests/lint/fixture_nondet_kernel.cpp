// femtolint-expect: nondet-in-kernel
//
// A raw clock read in a function that launches a parallel kernel: the
// value is produced inside the same dynamic extent as kernel work, where
// it can leak into numerics or control flow that varies run to run.
// Telemetry timing must go through obs::Stopwatch / obs::wall_seconds()
// (the one audited chokepoint, src/obs/wallclock.hpp), or the function
// must be blessed with FEMTO_NONDET_OK(reason).

#include <chrono>
#include <cstddef>
#include <vector>

namespace femto {

double timed_scale(std::vector<double>& y, double a) {
  const auto t0 = std::chrono::steady_clock::now();
  par::parallel_for(0, y.size(), [&](std::size_t i) { y[i] *= a; });
  flops::add_bytes(16 * static_cast<long long>(y.size()));
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       t0)
      .count();
}

}  // namespace femto
