// femtolint-expect: no-naked-new
//
// Naked new[]/delete[] in kernel code: leaks on any early return and is
// invisible to the field-memory accounting.  std::vector (or a smart
// pointer) owns buffers in this codebase.

#include <cstddef>

namespace femto {

double* make_buffer(std::size_t n) {
  double* p = new double[n];
  for (std::size_t i = 0; i < n; ++i) p[i] = 0.0;
  return p;
}

void free_buffer(double* p) { delete[] p; }

}  // namespace femto
