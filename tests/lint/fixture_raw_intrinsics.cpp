// femtolint-module: lattice
// femtolint-expect: raw-intrinsics
//
// A kernel reaching for vendor intrinsics directly.  The whole point of
// femtosimd is that one portable Vec<T, W> source compiles to SSE / AVX /
// NEON; the moment _mm256_* appears in a lattice kernel, the scalar
// fallback build stops compiling and every new target means auditing the
// whole tree instead of adding one backend under src/simd/.  The rule
// flags both the header include and the intrinsic identifiers.

#include <immintrin.h>

namespace femto::blas {

inline double norm2_avx(const double* x, long n) {
  __m256d acc = _mm256_setzero_pd();
  for (long i = 0; i + 4 <= n; i += 4) {
    const __m256d v = _mm256_loadu_pd(x + i);
    acc = _mm256_add_pd(acc, _mm256_mul_pd(v, v));
  }
  double lanes[4];
  _mm256_storeu_pd(lanes, acc);
  return lanes[0] + lanes[1] + lanes[2] + lanes[3];
}

}  // namespace femto::blas
