// femtolint-expect: blocking-call-under-lock
//
// Blocking while a lockset is non-empty, two ways:
//
//   * retry_push() sleeps while holding a function-local mutex — any
//     thread contending for that mutex stalls for the whole back-off;
//   * wait_ready() waits on a condition variable that releases the INNER
//     mutex only: the outer list_mu_ stays held across the block, which
//     is the exact shape that deadlocks once another thread needs
//     list_mu_ to deliver the notification.
//
// arm() shows the compliant wait: the cv releases the only held mutex for
// the duration of the block, so the effective lockset is empty.
// drain_batches() shows the blessed shape: FEMTO_BLOCKING_OK states why
// the held mutex can never be on the notifier's path.  Fixtures are lint
// inputs, not build inputs.

#include <chrono>
#include <condition_variable>
#include <mutex>
#include <thread>

#define FEMTO_BLOCKING_OK(reason)

namespace femto {

void retry_push() {
  static std::mutex mu;
  std::lock_guard<std::mutex> lk(mu);
  std::this_thread::sleep_for(
      std::chrono::milliseconds(2));  // blocking-call-under-lock
}

class BatchGate {
 public:
  void wait_ready() {
    std::unique_lock<std::mutex> outer(list_mu_);
    std::unique_lock<std::mutex> inner(mu_);
    cv_.wait(inner);  // releases mu_ but NOT list_mu_: finding
  }

  void arm() {
    std::unique_lock<std::mutex> lk(mu_);
    cv_.wait(lk);  // fine: the wait releases the only held mutex
  }

  void drain_batches() {
    FEMTO_BLOCKING_OK(
        "private leaf mutex; the notifier never takes it, so the wait "
        "chain cannot close");
    std::unique_lock<std::mutex> outer(list_mu_);
    std::unique_lock<std::mutex> inner(mu_);
    cv_.wait(inner);
  }

 private:
  std::mutex list_mu_;
  std::mutex mu_;
  std::condition_variable cv_;
};

}  // namespace femto
