// femtolint-expect: kernel-traffic
//
// The helper-function blind spot of the v1 line-regex rule: the kernel
// launch lives in a helper, so no single function both launches and skips
// the charge.  v2 builds the call graph and requires flops::add_bytes
// somewhere along EVERY chain from a call-graph root to the launch.
//
//   scale_covered   -> launch_via_helper      (charges first: fine)
//   scale_uncovered -> launch_via_helper      (no charge anywhere: fires)
//
// The finding is reported at the launch site inside the helper, because
// that is where the un-accounted memory traffic happens.
//
// Fixtures are lint inputs, not build inputs -- they only have to parse as
// text, so the femto types are sketched minimally.

#include <cstddef>
#include <vector>

namespace femto {

void launch_via_helper(std::vector<double>& y, double a) {
  par::parallel_for(0, y.size(), [&](std::size_t i) { y[i] *= a; });
  // No charge here: the helper trusts its callers to account the traffic.
}

void scale_covered(std::vector<double>& y, double a) {
  flops::add(static_cast<long long>(y.size()));
  flops::add_bytes(16 * static_cast<long long>(y.size()));
  launch_via_helper(y, a);
}

void scale_uncovered(std::vector<double>& y, double a) {
  // Missing flops::add_bytes on this chain: the kernel's traffic vanishes
  // from the arithmetic-intensity denominator.
  launch_via_helper(y, a);
}

}  // namespace femto
