// femtolint-module: fio
// femtolint-expect: layering
//
// An I/O-layer file reaching up into the solver layer.  layers.def allows
// fio -> lattice only: the propagator writers may depend on field layout,
// but the moment fio calls back into the solver the module graph has a
// de-facto cycle (solver already depends on fio-adjacent services through
// core) and the "architecture DAG" in DESIGN.md §9 is fiction.  femtolint
// extracts the include graph and fails the build on the undeclared edge.
//
// The femtolint-module directive above stands in for living under
// src/fio/; fixtures are lint inputs, not build inputs.

#include "lattice/field.hpp"  // allowed edge: fio -> lattice
#include "solver/cg.hpp"      // forbidden edge: fio -> solver

namespace femto::fio {

inline double checkpoint_residual(const lat::Field& x) {
  // Re-running CG from inside the writer is the layering violation the
  // include above would enable.
  return solver::cg_norm(x);
}

}  // namespace femto::fio
