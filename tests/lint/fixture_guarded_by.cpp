// femtolint-expect: guarded-by, mutex-annotate
//
// Lock-discipline violations, both directions:
//
//   * `pending_` is FEMTO_GUARDED_BY(mu_) but poll() reads it without
//     taking mu_ -- the classic "just a read" race that produces nearly
//     right queue statistics (rule: guarded-by);
//   * `dropped_` is shared mutable state in a mutex-owning class with no
//     annotation at all, so femtolint cannot check it (rule:
//     mutex-annotate).
//
// push() shows the compliant shape: lock_guard on the named mutex, then
// touch the member.  Fixtures are lint inputs, not build inputs.

#include <mutex>

#define FEMTO_GUARDED_BY(mu)

namespace femto {

class WorkCounter {
 public:
  void push(int n) {
    std::lock_guard<std::mutex> lk(mu_);
    pending_ += n;  // fine: mu_ visibly held
  }

  int poll() const {
    return pending_;  // guarded-by: mu_ not taken
  }

  void drop() {
    ++dropped_;  // unchecked: the member was never annotated
  }

 private:
  mutable std::mutex mu_;
  int pending_ FEMTO_GUARDED_BY(mu_) = 0;
  int dropped_ = 0;  // mutex-annotate: shared, mutable, unannotated
};

}  // namespace femto
