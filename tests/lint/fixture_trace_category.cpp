// femtolint-expect: trace-category
//
// Span categories outside the trace_categories.def taxonomy.  The category
// string is the top-level key of every downstream view -- Chrome trace
// groups, collapsed flamegraph stacks, the critical-path report -- so a
// typo'd or ad-hoc category silently forks the namespace and the spans
// stop aggregating.  femtolint checks every FEMTO_TRACE_SCOPE /
// trace_flow_out / trace_flow_in call site against the declared taxonomy
// and also rejects non-literal category arguments: a category computed at
// runtime can never be audited against the file.

#include "obs/trace.hpp"

namespace femto {

inline void timed_gather(const char* which) {
  // "solvr" is a typo of the declared "solver" category: these spans would
  // land in their own flamegraph root and vanish from solver totals.
  FEMTO_TRACE_SCOPE("solvr", "gather");

  // A runtime-computed category cannot be checked against the taxonomy.
  obs::trace_flow_out(which, "gather_ready");

  // Declared category via the suppression escape hatch: a deliberate
  // one-off that a human signed off on.
  // femtolint: allow(trace-category): prototype category pending taxonomy
  // review in the follow-up observability PR.
  obs::trace_flow_in("protospan", "gather_wait", 0, 1);
}

}  // namespace femto
