// femtolint-expect: unpaired-send
//
// Pairing symmetry: publish_halo() is a call-graph root whose whole
// extent sends (directly and via push_edge()) but never receives.  The
// matching recv must live OUTSIDE the scanned program, so once transports
// block for real this root hangs on the first unconsumed message — or the
// partner hangs forever waiting for a message nobody sends.
//
// exchange_halo() shows the compliant shape: the same root both sends and
// receives, so the protocol closes over the scanned tree.  Fixtures are
// lint inputs, not build inputs.

namespace femto {

class RankHandleStub {
 public:
  void send(int dest, int tag, double v);
  double recv(int src, int tag);
};

constexpr int kTagHalo = 7;

void push_edge(RankHandleStub& h, double v) {
  h.send(1, kTagHalo, v);
}

void publish_halo(RankHandleStub& h) {  // unpaired-send: root sends only
  h.send(0, kTagHalo, 1.0);
  push_edge(h, 2.0);
}

void exchange_halo(RankHandleStub& h) {
  h.send(1, kTagHalo, 3.0);
  const double got = h.recv(1, kTagHalo);
  (void)got;
}

}  // namespace femto
