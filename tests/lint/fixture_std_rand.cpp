// femtolint-expect: no-std-rand
//
// std::rand is global-state RNG: results depend on call order across
// threads, so any kernel using it loses per-site reproducibility.  The
// repo's Xoshiro256 is counter-seeded per (seed, site, stream) instead.

#include <cstdlib>

namespace femto {

double noisy_value() {
  srand(12345);
  return static_cast<double>(std::rand()) / RAND_MAX;
}

}  // namespace femto
