// femtolint-expect: fp-accumulation-discipline
//
// Compound FP accumulation into a CAPTURED scalar inside a
// parallel_reduce chunk body.  The reduce family exists precisely so
// partials combine in a fixed chunk order; a captured accumulator updated
// from every worker bypasses that order (and races), so the sum's bits
// depend on scheduling.  Partials must flow through the per-chunk
// accumulator slot / return value, or a body-local combined with
// simd::sum_ordered.

#include <cstddef>
#include <vector>

namespace femto {

double norm_plus_trace(const std::vector<double>& x) {
  double trace = 0.0;  // captured by the chunk body below
  const double sum = par::parallel_reduce(
      0, x.size(),
      [&](std::size_t lo, std::size_t hi) {
        double acc = 0.0;  // body-local: fine
        for (std::size_t i = lo; i < hi; ++i) {
          acc += x[i] * x[i];
          trace += x[i];  // scheduling-ordered: the finding
        }
        return acc;
      });
  flops::add_bytes(8 * static_cast<long long>(x.size()));
  return sum + trace;
}

}  // namespace femto
