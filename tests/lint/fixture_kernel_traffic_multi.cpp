// femtolint-expect: kernel-traffic
//
// The batched-kernel variant of the traffic blind spot: a multi-RHS
// kernel streams B spinor fields through one launch, so its charge must
// scale with the batch (nb * spinor traffic + ONE pass over the shared
// links — see dslash_kernel_multi).  Forgetting the charge entirely is
// the failure this fixture pins: the batched path silently vanishes from
// the arithmetic-intensity denominator exactly when it starts carrying
// most of the solver's traffic.
//
//   axpy_multi_covered   -> launch per RHS   (charges nb * bytes: fine)
//   axpy_multi_uncovered -> launch per RHS   (no charge anywhere: fires)
//
// Fixtures are lint inputs, not build inputs -- they only have to parse as
// text, so the femto types are sketched minimally.

#include <cstddef>
#include <vector>

namespace femto {

void axpy_one(std::vector<double>& y, const std::vector<double>& x,
              double a) {
  par::parallel_for(0, y.size(), [&](std::size_t i) { y[i] += a * x[i]; });
  // No charge here: batched callers account the whole block at once.
}

void axpy_multi_covered(std::vector<std::vector<double>*>& ys,
                        const std::vector<const std::vector<double>*>& xs,
                        double a) {
  long long reals = 0;
  for (const auto* x : xs) reals += static_cast<long long>(x->size());
  flops::add(2 * reals);
  flops::add_bytes(3 * 8 * reals);  // per-RHS traffic scales with the batch
  for (std::size_t r = 0; r < ys.size(); ++r) axpy_one(*ys[r], *xs[r], a);
}

void axpy_multi_uncovered(std::vector<std::vector<double>*>& ys,
                          const std::vector<const std::vector<double>*>& xs,
                          double a) {
  // Missing: the per-block flops::add_bytes charge.  Every RHS streamed
  // here is invisible to the AI model.
  for (std::size_t r = 0; r < ys.size(); ++r) axpy_one(*ys[r], *xs[r], a);
}

}  // namespace femto
