// femtolint-expect: collective-divergence
//
// Collectives reached by a subset of ranks, two ways:
//
//   * checkpoint() guards a direct h_->barrier() with `rank_ == 0`: every
//     other rank skips the barrier and rank 0 waits in it forever;
//   * reseed() reads h_->rank() into a local (one taint hop) and branches
//     on it into sync_all(), which reaches the barrier transitively — the
//     pass follows the call chain, not just the lexical branch body.
//
// step() shows the compliant shape: rank-dependent work inside the
// branch, the collective hoisted out where every rank reaches it.
// Fixtures are lint inputs, not build inputs.

namespace femto {

class RankHandleStub {
 public:
  int rank() const { return 0; }
  void barrier() {}
  void send(int dest, int tag, double v);
  double recv(int src, int tag);
};

class Checkpointer {
 public:
  void checkpoint() {
    if (rank_ == 0) {
      h_->barrier();  // collective-divergence: only rank 0 gets here
    }
  }

  void reseed() {
    const int r = h_->rank();
    if (r != 0) {
      sync_all();  // collective-divergence: barrier via the call chain
    }
  }

  void step() {
    if (rank_ == 0) {
      seed_ += 1;  // rank-dependent work is fine
    }
    h_->barrier();  // every rank reaches the collective
  }

 private:
  void sync_all() { h_->barrier(); }

  RankHandleStub* h_ = nullptr;
  int rank_ = 0;
  long seed_ = 0;
};

}  // namespace femto
