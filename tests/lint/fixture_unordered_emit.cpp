// femtolint-expect: unordered-iteration-emit
//
// Iterating an unordered container straight into a report: the emit order
// is the hash-table order, which varies with the standard library
// version, insertion history, and (for pointer keys) addresses -- so the
// written artifact is not reproducible run to run.  Materialize and sort
// first: a loop that only COLLECTS keys into a vector (sorted before a
// second, ordered, emitting loop) passes this rule.

#include <cstdio>
#include <string>
#include <unordered_map>

namespace femto {

void dump_counters(const std::unordered_map<std::string, long>& counters,
                   std::FILE* f) {
  for (const auto& [name, value] : counters) {
    std::fprintf(f, "%s=%ld\n", name.c_str(), value);
  }
}

}  // namespace femto
