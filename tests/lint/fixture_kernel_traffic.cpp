// femtolint-expect: kernel-traffic
//
// A field kernel that launches a parallel loop but never charges the
// flops/bytes counters.  Silently corrupts the arithmetic-intensity model:
// the solver's AI report would over-state intensity because this kernel's
// memory traffic vanishes from the denominator.
//
// Fixtures are lint inputs, not build inputs -- they only have to parse as
// text, so the femto types are sketched minimally.

#include <cstddef>
#include <vector>

namespace femto {

void scale_field(std::vector<double>& y, const std::vector<double>& x,
                 double a) {
  par::parallel_for(0, y.size(), [&](std::size_t i) {
    y[i] = a * x[i];
  });
  // Missing: flops::add(y.size()); flops::add_bytes(...)
}

}  // namespace femto
