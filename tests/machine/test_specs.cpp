#include "machine/specs.hpp"

#include <gtest/gtest.h>

namespace femto::machine {
namespace {

TEST(Specs, TableTwoValues) {
  const auto t = titan();
  EXPECT_EQ(t.nodes, 18688);
  EXPECT_EQ(t.gpus_per_node, 1);
  EXPECT_DOUBLE_EQ(t.fp32_tflops_node, 4.0);
  EXPECT_DOUBLE_EQ(t.gpu_bw_node_gbs, 250.0);

  const auto r = ray();
  EXPECT_EQ(r.nodes, 54);
  EXPECT_EQ(r.gpus_per_node, 4);
  EXPECT_DOUBLE_EQ(r.fp32_tflops_node, 44.0);

  const auto s = sierra();
  EXPECT_EQ(s.gpus_per_node, 4);
  EXPECT_DOUBLE_EQ(s.fp32_tflops_node, 60.0);
  EXPECT_DOUBLE_EQ(s.gpu_bw_node_gbs, 3600.0);
  EXPECT_DOUBLE_EQ(s.cpu_gpu_bw_gbs, 75.0);

  const auto m = summit();
  EXPECT_EQ(m.gpus_per_node, 6);
  EXPECT_DOUBLE_EQ(m.fp32_tflops_node, 90.0);
  EXPECT_DOUBLE_EQ(m.gpu_bw_node_gbs, 5400.0);
}

TEST(Specs, PerGpuDerivedQuantities) {
  const auto s = sierra();
  EXPECT_DOUBLE_EQ(s.fp32_tflops_gpu(), 15.0);
  EXPECT_DOUBLE_EQ(s.spec_bw_per_gpu_gbs(), 900.0);
}

TEST(Specs, CalibratedEffectiveBandwidths) {
  // The paper's S VII numbers: 139, 516, 975 GB/s per GPU.
  EXPECT_DOUBLE_EQ(titan().eff_bw_per_gpu_gbs, 139.0);
  EXPECT_DOUBLE_EQ(ray().eff_bw_per_gpu_gbs, 516.0);
  EXPECT_DOUBLE_EQ(sierra().eff_bw_per_gpu_gbs, 975.0);
}

TEST(Specs, CacheAmplificationGrowsAcrossGenerations) {
  // "the maximum percent of peak performance achieved increases with
  // successive GPU architectures ... improved cache structure ...
  // amplifying the effective bandwidth."
  EXPECT_LT(titan().bw_amplification(), ray().bw_amplification());
  EXPECT_LT(ray().bw_amplification(), sierra().bw_amplification());
  // Sierra's V100 beats its own spec sheet.
  EXPECT_GT(sierra().bw_amplification(), 1.0);
}

TEST(Specs, AllMachinesListed) {
  const auto all = all_machines();
  ASSERT_EQ(all.size(), 4u);
  EXPECT_EQ(all[0].name, "Titan");
  EXPECT_EQ(all[3].name, "Summit");
}

TEST(Specs, FormattedTableContainsMachines) {
  const auto s = format_table2();
  for (const char* name : {"Titan", "Ray", "Sierra", "Summit"})
    EXPECT_NE(s.find(name), std::string::npos) << name;
  EXPECT_NE(s.find("GPUs / node"), std::string::npos);
}

}  // namespace
}  // namespace femto::machine
