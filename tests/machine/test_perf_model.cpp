// The analytic solver-performance model must reproduce the SHAPES of the
// paper's scaling plots: effective-bandwidth ordering Titan < Ray < Sierra,
// near-flat bandwidth at low GPU count, strong-scaling rollover, the
// Summit 96^3x144 efficiency cliff past ~2000 GPUs, and RDMA > zero-copy >
// host-staged policy ordering.

#include "machine/perf_model.hpp"

#include <gtest/gtest.h>

namespace femto::machine {
namespace {

LatticeProblem prob48() {
  LatticeProblem p;
  p.extents = {48, 48, 48, 64};
  p.l5 = 12;
  return p;
}

LatticeProblem prob96() {
  LatticeProblem p;
  p.extents = {96, 96, 96, 144};
  p.l5 = 12;
  return p;
}

TEST(PerfModel, BestGridCoversGpusAndDividesLattice) {
  SolverPerfModel m(sierra(), prob48());
  for (int n : {1, 2, 4, 8, 16, 32, 64, 128}) {
    const auto g = m.best_grid(n);
    EXPECT_EQ(g[0] * g[1] * g[2] * g[3], n) << n;
    const auto& e = m.problem().extents;
    for (int mu = 0; mu < 4; ++mu)
      EXPECT_EQ(e[static_cast<std::size_t>(mu)] %
                    g[static_cast<std::size_t>(mu)],
                0)
          << n;
  }
}

TEST(PerfModel, LowCountBandwidthMatchesCalibration) {
  // At the most efficient (lowest) GPU count the per-GPU bandwidth must be
  // close to the paper's 139 / 516 / 975 GB/s.
  for (const auto& [spec, expect] :
       std::vector<std::pair<MachineSpec, double>>{
           {titan(), 139.0}, {ray(), 516.0}, {sierra(), 975.0}}) {
    SolverPerfModel m(spec, prob48());
    const auto pt = m.strong_scaling_point(spec.gpus_per_node);
    EXPECT_NEAR(pt.bw_per_gpu_gbs, expect, 0.25 * expect) << spec.name;
  }
}

TEST(PerfModel, MachineGenerationOrdering) {
  // At every GPU count: Sierra > Ray > Titan in TFLOPS (Fig. 3a) and in
  // percent of peak at the low end (Fig. 3b).
  SolverPerfModel ti(titan(), prob48()), ra(ray(), prob48()),
      si(sierra(), prob48());
  for (int n : {8, 16, 32, 64, 128}) {
    EXPECT_GT(si.strong_scaling_point(n).tflops,
              ra.strong_scaling_point(n).tflops)
        << n;
    EXPECT_GT(ra.strong_scaling_point(n).tflops,
              ti.strong_scaling_point(n).tflops)
        << n;
  }
}

TEST(PerfModel, PeakEfficiencyAroundTwentyPercentOnSierra) {
  SolverPerfModel m(sierra(), prob48());
  const auto pt = m.strong_scaling_point(4);
  EXPECT_GT(pt.pct_peak, 14.0);
  EXPECT_LT(pt.pct_peak, 26.0);
}

TEST(PerfModel, EfficiencyFallsWithScale) {
  // Strong scaling: per-GPU efficiency decreases monotonically as the
  // local volume shrinks (Fig. 3b).
  SolverPerfModel m(sierra(), prob48());
  double last = 1e9;
  for (int n : {4, 16, 64, 256}) {
    const auto pt = m.strong_scaling_point(n);
    EXPECT_LT(pt.pct_peak, last + 1e-9) << n;
    last = pt.pct_peak;
  }
}

TEST(PerfModel, AggregateThroughputStillGrows) {
  // TFLOPS keeps rising with GPUs over the Fig. 3 range even as
  // efficiency drops.
  SolverPerfModel m(sierra(), prob48());
  EXPECT_GT(m.strong_scaling_point(128).tflops,
            m.strong_scaling_point(16).tflops);
}

TEST(PerfModel, SummitLargeLatticeReachesPetaflopsThenCliffs) {
  // Fig. 4: 96^3 x 144 approaches ~1.5 PFLOPS but efficiency collapses
  // past ~2000 GPUs.
  SolverPerfModel m(summit(), prob96());
  const auto p1536 = m.strong_scaling_point(1536);
  const auto p6912 = m.strong_scaling_point(6912);
  EXPECT_GT(p6912.tflops, 800.0);    // near-PFLOPS regime
  EXPECT_LT(p6912.tflops, 3500.0);
  // Efficiency cliff: per-GPU efficiency at 6912 far below at 1536.
  EXPECT_LT(p6912.pct_peak, 0.7 * p1536.pct_peak);
}

TEST(PerfModel, PolicyOrdering) {
  // With GDR available the tuned policy never loses to the others.
  SolverPerfModel m(sierra(), prob48(), /*gdr_available=*/true);
  const auto policies = comm_policies();
  for (int n : {32, 128, 512}) {
    const auto tuned = m.strong_scaling_point(n);
    for (const auto& p : policies) {
      const auto pt = m.point_with_policy(n, p);
      EXPECT_LE(tuned.time_per_apply_s, pt.time_per_apply_s * (1 + 1e-12))
          << p.name << " n=" << n;
    }
    // And explicitly: rdma >= zero-copy >= host-staged throughput.
    const auto rdma = m.point_with_policy(n, policies[2]);
    const auto zc = m.point_with_policy(n, policies[1]);
    const auto hs = m.point_with_policy(n, policies[0]);
    EXPECT_GE(rdma.tflops, zc.tflops);
    EXPECT_GE(zc.tflops, hs.tflops);
  }
}

TEST(PerfModel, GdrUnavailableExcludedFromTuning) {
  // Sierra/Summit at submission time: no GPU Direct RDMA.
  SolverPerfModel m(sierra(), prob48(), /*gdr_available=*/false);
  const auto pt = m.strong_scaling_point(256);
  EXPECT_NE(pt.policy, "gpu-direct-rdma");
}

TEST(PerfModel, SingleGpuHasNoCommCost) {
  SolverPerfModel m(sierra(), prob48());
  const auto pt = m.strong_scaling_point(1);
  EXPECT_DOUBLE_EQ(pt.surface_fraction, 0.0);
  // The whole lattice on one GPU runs at near-full occupancy.
  EXPECT_NEAR(pt.bw_per_gpu_gbs, sierra().eff_bw_per_gpu_gbs, 20.0);
}

}  // namespace
}  // namespace femto::machine
