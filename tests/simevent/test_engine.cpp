#include "simevent/engine.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace femto::sim {
namespace {

TEST(Engine, EventsFireInTimeOrder) {
  Engine eng;
  std::vector<int> order;
  eng.schedule(3.0, [&] { order.push_back(3); });
  eng.schedule(1.0, [&] { order.push_back(1); });
  eng.schedule(2.0, [&] { order.push_back(2); });
  eng.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(eng.now(), 3.0);
  EXPECT_EQ(eng.events_processed(), 3);
}

TEST(Engine, SimultaneousEventsAreFifo) {
  Engine eng;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i)
    eng.schedule(5.0, [&order, i] { order.push_back(i); });
  eng.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(Engine, EventsCanScheduleEvents) {
  Engine eng;
  int chain = 0;
  std::function<void()> step = [&] {
    if (++chain < 5) eng.schedule(1.0, step);
  };
  eng.schedule(1.0, step);
  eng.run();
  EXPECT_EQ(chain, 5);
  EXPECT_DOUBLE_EQ(eng.now(), 5.0);
}

TEST(Engine, CannotScheduleInThePast) {
  Engine eng;
  eng.schedule(2.0, [&] {
    EXPECT_THROW(eng.schedule_at(1.0, [] {}), std::invalid_argument);
  });
  eng.run();
}

TEST(Engine, RunUntilStopsAtBoundary) {
  Engine eng;
  int fired = 0;
  eng.schedule(1.0, [&] { ++fired; });
  eng.schedule(2.0, [&] { ++fired; });
  eng.schedule(10.0, [&] { ++fired; });
  eng.run_until(5.0);
  EXPECT_EQ(fired, 2);
  EXPECT_DOUBLE_EQ(eng.now(), 5.0);
  EXPECT_FALSE(eng.empty());
  eng.run();
  EXPECT_EQ(fired, 3);
}

TEST(Engine, ZeroDelayFiresAtCurrentTime) {
  Engine eng;
  double seen = -1;
  eng.schedule(4.0, [&] {
    eng.schedule(0.0, [&] { seen = eng.now(); });
  });
  eng.run();
  EXPECT_DOUBLE_EQ(seen, 4.0);
}

TEST(Engine, ManyEventsScale) {
  Engine eng;
  long sum = 0;
  for (int i = 0; i < 10000; ++i)
    eng.schedule(static_cast<Time>(i % 97), [&] { ++sum; });
  eng.run();
  EXPECT_EQ(sum, 10000);
}

}  // namespace
}  // namespace femto::sim
