#!/usr/bin/env bash
# Benchmark the femtoscope tracer and emit BENCH_obs.json.
#
# Runs bench/micro_obs: the CG per-iteration fused BLAS sequence with
# tracing off and on (min-of-reps wall clock, same convention as the
# autotuner), plus the disabled per-scope cost on a synthetic hot loop.
# The budget the subsystem is held to: <=2% overhead enabled, ~0%
# disabled.  The JSON lands in the repo root so successive PRs can track
# the trajectory.
#
# Usage: scripts/bench_obs.sh

set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR="${BUILD_DIR:-build}"
MICRO_OBS="${BUILD_DIR}/bench/micro_obs"

if [[ ! -x "$MICRO_OBS" ]]; then
  echo "bench_obs: $MICRO_OBS not built (cmake --build $BUILD_DIR --target micro_obs)" >&2
  exit 1
fi

# micro_obs writes BENCH_obs.json into the current directory.
"$MICRO_OBS"

# Guard the budget: enabled overhead must stay under 5% in this noisy
# harness (the paper-facing claim is <=2% on a quiet machine); negative
# readings mean the overhead is below measurement noise.
python3 - <<'EOF'
import json
with open("BENCH_obs.json") as f:
    bench = json.load(f)
enabled = bench["overhead_enabled_pct"]
disabled = bench["overhead_disabled_pct"]
print(f"bench_obs: enabled {enabled:+.3f}%, disabled {disabled:+.5f}%")
if enabled > 5.0:
    raise SystemExit(f"bench_obs: enabled tracing overhead {enabled:.2f}% exceeds budget")
if disabled > 1.0:
    raise SystemExit(f"bench_obs: disabled tracing overhead {disabled:.4f}% exceeds budget")
EOF
echo "bench_obs: OK"
