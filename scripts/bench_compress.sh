#!/usr/bin/env bash
# Benchmark the gauge storage tiers and emit BENCH_compress.json.
#
# Runs bench/micro_compress: a DRAM-resident float link stream per format
# (full18 / recon12 / recon8 / fixed12) plus the info-only end-to-end
# float dslash per format (min-of-reps wall clock, the autotuner's
# convention).  The JSON lands in the repo root so successive PRs can
# track the trajectory.
#
# The gate is the PR's compression claim on the bandwidth-bound study:
# recon12 must beat full18 per-site throughput by >= 1.1x.  A
# FEMTO_SIMD=OFF build reports width 1 and the gate is skipped -- a
# scalar build's reference stream is not bandwidth-bound, so the ratio
# says nothing about storage tiers.  The dslash rows are never gated:
# whether reconstruction arithmetic pays for itself end to end is
# machine-dependent, which is why the format is an autotuned axis.
#
# Usage: scripts/bench_compress.sh

set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR="${BUILD_DIR:-build}"
MICRO_COMPRESS="${BUILD_DIR}/bench/micro_compress"

if [[ ! -x "$MICRO_COMPRESS" ]]; then
  echo "bench_compress: $MICRO_COMPRESS not built (cmake --build $BUILD_DIR --target micro_compress)" >&2
  exit 1
fi

# micro_compress writes BENCH_compress.json into the current directory.
"$MICRO_COMPRESS"

python3 - <<'EOF'
import json

with open("BENCH_compress.json") as f:
    bench = json.load(f)

if bench["width_float"] <= 1:
    print("bench_compress: scalar build (width 1), storage-tier gate skipped")
    raise SystemExit(0)

stream = bench["stream"]
line = ", ".join(
    f"{name} x{row['speedup']:.2f} ({row['gbps']:.2f} GB/s)"
    for name, row in stream.items())
print(f"bench_compress: stream {line}")

r12 = stream["recon12"]["speedup"]
if r12 < 1.1:
    raise SystemExit(
        f"bench_compress: recon12 stream speedup x{r12:.2f} < 1.1")
EOF
