#!/usr/bin/env bash
# ThreadSanitizer check of the mutating fused reduction kernels.
#
# The fused BLAS layer (lattice/blas.hpp) and the half-precision round-trips
# (solver/half.cpp) mutate field data from inside parallel reductions; their
# race-freedom rests on the thread pool handing each chunk to exactly one
# worker.  This script builds the parallel, lattice, and solver test targets
# with -fsanitize=thread and runs the tests that drive those kernels.
#
# Usage: scripts/check_tsan.sh [build-dir]   (default: build-tsan)

set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR="${1:-build-tsan}"

cmake -B "$BUILD_DIR" -S . -DFEMTO_TSAN=ON -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build "$BUILD_DIR" -j --target test_parallel test_lattice test_solver

export TSAN_OPTIONS="halt_on_error=1 ${TSAN_OPTIONS:-}"

# Everything in the thread pool, then the kernel suites that exercise the
# fused (mutating) reductions.  Filters keep the tsan run (10-20x slowdown)
# to the relevant tests.
"$BUILD_DIR/tests/test_parallel"
"$BUILD_DIR/tests/test_lattice" --gtest_filter='Blas*.*'
"$BUILD_DIR/tests/test_solver" --gtest_filter='HalfStorage.*:Cg.*:*MixedCg*'

echo "tsan check passed"
