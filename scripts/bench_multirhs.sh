#!/usr/bin/env bash
# Benchmark the batched multi-RHS dslash and emit BENCH_multirhs.json.
#
# Runs bench/micro_multirhs: for each batch size B in {1, 2, 4, 8, 16} the
# best dslash_multi configuration (variant x grain) vs the best single-RHS
# path, reporting seconds per RHS, GFLOP/s, effective GB/s, the charged
# bytes/site amortisation curve, and the speedup vs B = 1.  The JSON lands
# in the repo root so successive PRs can track the trajectory.
#
# The gate is this PR's batching claim: on a SIMD build the float l5 = 1
# study (where batching unlocks RHS-lane vectorization on top of link
# amortisation) must reach >= 1.3x the B = 1 path at some B >= 4.  A
# FEMTO_SIMD=OFF build reports width 1 and the gate is skipped: without
# lanes, batching only amortises link loads, which a compute-bound machine
# does not reward with 1.3x.
#
# Usage: scripts/bench_multirhs.sh

set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR="${BUILD_DIR:-build}"
MICRO="${BUILD_DIR}/bench/micro_multirhs"

if [[ ! -x "$MICRO" ]]; then
  echo "bench_multirhs: $MICRO not built (cmake --build $BUILD_DIR --target micro_multirhs)" >&2
  exit 1
fi

# micro_multirhs writes BENCH_multirhs.json into the current directory.
"$MICRO"

python3 - <<'EOF'
import json

with open("BENCH_multirhs.json") as f:
    bench = json.load(f)

if bench["width_float"] <= 1:
    print("bench_multirhs: scalar build (width 1), speedup gate skipped")
    raise SystemExit(0)

headline = next(
    s for s in bench["studies"]
    if s["precision"] == "float" and s["l5"] == 1)
curve = {r["b"]: r["speedup"] for r in headline["rows"]}
print("bench_multirhs: float l5=1 amortisation curve "
      + ", ".join(f"B={b} x{s:.2f}" for b, s in sorted(curve.items())))
best = max(s for b, s in curve.items() if b >= 4)
if best < 1.3:
    raise SystemExit(
        f"bench_multirhs: batched dslash best speedup x{best:.2f} at "
        f"B >= 4 is below the 1.3x gate")
print(f"bench_multirhs: gate passed (x{best:.2f} >= 1.3 at B >= 4)")
EOF
