#!/usr/bin/env bash
# Benchmark the femtosimd hot paths and emit BENCH_simd.json.
#
# Runs bench/micro_simd: scalar vs vectorized dslash kernel variants and
# W=1 vs native-width fused BLAS / half-precision quantise kernels
# (min-of-reps wall clock, same convention as the autotuner), reporting
# GFLOP/s, effective GB/s and the speedup per width.  The JSON lands in
# the repo root so successive PRs can track the trajectory.
#
# The gate is the PR's vectorization claim: on a SIMD build the float
# dslash (best variant) and the float fused BLAS kernels must beat the
# scalar path by >= 1.5x.  A FEMTO_SIMD=OFF build reports width 1 and the
# gate is skipped -- there is nothing to compare.
#
# Usage: scripts/bench_simd.sh

set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR="${BUILD_DIR:-build}"
MICRO_SIMD="${BUILD_DIR}/bench/micro_simd"

if [[ ! -x "$MICRO_SIMD" ]]; then
  echo "bench_simd: $MICRO_SIMD not built (cmake --build $BUILD_DIR --target micro_simd)" >&2
  exit 1
fi

# micro_simd writes BENCH_simd.json into the current directory.
"$MICRO_SIMD"

python3 - <<'EOF'
import json

with open("BENCH_simd.json") as f:
    bench = json.load(f)

if bench["width_float"] <= 1:
    print("bench_simd: scalar build (width 1), speedup gate skipped")
    raise SystemExit(0)

dslash = {s["precision"]: s["best_speedup"] for s in bench["dslash"]}
fused = [
    r["speedup"]
    for r in bench["blas"]
    if r["precision"] == "float" and r["kernel"] in ("axpy_norm2",
                                                     "triple_cg_update")
]
print(f"bench_simd: float dslash best x{dslash['float']:.2f}, "
      f"float fused BLAS best x{max(fused):.2f}")
if dslash["float"] < 1.5:
    raise SystemExit(
        f"bench_simd: float dslash speedup x{dslash['float']:.2f} < 1.5")
if max(fused) < 1.5:
    raise SystemExit(
        f"bench_simd: float fused BLAS speedup x{max(fused):.2f} < 1.5")
EOF
