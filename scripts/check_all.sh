#!/usr/bin/env bash
# The tier-2 pre-PR gate: every static and dynamic check in one command.
#
#   stage 1  lint    femtolint over src/ + the negative fixtures
#   stage 2  asan    full tier-1 suite under AddressSanitizer
#   stage 3  ubsan   full tier-1 suite under UndefinedBehaviorSanitizer
#   stage 4  tsan    fused-reduction kernel suites under ThreadSanitizer
#
# Each stage runs even if an earlier one failed, so one invocation reports
# the whole picture; the per-stage summary at the end names what to fix.
# Expect a long wall-clock on small machines -- four sanitizer builds of
# the full tree.  See DESIGN.md §8 and the pre-PR checklist in README.md.
#
# Usage: scripts/check_all.sh

set -uo pipefail
cd "$(dirname "$0")/.."

declare -A result

run_stage() {
  local name="$1"
  shift
  echo
  echo "=============================================================="
  echo "=== stage: $name"
  echo "=============================================================="
  if "$@"; then
    result[$name]=PASS
  else
    result[$name]=FAIL
  fi
}

lint_stage() {
  # Build just the lint tool in the default tree and run both lint tests.
  cmake -B build -S . && cmake --build build -j --target femtolint || return 1
  local bin
  bin=$(find build -name femtolint -type f | head -1)
  "$bin" src && "$bin" --self-test tests/lint
}

run_stage lint lint_stage
run_stage asan scripts/check_sanitizers.sh asan
run_stage ubsan scripts/check_sanitizers.sh ubsan
run_stage tsan scripts/check_tsan.sh

echo
echo "=============================== summary ======================"
rc=0
for stage in lint asan ubsan tsan; do
  printf "  %-6s %s\n" "$stage" "${result[$stage]:-SKIPPED}"
  [[ "${result[$stage]:-FAIL}" == "PASS" ]] || rc=1
done
echo "=============================================================="
if [[ $rc -eq 0 ]]; then
  echo "check_all: all stages passed"
else
  echo "check_all: FAILURES above" >&2
fi
exit $rc
