#!/usr/bin/env bash
# Run the BENCH-emitting harness end to end and gate the results against
# the committed baseline (the BENCH regression sentinel).
#
#   1. scripts/bench_obs.sh    -> BENCH_obs.json   (tracer overhead)
#   2. scripts/bench_lint.sh   -> BENCH_lint.json  (lint scan cost)
#   3. with FEMTO_BENCH_FULL=1, the slow kernels too:
#      scripts/bench_simd.sh     -> BENCH_simd.json
#      scripts/bench_multirhs.sh -> BENCH_multirhs.json
#      scripts/bench_compress.sh -> BENCH_compress.json
#   4. tools/benchdiff --baseline bench/baseline.json <produced files>
#
# benchdiff only judges metrics belonging to files actually produced, so
# the quick run never fails on the skipped kernel benches.  Absolute
# wall-clock metrics are annotated direction "info" in the baseline
# (machine-bound, tracked but never gated); the gates sit on portable
# ratios: tracer overhead percentages, scan speedup, pass booleans.
#
# After an accepted performance change, refresh the accepted values with
#   build/tools/benchdiff/benchdiff --baseline bench/baseline.json \
#     --write-baseline BENCH_obs.json BENCH_lint.json
# (annotations survive the refresh) and commit the baseline.
#
# Usage: scripts/bench_all.sh

set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR="${BUILD_DIR:-build}"
BENCHDIFF="${BUILD_DIR}/tools/benchdiff/benchdiff"
BASELINE="bench/baseline.json"

if [[ ! -x "$BENCHDIFF" ]]; then
  echo "bench_all: $BENCHDIFF not built (cmake --build $BUILD_DIR --target benchdiff)" >&2
  exit 1
fi

produced=()

echo "=== bench_obs ==="
scripts/bench_obs.sh
produced+=(BENCH_obs.json)

echo "=== bench_lint ==="
scripts/bench_lint.sh
produced+=(BENCH_lint.json)

if [[ "${FEMTO_BENCH_FULL:-0}" == "1" ]]; then
  echo "=== bench_simd ==="
  scripts/bench_simd.sh
  produced+=(BENCH_simd.json)
  echo "=== bench_multirhs ==="
  scripts/bench_multirhs.sh
  produced+=(BENCH_multirhs.json)
  echo "=== bench_compress ==="
  scripts/bench_compress.sh
  produced+=(BENCH_compress.json)
else
  echo "bench_all: FEMTO_BENCH_FULL!=1, skipping simd/multirhs/compress kernels"
fi

echo "=== benchdiff sentinel ==="
"$BENCHDIFF" --baseline "$BASELINE" "${produced[@]}"
echo "bench_all: OK"
