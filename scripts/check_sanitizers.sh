#!/usr/bin/env bash
# AddressSanitizer + UndefinedBehaviorSanitizer sweep of the tier-1 suite.
#
# The numerics tests check values; they cannot see a heap overflow that
# happens to land in padding, a use-after-move, or signed overflow that the
# optimizer folded away.  This script builds the whole tree twice -- once
# with -fsanitize=address, once with -fsanitize=undefined (non-recoverable,
# so any UB aborts the test) -- and runs the full tier-1 ctest suite under
# each.  See DESIGN.md §8.
#
# Usage: scripts/check_sanitizers.sh [asan|ubsan]   (default: both)

set -uo pipefail
cd "$(dirname "$0")/.."

run_one() {
  local name="$1" build_dir="$2" flag="$3"
  echo "=== ${name}: configure + build (${build_dir}) ==="
  cmake -B "$build_dir" -S . "-D${flag}=ON" \
        -DCMAKE_BUILD_TYPE=RelWithDebInfo || return 1
  cmake --build "$build_dir" -j || return 1
  echo "=== ${name}: tier-1 ctest ==="
  (cd "$build_dir" && ctest --output-on-failure -j "$(nproc)") || return 1
  echo "=== ${name}: PASS ==="
}

export ASAN_OPTIONS="detect_leaks=1:abort_on_error=1 ${ASAN_OPTIONS:-}"
export UBSAN_OPTIONS="print_stacktrace=1 ${UBSAN_OPTIONS:-}"

which="${1:-both}"
rc=0

if [[ "$which" == "asan" || "$which" == "both" ]]; then
  run_one "asan" build-asan FEMTO_ASAN || rc=1
fi
if [[ "$which" == "ubsan" || "$which" == "both" ]]; then
  run_one "ubsan" build-ubsan FEMTO_UBSAN || rc=1
fi

if [[ $rc -eq 0 ]]; then
  echo "sanitizer check passed"
else
  echo "sanitizer check FAILED" >&2
fi
exit $rc
