#!/usr/bin/env bash
# clang-tidy pass over the library sources (config: .clang-tidy at the
# repo root -- bugprone-*, concurrency-*, performance-*).
#
# clang-tidy is optional tooling: the build image carries only the GCC
# toolchain, so this script no-ops with a clear message when the binary is
# absent instead of failing the check pipeline.
#
# Usage: scripts/check_tidy.sh [build-dir]   (default: build)

set -uo pipefail
cd "$(dirname "$0")/.."

if ! command -v clang-tidy >/dev/null 2>&1; then
  echo "check_tidy: clang-tidy not installed; skipping (install LLVM to enable)"
  exit 0
fi

BUILD_DIR="${1:-build}"
if [[ ! -f "$BUILD_DIR/compile_commands.json" ]]; then
  cmake -B "$BUILD_DIR" -S . -DCMAKE_EXPORT_COMPILE_COMMANDS=ON || exit 1
fi

rc=0
while IFS= read -r f; do
  clang-tidy -p "$BUILD_DIR" --quiet "$f" || rc=1
done < <(find src -name '*.cpp' | sort)

if [[ $rc -eq 0 ]]; then
  echo "clang-tidy check passed"
else
  echo "clang-tidy check FAILED" >&2
fi
exit $rc
