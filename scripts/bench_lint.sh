#!/usr/bin/env bash
# Benchmark the femtolint v2 scan over src/ and emit BENCH_lint.json.
#
# femtolint runs on every tier-1 build, so its cost scales the edit loop:
# this script times the whole-tree scan single-threaded and with the
# femtopar thread pool (the tool's default), tracking both the absolute
# scan cost as the tree grows and the parallel speedup of the scanner
# itself.  Timing is wall-clock over REPS runs, minimum taken (same
# convention as the autotuner: min is the least noisy estimator of the
# achievable time).
#
# Usage: scripts/bench_lint.sh [reps]   (default: 5)

set -euo pipefail
cd "$(dirname "$0")/.."

REPS="${1:-5}"
BUILD_DIR="${BUILD_DIR:-build}"
FEMTOLINT="${BUILD_DIR}/tools/femtolint/femtolint"
LAYERS="tools/femtolint/layers.def"

if [[ ! -x "$FEMTOLINT" ]]; then
  echo "bench_lint: $FEMTOLINT not built (cmake --build $BUILD_DIR --target femtolint)" >&2
  exit 1
fi

# Minimum wall-time in milliseconds over $REPS runs of "$@".
min_ms() {
  local best=""
  for _ in $(seq "$REPS"); do
    local t0 t1 dt
    t0=$(date +%s%N)
    "$@" > /dev/null
    t1=$(date +%s%N)
    dt=$(( (t1 - t0) / 1000000 ))
    if [[ -z "$best" || "$dt" -lt "$best" ]]; then best="$dt"; fi
  done
  echo "$best"
}

N_FILES=$(find src -name '*.cpp' -o -name '*.hpp' | wc -l | tr -d ' ')

echo "bench_lint: ${REPS} reps over ${N_FILES} files"
SERIAL_MS=$(min_ms "$FEMTOLINT" --layers "$LAYERS" --threads 1 src)
PARALLEL_MS=$(min_ms "$FEMTOLINT" --layers "$LAYERS" src)

SPEEDUP=$(awk -v s="$SERIAL_MS" -v p="$PARALLEL_MS" \
          'BEGIN { printf "%.2f", (p > 0) ? s / p : 0 }')

# --json runs report the whole-program passes on their own clocks: the v3
# effect-inference pass and the v4 concurrency passes (lock-order and
# comm-protocol), so each closure's cost is tracked separately as the tree
# grows.  Field-wise minimum over REPS runs, same estimator as the
# wall-clock timings above (a single run is far too noisy to gate on).
# `|| true` inside the group: findings make femtolint exit 1 but its JSON
# (and the timings) is still valid, and the bench must not gate on lint
# cleanliness; `|| echo ...` only covers a broken pipe / unparseable
# output.
min_pass_ms() {
  local best="" cur
  for _ in $(seq "$REPS"); do
    cur=$({ "$FEMTOLINT" --layers "$LAYERS" --json src 2>/dev/null || true; } \
            | python3 -c 'import json,sys; j=json.load(sys.stdin); \
print(j["effect_pass_ms"], j["lockorder_pass_ms"], j["protocol_pass_ms"])' \
          || echo "0 0 0")
    if [[ -z "$best" ]]; then
      best="$cur"
    else
      best=$(awk -v a="$best" -v b="$cur" 'BEGIN {
        split(a, x); split(b, y);
        for (i = 1; i <= 3; ++i) printf "%s%s", (x[i] < y[i] ? x[i] : y[i]),
                                               (i < 3 ? " " : "\n") }')
    fi
  done
  echo "$best"
}
read -r EFFECT_MS LOCKORDER_MS PROTOCOL_MS <<< "$(min_pass_ms)"

# Gate: the two v4 passes together must stay under half the parallel
# whole-tree scan, i.e. total lint time stays under 2x its pre-v4 cost.
# A failure here means a closure went superlinear (usually an unmemoized
# walk over a dense region of the call graph) and must be fixed, not
# absorbed into the edit loop.
GATE_OK=$(awk -v l="$LOCKORDER_MS" -v r="$PROTOCOL_MS" -v p="$PARALLEL_MS" \
          'BEGIN { print (l + r < p / 2.0) ? 1 : 0 }')

cat > BENCH_lint.json <<EOF
{
  "benchmark": "femtolint_scan_src",
  "files": ${N_FILES},
  "reps": ${REPS},
  "serial_ms": ${SERIAL_MS},
  "parallel_ms": ${PARALLEL_MS},
  "effect_pass_ms": ${EFFECT_MS},
  "lockorder_pass_ms": ${LOCKORDER_MS},
  "protocol_pass_ms": ${PROTOCOL_MS},
  "concurrency_gate_ok": ${GATE_OK},
  "speedup": ${SPEEDUP},
  "threads_parallel": "$(nproc)"
}
EOF

echo "bench_lint: serial ${SERIAL_MS} ms, parallel ${PARALLEL_MS} ms (x${SPEEDUP})"
echo "bench_lint: effect ${EFFECT_MS} ms, lockorder ${LOCKORDER_MS} ms, protocol ${PROTOCOL_MS} ms"
echo "bench_lint: wrote BENCH_lint.json"

if [[ "$GATE_OK" != "1" ]]; then
  echo "bench_lint: FAIL concurrency passes (${LOCKORDER_MS}+${PROTOCOL_MS} ms)" \
       "exceed half the parallel scan (${PARALLEL_MS} ms): total lint > 2x pre-v4" >&2
  exit 1
fi
