#!/usr/bin/env bash
# Benchmark the femtolint v2 scan over src/ and emit BENCH_lint.json.
#
# femtolint runs on every tier-1 build, so its cost scales the edit loop:
# this script times the whole-tree scan single-threaded and with the
# femtopar thread pool (the tool's default), tracking both the absolute
# scan cost as the tree grows and the parallel speedup of the scanner
# itself.  Timing is wall-clock over REPS runs, minimum taken (same
# convention as the autotuner: min is the least noisy estimator of the
# achievable time).
#
# Usage: scripts/bench_lint.sh [reps]   (default: 5)

set -euo pipefail
cd "$(dirname "$0")/.."

REPS="${1:-5}"
BUILD_DIR="${BUILD_DIR:-build}"
FEMTOLINT="${BUILD_DIR}/tools/femtolint/femtolint"
LAYERS="tools/femtolint/layers.def"

if [[ ! -x "$FEMTOLINT" ]]; then
  echo "bench_lint: $FEMTOLINT not built (cmake --build $BUILD_DIR --target femtolint)" >&2
  exit 1
fi

# Minimum wall-time in milliseconds over $REPS runs of "$@".
min_ms() {
  local best=""
  for _ in $(seq "$REPS"); do
    local t0 t1 dt
    t0=$(date +%s%N)
    "$@" > /dev/null
    t1=$(date +%s%N)
    dt=$(( (t1 - t0) / 1000000 ))
    if [[ -z "$best" || "$dt" -lt "$best" ]]; then best="$dt"; fi
  done
  echo "$best"
}

N_FILES=$(find src -name '*.cpp' -o -name '*.hpp' | wc -l | tr -d ' ')

echo "bench_lint: ${REPS} reps over ${N_FILES} files"
SERIAL_MS=$(min_ms "$FEMTOLINT" --layers "$LAYERS" --threads 1 src)
PARALLEL_MS=$(min_ms "$FEMTOLINT" --layers "$LAYERS" src)

SPEEDUP=$(awk -v s="$SERIAL_MS" -v p="$PARALLEL_MS" \
          'BEGIN { printf "%.2f", (p > 0) ? s / p : 0 }')

# One --json run reports the v3 effect-inference pass (call-graph closure
# + determinism rules) on its own clock, so its cost is tracked separately
# as the tree grows.  `|| true` inside the group: findings make femtolint
# exit 1 but its JSON (and the timing) is still valid, and the bench must
# not gate on lint cleanliness; `|| echo 0` only covers a broken pipe /
# unparseable output.
EFFECT_MS=$({ "$FEMTOLINT" --layers "$LAYERS" --json src 2>/dev/null || true; } \
              | python3 -c 'import json,sys; print(json.load(sys.stdin)["effect_pass_ms"])' \
            || echo 0)

cat > BENCH_lint.json <<EOF
{
  "benchmark": "femtolint_scan_src",
  "files": ${N_FILES},
  "reps": ${REPS},
  "serial_ms": ${SERIAL_MS},
  "parallel_ms": ${PARALLEL_MS},
  "effect_pass_ms": ${EFFECT_MS},
  "speedup": ${SPEEDUP},
  "threads_parallel": "$(nproc)"
}
EOF

echo "bench_lint: serial ${SERIAL_MS} ms, parallel ${PARALLEL_MS} ms (x${SPEEDUP}), effect pass ${EFFECT_MS} ms"
echo "bench_lint: wrote BENCH_lint.json"
