// Microbenchmark: halo exchange over the ranks-as-threads communicator,
// across policies and granularities (the functional layer underneath the
// communication-policy autotuner).

#include <benchmark/benchmark.h>

#include "comm/halo.hpp"

namespace {

void bm_halo(benchmark::State& state, femto::comm::CommPolicy policy,
             femto::comm::Granularity gran) {
  const femto::comm::ProcessGrid grid({2, 1, 1, 2});
  for (auto _ : state) {
    femto::comm::HaloStats total;
    femto::comm::run_ranks(grid.size(), [&](femto::comm::RankHandle& h) {
      femto::comm::HaloField f({8, 8, 8, 8}, 24);
      femto::comm::HaloExchanger ex(grid, policy, gran);
      femto::comm::HaloStats stats;
      ex.exchange(h, f, &stats);
      if (h.rank() == 0) total = stats;
    });
    benchmark::DoNotOptimize(total.bytes_sent);
  }
  // 2 split dims x 2 faces x 512 face sites x 24 reals x 8 B x 4 ranks.
  state.SetBytesProcessed(state.iterations() * 2LL * 2 * 512 * 24 * 8 * 4);
}

void bm_halo_staged_fused(benchmark::State& state) {
  bm_halo(state, femto::comm::CommPolicy::HostStaged,
          femto::comm::Granularity::Fused);
}
void bm_halo_zerocopy_fused(benchmark::State& state) {
  bm_halo(state, femto::comm::CommPolicy::ZeroCopy,
          femto::comm::Granularity::Fused);
}
void bm_halo_zerocopy_perdim(benchmark::State& state) {
  bm_halo(state, femto::comm::CommPolicy::ZeroCopy,
          femto::comm::Granularity::PerDimension);
}
void bm_halo_rdma_fused(benchmark::State& state) {
  bm_halo(state, femto::comm::CommPolicy::DirectRdma,
          femto::comm::Granularity::Fused);
}

}  // namespace

BENCHMARK(bm_halo_staged_fused)->Unit(benchmark::kMicrosecond);
BENCHMARK(bm_halo_zerocopy_fused)->Unit(benchmark::kMicrosecond);
BENCHMARK(bm_halo_zerocopy_perdim)->Unit(benchmark::kMicrosecond);
BENCHMARK(bm_halo_rdma_fused)->Unit(benchmark::kMicrosecond);
