// Ablation: communication-policy tuning (S V, "Communication
// Autotuning").  What does picking the right policy buy at each scale —
// and what would GPU Direct RDMA (unsupported on Sierra/Summit at
// submission time; the paper's stated future gain) add?

#include <cstdio>
#include <vector>

#include "machine/perf_model.hpp"

int main() {
  using namespace femto::machine;
  LatticeProblem prob;
  prob.extents = {48, 48, 48, 64};
  prob.l5 = 12;
  SolverPerfModel no_gdr(sierra(), prob, /*gdr_available=*/false);
  SolverPerfModel gdr(sierra(), prob, /*gdr_available=*/true);

  const auto policies = comm_policies();
  std::printf("== Ablation: communication policy, Sierra 48^3 x 64 ==\n\n");
  std::printf("%8s %14s %12s %14s %14s %12s\n", "GPUs", "host-staged",
              "zero-copy", "rdma(ext.)", "tuned", "tuned-policy");
  bool ok = true;
  for (int n : {16, 64, 256, 1024, 4096}) {
    const auto hs = no_gdr.point_with_policy(n, policies[0]);
    const auto zc = no_gdr.point_with_policy(n, policies[1]);
    const auto rd = gdr.point_with_policy(n, policies[2]);
    const auto tuned = no_gdr.strong_scaling_point(n);
    std::printf("%8d %14.2f %12.2f %14.2f %14.2f %12s\n", n, hs.tflops,
                zc.tflops, rd.tflops, tuned.tflops, tuned.policy.c_str());
    ok = ok && tuned.tflops >= hs.tflops && rd.tflops >= zc.tflops;
  }

  // Gain from tuning vs always-host-staged, and from the GDR extension.
  const auto hs_4k = no_gdr.point_with_policy(4096, policies[0]);
  const auto tuned_4k = no_gdr.strong_scaling_point(4096);
  const auto gdr_4k = gdr.strong_scaling_point(4096);
  std::printf("\nat 4096 GPUs: tuning vs fixed host-staged: +%.1f%%; "
              "GDR extension over best available: +%.1f%%\n",
              (tuned_4k.tflops / hs_4k.tflops - 1.0) * 100.0,
              (gdr_4k.tflops / tuned_4k.tflops - 1.0) * 100.0);
  std::printf("tuned policy always at least as fast as any fixed policy: "
              "%s\n",
              ok ? "YES" : "NO");
  return ok ? 0 : 1;
}
