// Microbenchmark: gauge storage tiers (DESIGN.md §16) -- full18 vs
// recon12 vs recon8 vs fixed12.
//
// Two studies, both on hot (random SU(3)) links:
//
//  * stream -- the GATED study: a DRAM-resident float gauge field is
//    streamed link by link (load + trace accumulate) per format.  This is
//    the bandwidth-bound regime the paper's compression argument lives
//    in: fewer stored bytes -> fewer streamed bytes -> more sites per
//    second.  The gate (scripts/bench_compress.sh) requires recon12 to
//    beat full18 per-site throughput by >= 1.1x.
//
//  * dslash -- INFO-ONLY: the end-to-end float dslash per format on a
//    cache-unfriendly volume.  On wide-SIMD, bandwidth-starved machines
//    this tracks the stream study; on scalar or compute-bound builds the
//    reconstruction arithmetic can win back the byte savings, which is
//    exactly why the autotuner sweeps the format axis per machine instead
//    of hard-coding a tier.
//
// Timing is min-of-reps wall clock (the autotuner's convention).  Results
// land in BENCH_compress.json (repo root) for scripts/bench_compress.sh
// and the benchdiff sentinel.

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "dirac/wilson.hpp"
#include "lattice/compressed_gauge.hpp"
#include "lattice/flops.hpp"
#include "lattice/gauge.hpp"
#include "simd/vec.hpp"

namespace {

using clock_type = std::chrono::steady_clock;

constexpr int kInner = 2;  // kernel calls per timed sample
constexpr int kReps = 8;   // timed samples; min is reported

double time_best(const std::function<void()>& fn) {
  fn();  // warm: faults the pages
  double best = 1e300;
  for (int r = 0; r < kReps; ++r) {
    const auto t0 = clock_type::now();
    for (int i = 0; i < kInner; ++i) fn();
    const double s =
        std::chrono::duration<double>(clock_type::now() - t0).count() / kInner;
    best = std::min(best, s);
  }
  return best;
}

std::int64_t charged_bytes(const std::function<void()>& fn) {
  femto::flops::reset();
  fn();
  return femto::flops::bytes();
}

struct FormatRow {
  std::string name;
  double seconds = 0.0;
  double gbps = 0.0;         // stored bytes streamed / second
  double msites_per_s = 0.0;  // per-site throughput (the gated ratio)
  double speedup = 1.0;       // full18 seconds / this format's seconds
};

// ---------------------------------------------------------------------------
// Study 1 (gated): DRAM link stream per format.
// ---------------------------------------------------------------------------

// Stream every link of @p u (the container's load() does the
// reconstruction in registers) and fold the trace into a sink so the
// loads cannot be optimised away.
template <typename GaugeT>
double stream_links(const GaugeT& u) {
  double sink = 0.0;
  const std::int64_t vol = u.geom().volume();
  for (int mu = 0; mu < 4; ++mu)
    for (std::int64_t s = 0; s < vol; ++s) {
      const auto link = u.load(mu, s);
      sink += static_cast<double>(link(0, 0).re + link(1, 1).re +
                                  link(2, 2).re);
    }
  return sink;
}

template <typename GaugeT>
FormatRow stream_row(const std::string& name, const GaugeT& u,
                     double full18_seconds) {
  FormatRow row;
  row.name = name;
  double sink = 0.0;
  row.seconds = time_best([&] { sink += stream_links(u); });
  const double sites = static_cast<double>(u.geom().volume());
  row.gbps = static_cast<double>(u.bytes()) / row.seconds / 1e9;
  row.msites_per_s = sites / row.seconds / 1e6;
  row.speedup =
      full18_seconds > 0.0 ? full18_seconds / row.seconds : 1.0;
  // Keep the sink alive without polluting the report.
  if (sink == 0.123456789) std::printf("sink %f\n", sink);
  return row;
}

std::vector<FormatRow> stream_study(
    const std::shared_ptr<const femto::Geometry>& geom) {
  femto::GaugeField<double> ud(geom);
  femto::hot_gauge(ud, 7);
  const auto u = ud.convert<float>();
  const femto::CompressedGaugeField<float> r12(u);
  const femto::Recon8GaugeField<float> r8(u);
  const femto::Fixed12GaugeField<float> x12(u);

  std::vector<FormatRow> rows;
  rows.push_back(stream_row("full18", u, 0.0));
  const double base = rows[0].seconds;
  rows[0].speedup = 1.0;
  rows.push_back(stream_row("recon12", r12, base));
  rows.push_back(stream_row("recon8", r8, base));
  rows.push_back(stream_row("fixed12", x12, base));
  return rows;
}

// ---------------------------------------------------------------------------
// Study 2 (info-only): end-to-end float dslash per format.
// ---------------------------------------------------------------------------

std::vector<FormatRow> dslash_study(
    const std::shared_ptr<const femto::Geometry>& geom, int l5) {
  femto::GaugeField<double> ud(geom);
  femto::hot_gauge(ud, 11);
  const auto u = ud.convert<float>();
  const femto::CompressedGaugeField<float> r12(u);
  const femto::Recon8GaugeField<float> r8(u);
  const femto::Fixed12GaugeField<float> x12(u);

  femto::SpinorField<float> in(geom, l5, femto::Subset::Odd),
      out(geom, l5, femto::Subset::Even);
  in.gaussian(3);

  femto::DslashTuning tune;
  tune.variant = femto::simd::kWidth<float> > 1
                     ? femto::DslashVariant::kVector
                     : femto::DslashVariant::kScalar;

  const auto row_for = [&](const std::string& name,
                           const std::function<void()>& call,
                           double base) {
    FormatRow row;
    row.name = name;
    row.seconds = time_best(call);
    row.gbps = static_cast<double>(charged_bytes(call)) / row.seconds / 1e9;
    row.msites_per_s = static_cast<double>(geom->half_volume()) * l5 /
                       row.seconds / 1e6;
    row.speedup = base > 0.0 ? base / row.seconds : 1.0;
    return row;
  };

  std::vector<FormatRow> rows;
  rows.push_back(row_for(
      "full18",
      [&] {
        femto::dslash<float>(femto::view(out), u, femto::cview(in), 0,
                             false, tune);
      },
      0.0));
  const double base = rows[0].seconds;
  rows[0].speedup = 1.0;
  rows.push_back(row_for(
      "recon12",
      [&] {
        femto::dslash<float>(femto::view(out), r12, femto::cview(in), 0,
                             false, tune);
      },
      base));
  rows.push_back(row_for(
      "recon8",
      [&] {
        femto::dslash<float>(femto::view(out), r8, femto::cview(in), 0,
                             false, tune);
      },
      base));
  rows.push_back(row_for(
      "fixed12",
      [&] {
        femto::dslash<float>(femto::view(out), x12, femto::cview(in), 0,
                             false, tune);
      },
      base));
  return rows;
}

// ---------------------------------------------------------------------------
// Report.
// ---------------------------------------------------------------------------

void print_rows(const char* title, const std::vector<FormatRow>& rows) {
  std::printf("%s:\n", title);
  for (const auto& r : rows)
    std::printf("  %-8s %9.3e s  %7.2f GB/s  %8.2f Msites/s  (x%.3f)\n",
                r.name.c_str(), r.seconds, r.gbps, r.msites_per_s,
                r.speedup);
}

double speedup_of(const std::vector<FormatRow>& rows,
                  const std::string& name) {
  for (const auto& r : rows)
    if (r.name == name) return r.speedup;
  return 0.0;
}

void write_json(const std::vector<FormatRow>& stream,
                const std::vector<FormatRow>& dslash, int gate_ok) {
  std::FILE* f = std::fopen("BENCH_compress.json", "w");
  if (!f) return;
  std::fprintf(f,
               "{\n  \"isa\": \"%s\",\n  \"width_float\": %d,\n",
               femto::simd::kIsaName, femto::simd::kWidth<float>);
  const auto dump = [f](const char* key, const std::vector<FormatRow>& rows) {
    std::fprintf(f, "  \"%s\": {\n", key);
    for (std::size_t i = 0; i < rows.size(); ++i) {
      const auto& r = rows[i];
      std::fprintf(f,
                   "    \"%s\": {\"seconds\": %.3e, \"gbps\": %.3f, "
                   "\"msites_per_s\": %.3f, \"speedup\": %.3f}%s\n",
                   r.name.c_str(), r.seconds, r.gbps, r.msites_per_s,
                   r.speedup, i + 1 < rows.size() ? "," : "");
    }
    std::fprintf(f, "  },\n");
  };
  dump("stream", stream);
  dump("dslash", dslash);
  std::fprintf(f, "  \"recon12_gate_ok\": %d\n}\n", gate_ok);
  std::fclose(f);
}

}  // namespace

int main() {
  std::printf("gauge storage tier microbenchmark: isa=%s, float W=%d\n",
              femto::simd::kIsaName, femto::simd::kWidth<float>);

  // DRAM-resident stream: 16x16x16x32 = 131k sites -> 37.7 MB of full18
  // float links (25.2 / 16.8 / 14.7 MB for recon12 / recon8 / fixed12),
  // well past any LLC on the target machines.
  auto geom_stream = std::make_shared<femto::Geometry>(16, 16, 16, 32);
  std::printf("stream volume 16x16x16x32 (%.1f MB full18 float links)\n\n",
              static_cast<double>(4 * geom_stream->volume() * 18 *
                                  static_cast<std::int64_t>(sizeof(float))) /
                  1e6);
  const auto stream = stream_study(geom_stream);
  print_rows("link stream (gated study)", stream);
  std::printf("\n");

  // End-to-end dslash: modest volume, info-only.
  auto geom_dslash = std::make_shared<femto::Geometry>(8, 8, 8, 16);
  const int l5 = 8;
  const auto dslash = dslash_study(geom_dslash, l5);
  print_rows("float dslash 8x8x8x16 l5=8 (info only)", dslash);

  // The gate auto-passes on scalar builds: with no SIMD the reference
  // study is not bandwidth-bound and the compression claim is vacuous.
  const double r12_speedup = speedup_of(stream, "recon12");
  const int gate_ok =
      femto::simd::kWidth<float> <= 1 || r12_speedup >= 1.1 ? 1 : 0;
  std::printf("\nrecon12 stream speedup x%.3f -> gate %s\n", r12_speedup,
              gate_ok ? "OK" : "FAIL");

  write_json(stream, dslash, gate_ok);
  std::printf("wrote BENCH_compress.json\n");
  return 0;
}
