// Fig. 4: strong scaling of the propagator solve on Summit with a single
// 96^3 x 144 lattice — the next-generation proof-of-concept problem.
//
// Shape criteria vs the paper: the sustained solver performance climbs
// toward the ~1.5 PFLOPS regime, but efficiency collapses past ~2000 GPUs
// ("we cannot rely on simple data-parallel strong scaling alone in order
// to saturate large machines").

#include <cstdio>
#include <vector>

#include "machine/perf_model.hpp"

int main() {
  using namespace femto::machine;
  LatticeProblem prob;
  prob.extents = {96, 96, 96, 144};
  prob.l5 = 12;

  SolverPerfModel model(summit(), prob);
  const std::vector<int> gpu_counts{24,   48,   96,   192,  384, 768,
                                    1536, 2304, 3456, 4608, 6912, 10368};

  std::printf("== Fig. 4: Summit strong scaling, 96^3 x 144 ==\n\n");
  std::printf("%8s %12s %12s %14s %10s\n", "GPUs", "TFLOPS", "pct peak",
              "GB/s per GPU", "grid");
  double peak_eff = 0.0;
  int knee = 0;
  double tflops_max = 0.0;
  for (int n : gpu_counts) {
    const auto pt = model.strong_scaling_point(n);
    std::printf("%8d %12.1f %12.2f %14.1f %3dx%dx%dx%d\n", n, pt.tflops,
                pt.pct_peak, pt.bw_per_gpu_gbs, pt.grid[0], pt.grid[1],
                pt.grid[2], pt.grid[3]);
    if (pt.pct_peak > peak_eff) peak_eff = pt.pct_peak;
    tflops_max = std::max(tflops_max, pt.tflops);
    // Record where efficiency first falls below half its maximum.
    if (knee == 0 && pt.pct_peak < 0.5 * peak_eff) knee = n;
  }

  std::printf("\nsustained solver performance approaches %.2f PFLOPS "
              "(paper: ~1.5 PFLOPS)\n",
              tflops_max / 1000.0);
  std::printf("efficiency knee (first point below half of best): ~%d GPUs "
              "(paper: \"a large drop in solver efficiency past ~2000 "
              "GPUs\")\n",
              knee);
  const bool ok = tflops_max > 800.0 && knee > 0 && knee <= 4608;
  std::printf("shape reproduced: %s\n", ok ? "YES" : "NO");
  return ok ? 0 : 1;
}
