// Fig. 1: the effective axial coupling g_eff(t).
//
// Series printed:
//   * the FH-method data with bootstrap errors (grey points of the paper):
//     precise at small t, noise exploding exponentially at large t,
//   * the two-state fit curve and the excited-state-subtracted data
//     (black/white points),
//   * the traditional fixed-separation points at large t (triangles /
//     circles / squares) computed with 10x the statistics,
//   * the final bands: FH gA vs traditional gA.
//
// Shape criteria vs the paper: FH errors at t<=5 are tiny; traditional
// errors at t in {8,10,12} are exponentially larger; the FH band is
// narrower than the traditional band despite an order of magnitude fewer
// samples; both bands cover the same gA.

#include <cmath>
#include <cstdio>

#include "core/ga_analysis.hpp"
#include "stats/model_average.hpp"

int main() {
  using namespace femto;
  const core::GaEnsembleParams p;  // a09m310-like
  const int n_fh = 784;            // FH samples (paper-scale ensemble)
  const int n_trad = 7840;         // traditional: order of magnitude more

  const auto fh_data = core::generate_fh_dataset(p, n_fh, 1810);
  const auto fh = core::analyze_fh(fh_data, 2, 10, 200, 1811);

  const auto tr_data =
      core::generate_traditional_dataset(p, {8, 10, 12}, n_trad, 1812);
  const auto tr = core::analyze_traditional(tr_data, 200, 1813);

  std::printf("== Fig. 1: effective gA vs t (a09m310-like ensemble) ==\n\n");
  std::printf("FH method, %d samples; fit window t in [2,10]\n", n_fh);
  std::printf("%4s  %12s  %12s  %12s  %14s\n", "t", "g_eff", "err",
              "fit", "subtracted");
  for (std::size_t i = 0; i < fh_data.t_values.size(); ++i) {
    const double t = fh_data.t_values[i];
    const double fit_val =
        stats::fh_effective_coupling(fh.fit.params, t);
    // Excited-state-subtracted point (the black/white symbols): data
    // minus the fitted contamination.
    const double contamination = fit_val - fh.fit.params[0];
    std::printf("%4.0f  %12.5f  %12.5f  %12.5f  %14.5f\n", t,
                fh.data_mean[i], fh.data_err[i], fit_val,
                fh.data_mean[i] - contamination);
  }

  std::printf("\ntraditional method, %d samples (10x statistics), "
              "separations {8, 10, 12}\n",
              n_trad);
  std::printf("%4s  %12s  %12s\n", "tsep", "ratio", "err");
  for (std::size_t i = 0; i < tr_data.t_values.size(); ++i)
    std::printf("%4.0f  %12.5f  %12.5f\n", tr_data.t_values[i],
                tr.data_mean[i], tr.data_err[i]);

  // Model-average the FH fit over t_min windows (the published analysis'
  // treatment of the fit-window systematic).
  std::vector<stats::FitWindow> windows;
  for (int tmin = 2; tmin <= 5; ++tmin) windows.push_back({tmin, 10});
  const auto avg = stats::model_average(
      stats::fh_effective_coupling, fh_data.t_values, fh.data_mean,
      fh.data_err, {1.2, -0.2, 0.05, 0.5}, windows);

  std::printf("\n-- extracted bands --\n");
  std::printf("FH  (blue band):        gA = %.4f +- %.4f  (%.2f%%)\n",
              fh.ga, fh.err, 100.0 * fh.err / fh.ga);
  std::printf("FH, model-averaged:     gA = %.4f +- %.4f (stat %.4f, "
              "window %.4f; best t_min = %d)\n",
              avg.value, avg.error, avg.stat_error, avg.model_error,
              avg.best().window.t_min);
  std::printf("trad (grey band, 10x):  gA = %.4f +- %.4f  (%.2f%%)\n",
              tr.ga, tr.err, 100.0 * tr.err / tr.ga);
  std::printf("truth:                  gA = %.4f\n", p.ga);

  const bool fh_wins = fh.err < tr.err;
  const bool both_cover =
      std::abs(fh.ga - p.ga) < 4 * fh.err &&
      std::abs(tr.ga - p.ga) < 4 * tr.err;
  std::printf("\nFH narrower than traditional despite 10x fewer samples: "
              "%s\nboth bands cover the truth: %s\n",
              fh_wins ? "YES" : "NO", both_cover ? "YES" : "NO");
  return fh_wins && both_cover ? 0 : 1;
}
