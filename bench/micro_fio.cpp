// Microbenchmark: propagator write/read through the femtoio container —
// the I/O stage of Fig. 2 (0.5% of the application budget).

#include <benchmark/benchmark.h>

#include <cstdio>

#include "fio/propagator_io.hpp"

namespace {

void bm_propagator_write(benchmark::State& state) {
  auto geom = std::make_shared<femto::Geometry>(8, 8, 8, 8);
  femto::SpinorField<double> prop(geom, 8, femto::Subset::Full);
  prop.gaussian(31);
  const std::string path = "/tmp/femto_bench_io.bin";
  for (auto _ : state) {
    femto::fio::File f;
    femto::fio::write_propagator(f, "p", prop, {.ensemble = "bench"});
    f.save(path);
  }
  state.SetBytesProcessed(state.iterations() * prop.bytes());
  std::remove(path.c_str());
}

void bm_propagator_read(benchmark::State& state) {
  auto geom = std::make_shared<femto::Geometry>(8, 8, 8, 8);
  femto::SpinorField<double> prop(geom, 8, femto::Subset::Full);
  prop.gaussian(32);
  const std::string path = "/tmp/femto_bench_io.bin";
  {
    femto::fio::File f;
    femto::fio::write_propagator(f, "p", prop, {.ensemble = "bench"});
    f.save(path);
  }
  femto::SpinorField<double> back(geom, 8, femto::Subset::Full);
  for (auto _ : state) {
    auto f = femto::fio::File::load(path);  // includes CRC verification
    femto::fio::read_propagator(f, "p", back);
    benchmark::DoNotOptimize(back.data());
  }
  state.SetBytesProcessed(state.iterations() * prop.bytes());
  std::remove(path.c_str());
}

void bm_crc32(benchmark::State& state) {
  std::vector<char> buf(1 << 20, 'x');
  for (auto _ : state) {
    auto c = femto::fio::crc32(buf.data(), buf.size());
    benchmark::DoNotOptimize(c);
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<std::int64_t>(buf.size()));
}

}  // namespace

BENCHMARK(bm_propagator_write)->Unit(benchmark::kMillisecond);
BENCHMARK(bm_propagator_read)->Unit(benchmark::kMillisecond);
BENCHMARK(bm_crc32)->Unit(benchmark::kMicrosecond);
