// Ablation: mixed-precision reliable updates on REAL solves.  Sweeps the
// sloppy precision (double / single / half) and the reliable-update
// trigger delta, reporting iterations, reliable updates and wall time on
// a small Mobius system.  The design claim: half-precision storage does
// most of the work, with occasional double-precision corrections, at the
// same final accuracy.

#include <cstdio>

#include "dirac/mobius.hpp"
#include "lattice/gauge.hpp"
#include "solver/cg.hpp"

int main() {
  using namespace femto;
  auto geom = std::make_shared<Geometry>(8, 8, 8, 8);
  auto u = std::make_shared<GaugeField<double>>(geom);
  weak_gauge(*u, 991, 0.25);
  auto uf = std::make_shared<GaugeField<float>>(u->convert<float>());
  const MobiusParams mp{8, -1.8, 1.5, 0.5, 0.05};
  MobiusOperator<double> opd(u, mp);
  MobiusOperator<float> opf(uf, mp);

  SpinorField<double> b(geom, mp.l5, Subset::Odd);
  b.gaussian(992);

  ApplyFn<double> ad = [&](SpinorField<double>& out,
                           const SpinorField<double>& in) {
    opd.apply_normal(out, in);
  };
  ApplyFn<float> af = [&](SpinorField<float>& out,
                          const SpinorField<float>& in) {
    opf.apply_normal(out, in);
  };

  std::printf("== Ablation: mixed-precision reliable updates, 8^3x8 "
              "Mobius L5=8, tol 1e-10 ==\n\n");
  std::printf("%-22s %6s %9s %10s %12s\n", "configuration", "iters",
              "updates", "time (s)", "true |r|/|b|");

  // Pure double reference.
  SpinorField<double> x(geom, mp.l5, Subset::Odd);
  auto ref = cg<double>(ad, x, b, 1e-10, 20000);
  auto verify = [&](const SpinorField<double>& sol) {
    SpinorField<double> r(geom, mp.l5, Subset::Odd);
    opd.apply_normal(r, sol);
    blas::axpy(-1.0, b, r);
    return std::sqrt(blas::norm2(r) / blas::norm2(b));
  };
  std::printf("%-22s %6d %9s %10.3f %12.2e\n", "double CG",
              ref.iterations, "-", ref.seconds, verify(x));

  double t_double = ref.seconds;
  double t_half = 0;
  for (Precision prec : {Precision::Single, Precision::Half}) {
    for (double delta : {0.3, 0.1, 0.03}) {
      SolverParams sp;
      sp.tol = 1e-10;
      sp.sloppy = prec;
      sp.delta = delta;
      SpinorField<double> xm(geom, mp.l5, Subset::Odd);
      const auto res = mixed_cg(ad, af, xm, b, sp);
      char label[64];
      std::snprintf(label, sizeof(label), "%s, delta=%.2f",
                    to_string(prec), delta);
      std::printf("%-22s %6d %9d %10.3f %12.2e\n", label, res.iterations,
                  res.reliable_updates, res.seconds, verify(xm));
      if (prec == Precision::Half && delta == 0.1) t_half = res.seconds;
    }
  }

  std::printf("\nhalf-storage mixed CG vs pure double: %.2fx wall time "
              "(GPU hardware rewards the 4x bandwidth saving far more "
              "than a CPU does)\n",
              t_half / t_double);
  return 0;
}
