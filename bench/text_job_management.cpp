// The job-management numbers quoted in the paper's text (S V), measured
// by running the actual schedulers on the simulated cluster:
//
//   * "naively bundling tasks ... often caused a 20 to 25% idling
//     inefficiency";
//   * METAQ backfilling "allowed us to recover an enormous fraction of
//     our wasted time, effectively providing an across-the-board 25%
//     speed-up";
//   * mpi_jm: "on Sierra, we were able to bring a 4224 node job up and
//     running in 3-5 minutes"; block boundaries prevent fragmentation;
//     CPU contractions run on the same nodes "effectively free".

#include <cstdio>

#include "jobmgr/schedulers.hpp"
#include "jobmgr/workload.hpp"

int main() {
  using namespace femto;

  cluster::ClusterSpec spec;
  spec.n_nodes = 256;
  spec.nodes_per_block = 4;
  spec.node.gpus = 4;
  spec.perf_jitter_sigma = 0.03;
  spec.seed = 88;
  cluster::Cluster cl(spec);

  // (a) The paper's 20-25% idling claim is about bundling "even similar
  // tasks" — measure it on the homogeneous solve stream.
  jm::WorkloadOptions homog;
  homog.n_propagators = 512;
  homog.nodes_per_solve = 4;
  // Solve durations spread ~12% from per-configuration iteration counts.
  homog.duration_jitter = 0.12;
  homog.with_contractions = false;
  homog.seed = 89;
  const auto solves_only = jm::make_campaign(homog);
  const auto naive_homog = jm::run_naive_bundling(cl, solves_only);

  // (b) The full heterogeneous campaign (solves + contractions) for the
  // three-way comparison.
  jm::WorkloadOptions w = homog;
  w.with_contractions = true;
  const auto tasks = jm::make_campaign(w);

  std::printf("== Job management (paper S V), %d-node simulated Sierra "
              "slice ==\n\n",
              spec.n_nodes);
  std::printf("homogeneous solve bundles: %s\n\n",
              naive_homog.summary().c_str());

  const auto naive = jm::run_naive_bundling(cl, tasks);
  const auto metaq = jm::run_metaq(cl, tasks);
  const auto mjm = jm::run_mpi_jm(cl, tasks, {.lump_nodes = 64});

  std::printf("full campaign (%zu tasks incl. contractions):\n",
              tasks.size());
  for (const auto& rep : {naive, metaq, mjm})
    std::printf("  %s\n", rep.summary().c_str());

  const double metaq_speedup = naive.makespan / metaq.makespan;
  const double jm_speedup = naive.makespan / mjm.makespan;
  std::printf("\nnaive idling on similar-task bundles: %.1f%% "
              "(paper: 20-25%%); mixing in the heterogeneous contractions "
              "raises it to %.1f%%\n",
              naive_homog.idle_fraction() * 100.0,
              naive.idle_fraction() * 100.0);
  std::printf("METAQ speed-up over naive: %.2fx (paper: ~1.25x "
              "across-the-board recovery)\n",
              metaq_speedup);
  std::printf("mpi_jm speed-up over naive: %.2fx, fragmented placements "
              "%d (METAQ: %d), co-scheduled CPU tasks %d\n",
              jm_speedup, mjm.fragmented_placements,
              metaq.fragmented_placements, mjm.cpu_tasks_coscheduled);

  // Startup at Sierra scale.
  cluster::ClusterSpec big = spec;
  big.n_nodes = 4224;
  cluster::Cluster big_cl(big);
  jm::WorkloadOptions bw = w;
  bw.n_propagators = 64;
  bw.with_contractions = false;
  const auto big_rep =
      jm::run_mpi_jm(big_cl, jm::make_campaign(bw), {.lump_nodes = 128});
  std::printf("\nmpi_jm startup on 4224 nodes: %.0f s (paper: 3-5 "
              "minutes)\n",
              big_rep.startup_time);

  const bool ok = naive_homog.idle_fraction() > 0.10 &&
                  naive_homog.idle_fraction() < 0.35 &&
                  metaq_speedup > 1.08 &&
                  mjm.fragmented_placements == 0 &&
                  mjm.cpu_tasks_coscheduled > 0 &&
                  big_rep.startup_time > 45 && big_rep.startup_time < 300;
  std::printf("claims reproduced: %s\n", ok ? "YES" : "NO");
  return ok ? 0 : 1;
}
