// Fig. 6: weak scaling on Summit under METAQ — sustained PFLOPS as the
// number of propagator calculations grows, in groups of 4 nodes (24 GPUs)
// on a 64^3 x 96 lattice, managed by a single METAQ instance using jsrun
// per task.
//
// Shape criterion: "our job management achieves perfect weak scaling" —
// the series is near-linear in the number of groups.

#include <cstdio>
#include <vector>

#include "jobmgr/schedulers.hpp"
#include "jobmgr/workload.hpp"
#include "machine/perf_model.hpp"

namespace {

double metaq_efficiency() {
  femto::cluster::ClusterSpec spec;
  spec.n_nodes = 128;
  spec.nodes_per_block = 4;
  spec.node.gpus = 6;  // Summit
  spec.perf_jitter_sigma = 0.03;
  spec.seed = 66;
  femto::cluster::Cluster cl(spec);
  femto::jm::WorkloadOptions w;
  w.n_propagators = 256;
  w.nodes_per_solve = 4;
  w.gpus_per_node = 6;
  w.with_contractions = false;  // METAQ runs them as separate node jobs
  w.seed = 67;
  const auto rep =
      femto::jm::run_metaq(cl, femto::jm::make_campaign(w), {});
  return rep.utilization();
}

}  // namespace

int main() {
  using namespace femto::machine;
  LatticeProblem prob;
  prob.extents = {64, 64, 64, 96};
  prob.l5 = 12;
  SolverPerfModel model(summit(), prob);
  const double per_group_tflops = model.strong_scaling_point(24).tflops;
  const double eff = metaq_efficiency();

  std::printf("== Fig. 6: Summit weak scaling under METAQ, 4-node "
              "(24 GPU) groups, 64^3 x 96 ==\n\n");
  std::printf("per-group solver rate: %.2f TFLOPS (24 V100), METAQ "
              "efficiency %.3f\n\n",
              per_group_tflops, eff);
  std::printf("%8s %16s\n", "GPUs", "SpectrumMPI:METAQ");

  const std::vector<int> group_counts{12, 25, 50, 100, 150, 200, 250, 290};
  std::vector<double> perf;
  for (int groups : group_counts) {
    const double pf = per_group_tflops * groups * eff / 1000.0;
    perf.push_back(pf);
    std::printf("%8d %16.3f\n", groups * 24, pf);
  }

  // Linearity check: performance per group constant to a few percent.
  const double first_rate = perf.front() / group_counts.front();
  const double last_rate = perf.back() / group_counts.back();
  const double linearity = last_rate / first_rate;
  std::printf("\nper-group rate at smallest vs largest scale: %.4f "
              "(1.0 = perfect weak scaling)\n",
              linearity);
  std::printf("top point: %.2f PFLOPS at %d GPUs (paper: ~8 PFLOPS at "
              "~7000 GPUs)\n",
              perf.back(), group_counts.back() * 24);
  const bool ok = linearity > 0.95 && linearity < 1.05 &&
                  perf.back() > 3.0 && perf.back() < 15.0;
  std::printf("shape reproduced: %s\n", ok ? "YES" : "NO");
  return ok ? 0 : 1;
}
