// Microbenchmark: APE link smearing and Wuppertal source smearing — the
// gauge/source conditioning steps of production nucleon measurements.

#include <benchmark/benchmark.h>

#include "lattice/gauge.hpp"
#include "lattice/observables.hpp"
#include "lattice/smear.hpp"

namespace {

std::shared_ptr<const femto::Geometry> geom() {
  static auto g = std::make_shared<femto::Geometry>(8, 8, 8, 8);
  return g;
}

void bm_ape_step(benchmark::State& state) {
  femto::GaugeField<double> u(geom());
  femto::weak_gauge(u, 1, 0.25);
  for (auto _ : state) {
    femto::ape_smear_step(u, 0.5);
    benchmark::DoNotOptimize(u.data());
  }
  state.counters["links/s"] = benchmark::Counter(
      4.0 * static_cast<double>(geom()->volume()) * state.iterations(),
      benchmark::Counter::kIsRate);
}

void bm_wuppertal(benchmark::State& state) {
  femto::GaugeField<double> u(geom());
  femto::weak_gauge(u, 2, 0.25);
  femto::SpinorField<double> psi(geom(), 1, femto::Subset::Full);
  psi.gaussian(3);
  for (auto _ : state) {
    femto::wuppertal_smear(psi, u, {0.25, 1});
    benchmark::DoNotOptimize(psi.data());
  }
  state.counters["sites/s"] = benchmark::Counter(
      static_cast<double>(geom()->volume()) * state.iterations(),
      benchmark::Counter::kIsRate);
}

void bm_wilson_loop_2x2(benchmark::State& state) {
  femto::GaugeField<double> u(geom());
  femto::weak_gauge(u, 4, 0.25);
  double sink = 0;
  for (auto _ : state) {
    sink += femto::wilson_loop(u, 2, 2);
    benchmark::DoNotOptimize(sink);
  }
}

void bm_action_density(benchmark::State& state) {
  femto::GaugeField<double> u(geom());
  femto::weak_gauge(u, 5, 0.25);
  double sink = 0;
  for (auto _ : state) {
    sink += femto::action_density(u);
    benchmark::DoNotOptimize(sink);
  }
}

}  // namespace

BENCHMARK(bm_ape_step)->Unit(benchmark::kMillisecond);
BENCHMARK(bm_wuppertal)->Unit(benchmark::kMillisecond);
BENCHMARK(bm_wilson_loop_2x2)->Unit(benchmark::kMillisecond)->Iterations(3);
BENCHMARK(bm_action_density)->Unit(benchmark::kMillisecond)->Iterations(3);
