// Microbenchmark: full Mobius CGNE solves in the three precision modes —
// the end-to-end cost the paper's mixed-precision design optimises.

#include <benchmark/benchmark.h>

#include "lattice/gauge.hpp"
#include "solver/dwf_solve.hpp"

namespace {

struct Setup {
  std::shared_ptr<const femto::Geometry> geom;
  std::shared_ptr<const femto::GaugeField<double>> u;
  femto::MobiusParams params{6, -1.8, 1.5, 0.5, 0.1};
  Setup() {
    geom = std::make_shared<femto::Geometry>(4, 4, 4, 8);
    auto ug = std::make_shared<femto::GaugeField<double>>(geom);
    femto::weak_gauge(*ug, 11, 0.2);
    u = ug;
  }
  static Setup& get() {
    static Setup s;
    return s;
  }
};

void bm_solve(benchmark::State& state, femto::Precision prec,
              bool pure_double) {
  auto& s = Setup::get();
  femto::SolverParams sp;
  sp.tol = 1e-8;
  sp.sloppy = prec;
  femto::DwfSolver solver(s.u, s.params, sp);
  femto::SpinorField<double> b(s.geom, s.params.l5, femto::Subset::Full),
      x(s.geom, s.params.l5, femto::Subset::Full);
  b.gaussian(12);

  std::int64_t iters = 0;
  std::int64_t flop0 = femto::flops::get();
  for (auto _ : state) {
    x.zero();
    const auto res =
        pure_double ? solver.solve_double(x, b) : solver.solve(x, b);
    iters += res.iterations;
    benchmark::DoNotOptimize(x.data());
  }
  state.counters["iters/solve"] = static_cast<double>(iters) /
                                  static_cast<double>(state.iterations());
  state.counters["GFLOP/s"] = benchmark::Counter(
      static_cast<double>(femto::flops::get() - flop0) / 1e9,
      benchmark::Counter::kIsRate);
}

void bm_solve_double(benchmark::State& state) {
  bm_solve(state, femto::Precision::Double, true);
}
void bm_solve_mixed_single(benchmark::State& state) {
  bm_solve(state, femto::Precision::Single, false);
}
void bm_solve_mixed_half(benchmark::State& state) {
  bm_solve(state, femto::Precision::Half, false);
}

}  // namespace

BENCHMARK(bm_solve_double)->Unit(benchmark::kMillisecond)->Iterations(3);
BENCHMARK(bm_solve_mixed_single)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(3);
BENCHMARK(bm_solve_mixed_half)->Unit(benchmark::kMillisecond)->Iterations(3);
