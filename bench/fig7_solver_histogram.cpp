// Fig. 7: histogram of per-solver performance from the largest run —
// 13500 GPUs on Sierra under mpi_jm with MVAPICH2, 4-node (16 GPU)
// groups.  Spread comes from node-performance heterogeneity (collective
// work runs at the slowest member's speed).
//
// Shape criteria: a dominant peak near the nominal group rate with a tail
// toward lower performance (slow nodes drag whole groups), nothing above
// nominal.

#include <algorithm>
#include <cstdio>
#include <vector>

#include "cluster/cluster.hpp"
#include "machine/perf_model.hpp"

int main() {
  using namespace femto;

  machine::LatticeProblem prob;
  prob.extents = {48, 48, 48, 64};
  prob.l5 = 12;
  machine::SolverPerfModel model(machine::sierra(), prob);
  const double nominal = model.strong_scaling_point(16).tflops;
  const double mvapich_rate = 0.75;

  // 13500 GPUs = 844 groups of 16 on ~3376 nodes.
  cluster::ClusterSpec spec;
  spec.n_nodes = 3376;
  spec.nodes_per_block = 4;
  spec.node.gpus = 4;
  spec.perf_jitter_sigma = 0.05;
  spec.seed = 77;
  cluster::Cluster cl(spec);

  std::vector<double> rates;
  for (int b = 0; b < cl.n_blocks(); ++b) {
    const auto nodes = cl.block_nodes(b);
    rates.push_back(nominal * mvapich_rate * cl.min_perf(nodes));
  }

  const double lo = *std::min_element(rates.begin(), rates.end());
  const double hi = *std::max_element(rates.begin(), rates.end());
  const int nbins = 24;
  std::vector<int> bins(nbins, 0);
  for (double r : rates) {
    int k = static_cast<int>((r - lo) / (hi - lo + 1e-12) * nbins);
    k = std::min(k, nbins - 1);
    ++bins[static_cast<std::size_t>(k)];
  }

  std::printf("== Fig. 7: per-solver performance histogram, 13500 GPUs, "
              "mpi_jm + MVAPICH2 ==\n\n");
  std::printf("%d solver groups of 16 GPUs; nominal group rate %.2f "
              "TFLOPS (x %.2f MVAPICH2 factor)\n\n",
              static_cast<int>(rates.size()), nominal, mvapich_rate);
  const int peak = *std::max_element(bins.begin(), bins.end());
  for (int k = 0; k < nbins; ++k) {
    const double centre = lo + (k + 0.5) * (hi - lo) / nbins;
    const int stars = bins[static_cast<std::size_t>(k)] * 60 / peak;
    std::printf("%7.2f TF | %4d %s\n", centre,
                bins[static_cast<std::size_t>(k)],
                std::string(static_cast<std::size_t>(stars), '#').c_str());
  }

  // Shape checks: single dominant mode in the upper half, tail below.
  int peak_bin = 0;
  for (int k = 0; k < nbins; ++k)
    if (bins[static_cast<std::size_t>(k)] >
        bins[static_cast<std::size_t>(peak_bin)])
      peak_bin = k;
  double below = 0, total = 0;
  for (int k = 0; k < nbins; ++k) {
    total += bins[static_cast<std::size_t>(k)];
    if (k < peak_bin) below += bins[static_cast<std::size_t>(k)];
  }
  const bool ok = peak_bin > nbins / 2 && below / total > 0.05;
  std::printf("\npeak in the upper half with a low-performance tail: %s\n",
              ok ? "YES" : "NO");
  return ok ? 0 : 1;
}
