// Ablation: kernel autotuning (S IV).  Runs the real dslash with the
// tuned launch grain versus fixed untuned grains and reports the spread —
// the gap the run-time autotuner closes automatically on every new
// volume/precision/machine.

#include <chrono>
#include <cstdio>

#include "autotune/dslash_tunable.hpp"
#include "lattice/flops.hpp"
#include "lattice/gauge.hpp"

namespace {

double time_dslash(const femto::GaugeField<double>& u,
                   const femto::SpinorField<double>& in,
                   femto::SpinorField<double>& out, std::size_t grain,
                   int reps) {
  femto::DslashTuning t;
  t.grain = grain;
  // Warm up.
  femto::dslash<double>(femto::view(out), u, femto::cview(in), 0, false, t);
  double best = 1e30;
  for (int r = 0; r < reps; ++r) {
    const auto t0 = std::chrono::steady_clock::now();
    femto::dslash<double>(femto::view(out), u, femto::cview(in), 0, false,
                          t);
    best = std::min(best, std::chrono::duration<double>(
                              std::chrono::steady_clock::now() - t0)
                              .count());
  }
  return best;
}

}  // namespace

int main() {
  using namespace femto;
  auto geom = std::make_shared<Geometry>(8, 8, 8, 16);
  auto u = std::make_shared<GaugeField<double>>(geom);
  weak_gauge(*u, 1001, 0.2);
  const int l5 = 8;
  SpinorField<double> in(geom, l5, Subset::Odd), out(geom, l5, Subset::Even);
  in.gaussian(1002);

  std::printf("== Ablation: dslash launch-grain autotuning, 8^3x16 L5=8 "
              "==\n\n");

  tune::Autotuner::global().clear();
  const auto t0 = std::chrono::steady_clock::now();
  const auto tuned = tune::tuned_dslash_grain<double>(u, l5, 0);
  const double tune_cost =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();

  const double t_tuned = time_dslash(*u, in, out, tuned.grain, 5);
  const std::int64_t site_flops =
      flops::kWilsonDslashPerSite * geom->half_volume() * l5;

  std::printf("%12s %14s %12s\n", "grain", "time (ms)", "GFLOP/s");
  double worst = 0;
  for (std::size_t grain : {std::size_t{16}, std::size_t{256},
                            std::size_t{4096},
                            static_cast<std::size_t>(geom->half_volume())}) {
    const double t = time_dslash(*u, in, out, grain, 5);
    worst = std::max(worst, t);
    std::printf("%12zu %14.4f %12.2f\n", grain, t * 1e3,
                static_cast<double>(site_flops) / t / 1e9);
  }
  std::printf("%12s %14.4f %12.2f   <- autotuned (grain %zu)\n", "tuned",
              t_tuned * 1e3, static_cast<double>(site_flops) / t_tuned / 1e9,
              tuned.grain);

  std::printf("\none-time tuning cost: %.1f ms; worst fixed grain is "
              "%.2fx slower than the tuned kernel\n",
              tune_cost * 1e3, worst / t_tuned);
  std::printf("second lookup is a cache hit: %s\n",
              tune::Autotuner::global().cache_hits() >= 0 ? "yes" : "no");
  // The tuned choice must be within measurement noise of the best fixed
  // grain we tried (it searched the same space).
  return t_tuned <= worst * 1.05 ? 0 : 1;
}
