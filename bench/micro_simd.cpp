// Microbenchmark: the femtosimd hot paths (DESIGN.md §11) -- scalar vs
// vectorized dslash kernel variants, W=1 vs native-width fused BLAS, and
// the half-precision quantise round-trips -- reporting GFLOP/s, effective
// GB/s (from the byte counter) and the speedup per width.
//
// Timing is min-of-reps wall clock over a short inner loop, the same
// convention as the autotuner: the minimum is the least-noisy estimator
// of the achievable rate on a shared machine.  Results land in
// BENCH_simd.json (repo root, like BENCH_blas.json / BENCH_obs.json) so
// scripts/bench_simd.sh can gate the vectorization claim and successive
// PRs can track the trajectory.

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "dirac/wilson.hpp"
#include "lattice/blas.hpp"
#include "lattice/flops.hpp"
#include "lattice/gauge.hpp"
#include "simd/vec.hpp"
#include "solver/half.hpp"

namespace {

using clock_type = std::chrono::steady_clock;

constexpr int kInner = 4;   // kernel calls per timed sample
constexpr int kReps = 12;   // timed samples; min is reported

// Seconds per single call, min over kReps samples of kInner calls each.
double time_best(const std::function<void()>& fn) {
  fn();
  fn();  // warm: faults the pages, spins up the pool
  double best = 1e300;
  for (int r = 0; r < kReps; ++r) {
    const auto t0 = clock_type::now();
    for (int i = 0; i < kInner; ++i) fn();
    const double s =
        std::chrono::duration<double>(clock_type::now() - t0).count() / kInner;
    best = std::min(best, s);
  }
  return best;
}

// Bytes the traffic model charges for one call of fn.
std::int64_t charged_bytes(const std::function<void()>& fn) {
  femto::flops::reset();
  fn();
  return femto::flops::bytes();
}

// ---------------------------------------------------------------------------
// Dslash: one row per kernel variant, per precision.
// ---------------------------------------------------------------------------

struct VariantRow {
  std::string name;
  double seconds = 0.0, gflops = 0.0, gbps = 0.0, speedup = 1.0;
};

struct DslashStudy {
  std::string precision;
  std::vector<VariantRow> rows;
  double best_speedup = 1.0;
};

template <typename T>
DslashStudy dslash_study(const std::shared_ptr<const femto::Geometry>& geom,
                         int l5) {
  femto::GaugeField<double> ud(geom);
  femto::weak_gauge(ud, 1, 0.2);
  const auto u = ud.convert<T>();
  femto::SpinorField<T> in(geom, l5, femto::Subset::Odd),
      out(geom, l5, femto::Subset::Even);
  in.gaussian(2);

  std::vector<femto::DslashVariant> variants = {femto::DslashVariant::kScalar};
  if constexpr (femto::simd::kWidth<T> > 1) {
    variants.push_back(femto::DslashVariant::kVector);
    variants.push_back(femto::DslashVariant::kVectorBlocked);
  }

  DslashStudy study;
  study.precision = sizeof(T) == 4 ? "float" : "double";
  const double site_flops =
      1320.0 * static_cast<double>(geom->half_volume()) * l5;
  double scalar_seconds = 0.0;
  for (const auto v : variants) {
    femto::DslashTuning tune;
    tune.variant = v;
    const auto call = [&] {
      femto::dslash<T>(femto::view(out), u, femto::cview(in), 0, false, tune);
    };
    VariantRow row;
    row.name = femto::to_string(v);
    row.seconds = time_best(call);
    row.gflops = site_flops / row.seconds / 1e9;
    row.gbps =
        static_cast<double>(charged_bytes(call)) / row.seconds / 1e9;
    if (v == femto::DslashVariant::kScalar) scalar_seconds = row.seconds;
    row.speedup = scalar_seconds / row.seconds;
    study.best_speedup = std::max(study.best_speedup, row.speedup);
    study.rows.push_back(row);
  }
  return study;
}

// ---------------------------------------------------------------------------
// Fused BLAS and half-precision round-trips: W=1 vs the native width.
// ---------------------------------------------------------------------------

struct WidthRow {
  std::string kernel, precision;
  int width = 1;
  double scalar_seconds = 0.0, vector_seconds = 0.0;
  double scalar_gbps = 0.0, vector_gbps = 0.0, speedup = 1.0;
};

WidthRow width_row(const std::string& kernel, const std::string& precision,
                   int width, const std::function<void()>& scalar,
                   const std::function<void()>& vec) {
  WidthRow row;
  row.kernel = kernel;
  row.precision = precision;
  row.width = width;
  const double bytes = static_cast<double>(charged_bytes(scalar));
  row.scalar_seconds = time_best(scalar);
  row.vector_seconds = time_best(vec);
  row.scalar_gbps = bytes / row.scalar_seconds / 1e9;
  row.vector_gbps = bytes / row.vector_seconds / 1e9;
  row.speedup = row.scalar_seconds / row.vector_seconds;
  return row;
}

template <typename T>
std::vector<WidthRow> blas_study(
    const std::shared_ptr<const femto::Geometry>& geom, int l5) {
  constexpr int W = femto::simd::kWidth<T>;
  const std::string prec = sizeof(T) == 4 ? "float" : "double";
  const auto sub = femto::Subset::Odd;
  femto::SpinorField<T> p(geom, l5, sub), ap(geom, l5, sub), x(geom, l5, sub),
      r(geom, l5, sub);
  p.gaussian(21);
  ap.gaussian(22);
  x.gaussian(23);
  r.gaussian(24);

  std::vector<WidthRow> rows;
  rows.push_back(width_row(
      "axpy", prec, W,
      [&] { femto::blas::axpy<T, 1>(1.00001, p, x); },
      [&] { femto::blas::axpy<T, W>(1.00001, p, x); }));
  rows.push_back(width_row(
      "norm2", prec, W, [&] { femto::blas::norm2<T, 1>(r); },
      [&] { femto::blas::norm2<T, W>(r); }));
  rows.push_back(width_row(
      "axpy_norm2", prec, W,
      [&] { femto::blas::axpy_norm2<T, 1>(-1e-6, ap, r); },
      [&] { femto::blas::axpy_norm2<T, W>(-1e-6, ap, r); }));
  rows.push_back(width_row(
      "triple_cg_update", prec, W,
      [&] { femto::blas::triple_cg_update<T, 1>(1e-6, p, ap, x, r); },
      [&] { femto::blas::triple_cg_update<T, W>(1e-6, p, ap, x, r); }));
  return rows;
}

std::vector<WidthRow> half_study(
    const std::shared_ptr<const femto::Geometry>& geom, int l5) {
  constexpr int W = femto::simd::kWidth<float>;
  const auto sub = femto::Subset::Odd;
  femto::SpinorField<float> x(geom, l5, sub), y(geom, l5, sub);
  x.gaussian(41);
  y.gaussian(42);
  femto::HalfSpinorField h(geom, l5, sub);

  std::vector<WidthRow> rows;
  rows.push_back(width_row(
      "half_roundtrip_norm2", "float", W,
      [&] { h.roundtrip_norm2<1>(y); }, [&] { h.roundtrip_norm2<W>(y); }));
  rows.push_back(width_row(
      "half_axpy_roundtrip", "float", W,
      [&] { h.axpy_roundtrip<1>(1e-6, x, y); },
      [&] { h.axpy_roundtrip<W>(1e-6, x, y); }));
  return rows;
}

// ---------------------------------------------------------------------------
// Report.
// ---------------------------------------------------------------------------

void print_width_rows(const char* title, const std::vector<WidthRow>& rows) {
  std::printf("%s (W=1 vs native):\n", title);
  for (const auto& r : rows)
    std::printf(
        "  %-22s %-6s W=%d  %8.2f -> %8.2f GB/s  (x%.2f)\n",
        r.kernel.c_str(), r.precision.c_str(), r.width, r.scalar_gbps,
        r.vector_gbps, r.speedup);
}

void write_json(const femto::Geometry& d, int l5,
                const std::vector<DslashStudy>& dslash,
                const std::vector<WidthRow>& blas,
                const std::vector<WidthRow>& half) {
  std::FILE* f = std::fopen("BENCH_simd.json", "w");
  if (!f) return;
  std::fprintf(f,
               "{\n  \"isa\": \"%s\",\n  \"width_float\": %d,\n"
               "  \"width_double\": %d,\n"
               "  \"volume\": [%d, %d, %d, %d],\n  \"l5\": %d,\n",
               femto::simd::kIsaName, femto::simd::kWidth<float>,
               femto::simd::kWidth<double>, d.extent(0), d.extent(1),
               d.extent(2), d.extent(3), l5);
  std::fprintf(f, "  \"dslash\": [\n");
  for (std::size_t i = 0; i < dslash.size(); ++i) {
    const auto& s = dslash[i];
    std::fprintf(f,
                 "    {\"precision\": \"%s\", \"best_speedup\": %.3f,\n"
                 "     \"variants\": [\n",
                 s.precision.c_str(), s.best_speedup);
    for (std::size_t j = 0; j < s.rows.size(); ++j) {
      const auto& r = s.rows[j];
      std::fprintf(f,
                   "       {\"name\": \"%s\", \"seconds\": %.3e, "
                   "\"gflops\": %.3f, \"gbps\": %.3f, \"speedup\": %.3f}%s\n",
                   r.name.c_str(), r.seconds, r.gflops, r.gbps, r.speedup,
                   j + 1 < s.rows.size() ? "," : "");
    }
    std::fprintf(f, "     ]}%s\n", i + 1 < dslash.size() ? "," : "");
  }
  const auto dump_rows = [f](const char* key,
                             const std::vector<WidthRow>& rows, bool last) {
    std::fprintf(f, "  ],\n  \"%s\": [\n", key);
    for (std::size_t i = 0; i < rows.size(); ++i) {
      const auto& r = rows[i];
      std::fprintf(f,
                   "    {\"kernel\": \"%s\", \"precision\": \"%s\", "
                   "\"width\": %d, \"scalar_gbps\": %.3f, "
                   "\"vector_gbps\": %.3f, \"speedup\": %.3f}%s\n",
                   r.kernel.c_str(), r.precision.c_str(), r.width,
                   r.scalar_gbps, r.vector_gbps, r.speedup,
                   i + 1 < rows.size() ? "," : "");
    }
    if (last) std::fprintf(f, "  ]\n}\n");
  };
  dump_rows("blas", blas, false);
  dump_rows("half", half, true);
  std::fclose(f);
}

}  // namespace

int main() {
  // Cache-resident working set: the SIMD claim is about the ALU/decode
  // path, so keep the fields out of main memory (the bandwidth wall is
  // micro_blas's story).  4^3 x 8, l5=8 -> ~200 KB per float field.
  auto geom = std::make_shared<femto::Geometry>(4, 4, 4, 8);
  const int l5 = 16;

  std::printf("femtosimd microbenchmark: isa=%s, float W=%d, double W=%d\n",
              femto::simd::kIsaName, femto::simd::kWidth<float>,
              femto::simd::kWidth<double>);
  std::printf("volume 4x4x4x8, l5=%d, odd subset\n\n", l5);

  std::vector<DslashStudy> dslash;
  dslash.push_back(dslash_study<float>(geom, l5));
  dslash.push_back(dslash_study<double>(geom, l5));
  std::printf("dslash kernel variants:\n");
  for (const auto& s : dslash)
    for (const auto& r : s.rows)
      std::printf("  %-6s %-15s %8.3e s  %7.2f GFLOP/s  %7.2f GB/s  (x%.2f)\n",
                  s.precision.c_str(), r.name.c_str(), r.seconds, r.gflops,
                  r.gbps, r.speedup);
  std::printf("\n");

  std::vector<WidthRow> blas;
  for (auto& r : blas_study<float>(geom, l5)) blas.push_back(r);
  for (auto& r : blas_study<double>(geom, l5)) blas.push_back(r);
  print_width_rows("fused BLAS", blas);
  std::printf("\n");

  const auto half = half_study(geom, l5);
  print_width_rows("half-precision quantise", half);

  write_json(*geom, l5, dslash, blas, half);
  std::printf("\nwrote BENCH_simd.json\n");
  return 0;
}
