// Microbenchmark: the Wilson dslash stencil (the paper's dominant kernel)
// across volumes, L5, and precisions, reporting GFLOP/s and effective
// bandwidth via the conventional 1320 flop/site count.

#include <benchmark/benchmark.h>

#include "dirac/wilson.hpp"
#include "lattice/gauge.hpp"

namespace {

template <typename T>
void bm_dslash(benchmark::State& state) {
  const int l = static_cast<int>(state.range(0));
  const int l5 = static_cast<int>(state.range(1));
  auto geom = std::make_shared<femto::Geometry>(l, l, l, 2 * l);
  femto::GaugeField<double> ud(geom);
  femto::weak_gauge(ud, 1, 0.2);
  auto u = std::make_shared<femto::GaugeField<T>>(ud.convert<T>());
  femto::SpinorField<T> in(geom, l5, femto::Subset::Odd),
      out(geom, l5, femto::Subset::Even);
  in.gaussian(2);

  for (auto _ : state) {
    femto::dslash<T>(femto::view(out), *u, femto::cview(in), 0, false, {});
    benchmark::DoNotOptimize(out.data());
  }
  const double site_flops = 1320.0 * geom->half_volume() * l5;
  state.counters["GFLOP/s"] = benchmark::Counter(
      site_flops * state.iterations() / 1e9, benchmark::Counter::kIsRate);
  // Arithmetic intensity ~1.9 in the paper's accounting.
  state.counters["eff_GB/s"] = benchmark::Counter(
      site_flops / 1.9 * state.iterations() / 1e9,
      benchmark::Counter::kIsRate);
}

}  // namespace

BENCHMARK(bm_dslash<double>)
    ->Args({4, 8})
    ->Args({8, 8})
    ->Args({8, 16})
    ->Unit(benchmark::kMillisecond);
BENCHMARK(bm_dslash<float>)
    ->Args({4, 8})
    ->Args({8, 8})
    ->Args({8, 16})
    ->Unit(benchmark::kMillisecond);
