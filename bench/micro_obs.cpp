// Femtoscope tracer overhead on the real solver workload: runs the CG
// per-iteration fused BLAS sequence (the kernels that carry
// FEMTO_TRACE_SCOPE in production) with tracing off and on, and reports
// the enabled overhead plus the disabled per-scope cost measured on a
// synthetic hot loop.  Emits BENCH_obs.json so future PRs can track the
// tracer's cost trajectory against the <=2% enabled / ~0% disabled
// budget.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdint>
#include <memory>
#include <string>

#include "lattice/blas.hpp"
#include "lattice/spinor.hpp"
#include "obs/trace.hpp"

namespace {

using femto::SpinorField;
using femto::Subset;

constexpr int kIters = 40;     // fused sequences per timed rep
constexpr int kReps = 5;       // min over reps (autotuner convention)
constexpr int kScopesPerIter = 3;

double now_s() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// One CG iteration's worth of fused BLAS traffic; every call enters one
// FEMTO_TRACE_SCOPE.
double fused_sequence(SpinorField<double>& x, SpinorField<double>& r,
                      SpinorField<double>& p) {
  double acc = 0.0;
  acc += femto::blas::axpy_norm2(1.0000001, p, r);
  acc += femto::blas::xpay_redot(r, 0.9999, p);
  acc += femto::blas::axpby_norm2(0.5, r, 0.5000001, x);
  return acc;
}

double time_workload(SpinorField<double>& x, SpinorField<double>& r,
                     SpinorField<double>& p, double* sink) {
  double best = 1e300;
  for (int rep = 0; rep < kReps; ++rep) {
    const double t0 = now_s();
    for (int i = 0; i < kIters; ++i) *sink += fused_sequence(x, r, p);
    best = std::min(best, now_s() - t0);
  }
  return best;
}

inline std::uint64_t step(std::uint64_t s) {
  s ^= s << 13;
  s ^= s >> 7;
  s ^= s << 17;
  return s;
}

// Disabled per-scope cost: scoped minus bare xorshift loop, tracing off.
double disabled_ns_per_scope(std::uint64_t* sink) {
  constexpr std::size_t kN = 4'000'000;
  double bare = 1e300, scoped = 1e300;
  for (int rep = 0; rep < kReps; ++rep) {
    std::uint64_t s = 0x9E3779B97F4A7C15ull;
    double t0 = now_s();
    for (std::size_t i = 0; i < kN; ++i) s = step(s);
    bare = std::min(bare, now_s() - t0);
    t0 = now_s();
    for (std::size_t i = 0; i < kN; ++i) {
      FEMTO_TRACE_SCOPE("bench", "disabled_scope");
      s = step(s);
    }
    scoped = std::min(scoped, now_s() - t0);
    *sink += s;
  }
  return (scoped - bare) / static_cast<double>(kN) * 1e9;
}

}  // namespace

int main() {
  const auto geom = std::make_shared<femto::Geometry>(8, 8, 8, 16);
  const int l5 = 8;
  SpinorField<double> x(geom, l5, Subset::Odd), r(geom, l5, Subset::Odd),
      p(geom, l5, Subset::Odd);
  x.gaussian(1);
  r.gaussian(2);
  p.gaussian(3);
  double sink = 0.0;

  // Warm the pool and caches before any timing.
  femto::obs::set_trace_enabled(false);
  sink += fused_sequence(x, r, p);

  std::uint64_t usink = 0;
  const double off_ns_scope = disabled_ns_per_scope(&usink);
  const double off_s = time_workload(x, r, p, &sink);

  femto::obs::set_trace_enabled(true);
  femto::obs::trace_clear();
  const double on_s = time_workload(x, r, p, &sink);
  const auto snap = femto::obs::trace_snapshot();
  femto::obs::set_trace_enabled(false);

  const double overhead_pct = (on_s / off_s - 1.0) * 100.0;
  const double on_ns_scope = (on_s - off_s) /
                             static_cast<double>(kIters * kScopesPerIter) *
                             1e9;
  const double iter_s = off_s / kIters;
  const double off_pct = off_ns_scope * 1e-9 * kScopesPerIter / iter_s *
                         100.0;

  std::printf("femtoscope tracer overhead (fused BLAS sequence, 8x8x8x16 "
              "l5=%d, %d iters, min of %d)\n",
              l5, kIters, kReps);
  std::printf("  tracing off : %10.6f s\n", off_s);
  std::printf("  tracing on  : %10.6f s  (+%.3f%%, %.1f ns/scope)\n", on_s,
              overhead_pct, on_ns_scope);
  std::printf("  disabled scope cost: %.2f ns (%.4f%% of workload)\n",
              off_ns_scope, off_pct);
  std::printf("  spans recorded: %zu across %d threads (%llu dropped)\n",
              snap.events.size(), snap.threads,
              static_cast<unsigned long long>(snap.dropped));
  if (sink == 0.0 && usink == 0) std::printf("(unreachable)\n");

  std::FILE* f = std::fopen("BENCH_obs.json", "w");
  if (f != nullptr) {
    std::fprintf(
        f,
        "{\n"
        "  \"bench\": \"obs_tracer_overhead\",\n"
        "  \"workload\": \"fused_blas_sequence_8x8x8x16_l5_%d\",\n"
        "  \"iters\": %d,\n"
        "  \"reps\": %d,\n"
        "  \"scopes_per_iter\": %d,\n"
        "  \"off_seconds\": %.9f,\n"
        "  \"on_seconds\": %.9f,\n"
        "  \"overhead_enabled_pct\": %.4f,\n"
        "  \"enabled_ns_per_scope\": %.2f,\n"
        "  \"disabled_ns_per_scope\": %.3f,\n"
        "  \"overhead_disabled_pct\": %.5f,\n"
        "  \"events\": %zu,\n"
        "  \"dropped\": %llu,\n"
        "  \"threads\": %d\n"
        "}\n",
        l5, kIters, kReps, kScopesPerIter, off_s, on_s, overhead_pct,
        on_ns_scope, off_ns_scope, off_pct, snap.events.size(),
        static_cast<unsigned long long>(snap.dropped), snap.threads);
    std::fclose(f);
    std::printf("wrote BENCH_obs.json\n");
  }
  return 0;
}
