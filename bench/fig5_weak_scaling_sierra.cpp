// Fig. 5: weak scaling on Sierra — sustained PFLOPS as the number of
// propagator calculations grows, in groups of 4 nodes (16 GPUs) on a
// 48^3 x 64 lattice, comparing three deployment modes:
//
//   * SpectrumMPI, individual scheduler jobs   (up to 400 jobs / 6400 GPUs)
//   * openMPI + mpi_jm, blocks of 100 nodes    (up to 7 blocks / 2800 GPUs)
//   * MVAPICH2 + mpi_jm, one job, all nodes    (to ~13500+ GPUs)
//
// Per-group solver rate comes from the machine model at 16 GPUs; the
// scheduling efficiency of each mode comes from running the ACTUAL job
// managers on the simulated cluster; the MVAPICH2 series carries the
// untuned-DPM rate factor the paper reports (15% vs 20% of peak).
//
// Shape criteria: all three series are near-linear (weak scaling is
// nearly perfect); MVAPICH2:mpi_jm extends furthest and reaches ~20
// PFLOPS at ~13500 GPUs with the 0.75 rate factor.

#include <cstdio>
#include <vector>

#include "jobmgr/schedulers.hpp"
#include "jobmgr/workload.hpp"
#include "machine/perf_model.hpp"

namespace {

/// Steady-state scheduling efficiency of mpi_jm for 4-node tasks, from a
/// discrete-event run on a moderate cluster (efficiency is scale-free for
/// uniform groups).
double mpi_jm_efficiency(double rate_factor) {
  femto::cluster::ClusterSpec spec;
  spec.n_nodes = 128;
  spec.nodes_per_block = 4;
  spec.node.gpus = 4;
  spec.perf_jitter_sigma = 0.03;
  spec.seed = 55;
  femto::cluster::Cluster cl(spec);
  femto::jm::WorkloadOptions w;
  w.n_propagators = 256;
  w.nodes_per_solve = 4;
  w.with_contractions = true;
  w.seed = 56;
  femto::jm::MpiJmOptions opts;
  opts.lump_nodes = 32;
  opts.mpi_rate_factor = rate_factor;
  const auto rep =
      femto::jm::run_mpi_jm(cl, femto::jm::make_campaign(w), opts);
  return rep.utilization();
}

double spectrum_individual_efficiency() {
  // Individual jobs have no manager losses but each pays scheduler wait;
  // model as the naive per-job launch amortised over the solve.
  return 600.0 / (600.0 + 25.0);
}

}  // namespace

int main() {
  using namespace femto::machine;
  LatticeProblem prob;
  prob.extents = {48, 48, 48, 64};
  prob.l5 = 12;
  SolverPerfModel model(sierra(), prob);
  const double per_group_tflops = model.strong_scaling_point(16).tflops;

  const double eff_spectrum = spectrum_individual_efficiency();
  const double eff_openmpi = mpi_jm_efficiency(1.0);
  const double eff_mvapich = mpi_jm_efficiency(1.0);
  const double mvapich_rate = 0.75;  // untuned DPM build (paper S VII)

  std::printf("== Fig. 5: Sierra weak scaling, 4-node (16 GPU) groups, "
              "48^3 x 64 ==\n\n");
  std::printf("per-group solver rate: %.2f TFLOPS (16 V100)\n",
              per_group_tflops);
  std::printf("scheduling efficiencies: SpectrumMPI %.3f, openMPI:mpi_jm "
              "%.3f, MVAPICH2:mpi_jm %.3f x rate %.2f\n\n",
              eff_spectrum, eff_openmpi, eff_mvapich, mvapich_rate);

  std::printf("%8s %14s %16s %18s\n", "GPUs", "SpectrumMPI",
              "openMPI:mpi_jm", "MVAPICH2:mpi_jm");
  const std::vector<int> group_counts{25,  50,  100, 175, 250, 400,
                                      550, 700, 850};
  double mvapich_top = 0.0;
  for (int groups : group_counts) {
    const int gpus = groups * 16;
    const double base = per_group_tflops * groups / 1000.0;  // PFLOPS
    // Series extents follow the paper's deployments.
    std::printf("%8d", gpus);
    if (groups <= 400)
      std::printf(" %14.3f", base * eff_spectrum);
    else
      std::printf(" %14s", "-");
    if (gpus <= 2800)
      std::printf(" %16.3f", base * eff_openmpi);
    else
      std::printf(" %16s", "-");
    const double mv = base * eff_mvapich * mvapich_rate;
    std::printf(" %18.3f\n", mv);
    mvapich_top = mv;
  }

  std::printf("\nMVAPICH2:mpi_jm at %d GPUs: %.1f PFLOPS "
              "(paper: ~20 PFLOPS at ~13500 GPUs, 15%% of peak)\n",
              group_counts.back() * 16, mvapich_top);
  const bool ok = mvapich_top > 10.0 && mvapich_top < 40.0 &&
                  eff_openmpi > 0.7;
  std::printf("shape reproduced: %s\n", ok ? "YES" : "NO");
  return ok ? 0 : 1;
}
