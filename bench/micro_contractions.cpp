// Microbenchmark: the nucleon tensor contraction (the CPU-only ~3% stage
// that mpi_jm co-schedules for free).

#include <benchmark/benchmark.h>

#include "core/contractions.hpp"
#include "lattice/gauge.hpp"

namespace {

struct Setup {
  std::shared_ptr<const femto::Geometry> geom;
  std::unique_ptr<femto::core::Propagator> up;
  Setup() {
    geom = std::make_shared<femto::Geometry>(4, 4, 4, 8);
    auto u = std::make_shared<femto::GaugeField<double>>(geom);
    femto::weak_gauge(*u, 21, 0.2);
    femto::SolverParams sp;
    sp.tol = 1e-7;
    femto::DwfSolver solver(u, {4, -1.8, 1.5, 0.5, 0.3}, sp);
    up = std::make_unique<femto::core::Propagator>(
        femto::core::compute_point_propagator(solver, {0, 0, 0, 0}));
  }
  static Setup& get() {
    static Setup s;
    return s;
  }
};

void bm_two_point(benchmark::State& state) {
  auto& s = Setup::get();
  const auto proj = femto::parity_projector();
  for (auto _ : state) {
    auto c = femto::core::nucleon_two_point(*s.up, *s.up, proj, 0);
    benchmark::DoNotOptimize(c.data());
  }
  state.counters["sites/s"] = benchmark::Counter(
      static_cast<double>(s.geom->volume()) * state.iterations(),
      benchmark::Counter::kIsRate);
}

void bm_fh_three_point(benchmark::State& state) {
  auto& s = Setup::get();
  const auto proj = femto::polarized_projector();
  for (auto _ : state) {
    auto c = femto::core::nucleon_fh_three_point(*s.up, *s.up, *s.up,
                                                 proj, 0);
    benchmark::DoNotOptimize(c.data());
  }
  state.counters["sites/s"] = benchmark::Counter(
      static_cast<double>(s.geom->volume()) * state.iterations(),
      benchmark::Counter::kIsRate);
}

}  // namespace

BENCHMARK(bm_two_point)->Unit(benchmark::kMillisecond)->Iterations(5);
BENCHMARK(bm_fh_three_point)->Unit(benchmark::kMillisecond)->Iterations(5);
