// Ablation: the Feynman-Hellmann cost advantage measured with REAL solves.
//
// "we designed a new type of propagator which yields all the temporal
// distances for the cost of one temporal distance in the traditional
// method."  Covering every insertion time traditionally costs T sequential
// solves; the FH method costs one.  This bench runs both on a real lattice
// and verifies the identity sum_tau fixed(tau) == fh to solver precision.

#include <cmath>
#include <cstdio>

#include "core/propagator.hpp"
#include "lattice/blas.hpp"
#include "lattice/gauge.hpp"

int main() {
  using namespace femto;
  auto g = std::make_shared<Geometry>(4, 4, 4, 8);
  auto u = std::make_shared<GaugeField<double>>(g);
  weak_gauge(*u, 2020, 0.2);
  SolverParams sp;
  sp.tol = 1e-9;
  DwfSolver solver(u, MobiusParams{4, -1.8, 1.5, 0.5, 0.3}, sp);

  std::printf("== Ablation: FH vs traditional insertion coverage "
              "(4^3x8, L5=4, real solves) ==\n\n");

  const auto base = core::compute_point_propagator(solver, {0, 0, 0, 0});

  core::PropagatorSolveStats fh_stats;
  const auto fh = core::compute_fh_propagator(solver, base, &fh_stats);
  std::printf("FH method:            1 sequential solve set, %6d CG "
              "iterations, %.2f s\n",
              fh_stats.total_iterations, fh_stats.total_seconds);

  const int nt = g->extent(3);
  int traditional_iters = 0;
  double traditional_seconds = 0;
  core::Propagator sum(g);
  for (int tau = 0; tau < nt; ++tau) {
    core::PropagatorSolveStats st;
    const auto fixed =
        core::compute_fixed_insertion_propagator(solver, base, tau, &st);
    traditional_iters += st.total_iterations;
    traditional_seconds += st.total_seconds;
    for (int s = 0; s < kNs; ++s)
      for (int c = 0; c < kNc; ++c)
        blas::axpy(1.0, fixed.column(s, c), sum.column(s, c));
  }
  std::printf("traditional coverage: %d sequential solve sets, %6d CG "
              "iterations, %.2f s\n",
              nt, traditional_iters, traditional_seconds);

  double num = 0, den = 0;
  for (int s = 0; s < kNs; ++s)
    for (int c = 0; c < kNc; ++c) {
      SpinorField<double> d = sum.column(s, c);
      blas::axpy(-1.0, fh.column(s, c), d);
      num += blas::norm2(d);
      den += blas::norm2(fh.column(s, c));
    }
  const double rel = std::sqrt(num / den);
  const double speedup = static_cast<double>(traditional_iters) /
                         fh_stats.total_iterations;

  std::printf("\nidentity |sum_tau fixed(tau) - fh| / |fh| = %.2e\n", rel);
  std::printf("cost ratio (traditional / FH iterations): %.1fx "
              "(T = %d timeslices -> the advantage grows linearly with "
              "the time extent; production lattices have T = 64-144)\n",
              speedup, nt);
  const bool ok = rel < 1e-6 && speedup > 0.5 * nt;
  std::printf("claim reproduced: %s\n", ok ? "YES" : "NO");
  return ok ? 0 : 1;
}
