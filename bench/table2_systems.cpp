// Table II: the systems used in the study, plus the derived per-GPU
// quantities the performance model is calibrated against.

#include <cstdio>

#include "machine/specs.hpp"

int main() {
  std::printf("== Table II: comparison of the systems ==\n\n%s\n",
              femto::machine::format_table2().c_str());

  std::printf("derived cache amplification (effective / spec bandwidth "
              "per GPU):\n");
  for (const auto& m : femto::machine::all_machines())
    std::printf("  %-8s %5.0f / %5.0f GB/s = %.2fx\n", m.name.c_str(),
                m.eff_bw_per_gpu_gbs, m.spec_bw_per_gpu_gbs(),
                m.bw_amplification());
  std::printf("\npaper: \"a steady increase to both the L1 and L2 cache "
              "available per thread ... amplifying the effective "
              "bandwidth\" - the amplification is monotone across "
              "generations.\n");
  return 0;
}
