// The sustained-performance accounting of S VI-VII:
//   * application split 96.5% propagators / 3% contractions / 0.5% I/O,
//   * co-scheduled contractions cost nothing, I/O excluded,
//   * "a sustained performance of 20% on the minimal number of nodes",
//   * "15%" at scale with the untuned MVAPICH2 build, 20% anticipated,
//   * ~20 PFLOPS peak sustained on Sierra,
//   * machine-to-machine speedups over Titan.

#include <cstdio>

#include "core/sustained.hpp"

int main() {
  using namespace femto;
  machine::LatticeProblem prob;
  prob.extents = {48, 48, 48, 64};
  prob.l5 = 12;

  std::printf("== Sustained application performance (S VI-VII) ==\n\n");

  const auto minimal = core::sustained_performance(
      machine::sierra(), prob, /*gpus=*/4, /*jm_eff=*/1.0);
  std::printf("minimal nodes (1 node / 4 GPUs): %s\n",
              minimal.description.c_str());

  // At scale: 13500 GPUs of 4-node jobs -> per-job rate times the fleet,
  // with the untuned MVAPICH2 factor.
  machine::SolverPerfModel model(machine::sierra(), prob);
  const double per_group = model.strong_scaling_point(16).tflops;
  const int groups = 844;  // ~13500 GPUs
  const double jm_eff = 0.97;
  for (double mpi_factor : {0.75, 1.0}) {
    const double pf = per_group * groups * jm_eff * mpi_factor / 1000.0;
    const double pct = model.strong_scaling_point(16).pct_peak * jm_eff *
                       mpi_factor;
    std::printf("at 13500 GPUs, MPI rate factor %.2f: %.1f PFLOPS "
                "sustained, %.1f%% of peak\n",
                mpi_factor, pf, pct);
  }
  std::printf("(paper: ~20 PFLOPS, 15%% of peak with MVAPICH2; 20%% "
              "anticipated once tuned)\n\n");

  // Contraction amortisation.
  core::ApplicationSplit separate;
  separate.contractions_coscheduled = false;
  const auto with = core::sustained_performance(machine::sierra(), prob,
                                                4, 1.0, 1.0, {});
  const auto without = core::sustained_performance(machine::sierra(), prob,
                                                   4, 1.0, 1.0, separate);
  std::printf("co-scheduling the 3%% contraction stage: %.2f%% -> %.2f%% "
              "of peak (cost amortised to zero)\n",
              without.application_pct_peak, with.application_pct_peak);

  const double sierra_x = core::machine_speedup(
      machine::titan(), machine::sierra(), prob, 16, 16);
  const double summit_x = core::machine_speedup(
      machine::titan(), machine::summit(), prob, 16, 24);
  std::printf("\nmachine-to-machine campaign speedup over Titan: Sierra "
              "%.1fx, Summit %.1fx\n(paper: ~12x and ~15x; our model "
              "underestimates Titan's real-world penalties — see "
              "EXPERIMENTS.md)\n",
              sierra_x, summit_x);

  const bool ok = minimal.application_pct_peak > 14 &&
                  minimal.application_pct_peak < 26 && summit_x > sierra_x;
  std::printf("claims reproduced: %s\n", ok ? "YES" : "NO");
  return ok ? 0 : 1;
}
