// Table I: performance attributes.  The static attributes come from the
// paper; the "measured" column is produced by actually running our
// workflow and solver so every claim is backed by this build.

#include <cstdio>

#include "core/workflow.hpp"
#include "lattice/flops.hpp"

int main() {
  using namespace femto;

  std::printf("== Table I: performance attributes ==\n\n");
  std::printf("%-28s %s\n", "Attribute", "Value");
  std::printf("%-28s %s\n", "Category of achievement", "time to solution");
  std::printf("%-28s %s\n", "method", "explicit");
  std::printf("%-28s %s\n", "reporting",
              "whole application including I/O");
  std::printf("%-28s %s\n", "precision", "mixed-precision");
  std::printf("%-28s %s\n", "system scale", "full-scale system (modelled)");
  std::printf("%-28s %s\n\n", "measurement method", "FLOP count");

  // Back the attributes with a real measured run.
  std::printf("-- verification run (4^3x8 lattice, Mobius L5=4) --\n");
  core::WorkflowOptions opts;
  opts.extents = {4, 4, 4, 8};
  opts.mobius = {4, -1.8, 1.5, 0.5, 0.3};
  opts.n_configs = 1;
  opts.thermalization = 4;
  opts.solver_tol = 1e-8;
  opts.scratch_dir = "/tmp";
  flops::reset();
  const auto rep = core::run_workflow(opts);
  const double gflop = static_cast<double>(flops::get()) / 1e9;
  std::printf("whole-application stages measured: %s\n",
              rep.summary().c_str());
  std::printf("counted flops: %.3f GFLOP in %.2f s => %.2f GFLOP/s "
              "(mixed-precision CG, explicit method, I/O included)\n",
              gflop, rep.total_seconds(), gflop / rep.total_seconds());
  std::printf("all solves converged: %s\n",
              rep.all_converged ? "yes" : "NO");
  return rep.all_converged ? 0 : 1;
}
