// Microbenchmark: batched multi-RHS dslash (DESIGN.md §12) — for each
// batch size B, the best dslash_multi configuration (kernel variant x
// grain) against B independent dslash() calls, reporting seconds per RHS,
// GFLOP/s, effective GB/s from the charged traffic model, the charged
// bytes/site amortisation curve, and the speedup vs the best B=1 path.
//
// The headline study is float at l5 = 1 (4D Wilson shape): there the
// fifth-dim-vectorized variants degenerate to scalar arithmetic with
// gather overhead, so the single-RHS kernel runs scalar while the batched
// kernel vectorises ACROSS right-hand sides (lane j = RHS j, links
// broadcast once per site) — the clean win batching buys on top of link
// amortisation.  l5 = 8 rows for both precisions complete the curve in
// the regime where single-RHS vectorization already works.
//
// Results land in BENCH_multirhs.json (repo root) so
// scripts/bench_multirhs.sh can gate the >= 1.3x at B >= 4 claim and
// successive PRs can track the trajectory.

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "dirac/wilson.hpp"
#include "lattice/flops.hpp"
#include "lattice/gauge.hpp"
#include "simd/vec.hpp"

namespace {

using clock_type = std::chrono::steady_clock;

constexpr int kReps = 8;  // timed samples; min is reported

double time_best(const std::function<void()>& fn) {
  fn();
  fn();  // warm: faults pages, spins up the pool
  double best = 1e300;
  for (int r = 0; r < kReps; ++r) {
    const auto t0 = clock_type::now();
    fn();
    const double s =
        std::chrono::duration<double>(clock_type::now() - t0).count();
    best = std::min(best, s);
  }
  return best;
}

std::int64_t charged_bytes(const std::function<void()>& fn) {
  femto::flops::reset();
  fn();
  return femto::flops::bytes();
}

struct BatchRow {
  std::size_t b = 1;
  std::string variant;
  std::size_t grain = 0;
  double seconds_per_rhs = 0.0;
  double gflops = 0.0;
  double gbps = 0.0;
  double bytes_per_site = 0.0;  ///< charged traffic / (volh * l5 * B)
  double speedup = 1.0;         ///< vs the best B = 1 configuration
};

struct Study {
  std::string precision;
  int l5 = 1;
  std::vector<BatchRow> rows;
};

template <typename T>
Study run_study(const std::shared_ptr<const femto::Geometry>& geom, int l5,
                const std::vector<std::size_t>& batches) {
  femto::GaugeField<double> ud(geom);
  femto::weak_gauge(ud, 1, 0.2);
  const auto u = ud.convert<T>();

  const std::size_t bmax =
      *std::max_element(batches.begin(), batches.end());
  std::vector<femto::SpinorField<T>> in, out;
  for (std::size_t r = 0; r < bmax; ++r) {
    in.emplace_back(geom, l5, femto::Subset::Odd);
    out.emplace_back(geom, l5, femto::Subset::Even);
    in.back().gaussian(2 + static_cast<std::uint64_t>(r));
  }

  std::vector<femto::DslashVariant> variants = {
      femto::DslashVariant::kScalar};
  if constexpr (femto::simd::kWidth<T> > 1) {
    variants.push_back(femto::DslashVariant::kVector);
    variants.push_back(femto::DslashVariant::kVectorBlocked);
  }
  const std::int64_t volh = geom->half_volume();
  const std::vector<std::size_t> grains = {
      256, static_cast<std::size_t>(volh)};

  Study study;
  study.precision = sizeof(T) == 4 ? "float" : "double";
  study.l5 = l5;

  double best_b1_per_rhs = 0.0;
  for (const std::size_t b : batches) {
    BatchRow best;
    best.seconds_per_rhs = 1e300;
    for (const auto v : variants) {
      for (const std::size_t grain : grains) {
        femto::DslashTuning tune;
        tune.variant = v;
        tune.grain = grain;
        const auto call = [&] {
          std::vector<femto::SpinorView<T>> outs;
          std::vector<femto::SpinorView<const T>> ins;
          for (std::size_t r = 0; r < b; ++r) {
            outs.push_back(femto::view(out[r]));
            ins.push_back(femto::cview(in[r]));
          }
          femto::dslash_multi<T>(outs, u, ins, 0, false, tune);
        };
        const double sec = time_best(call) / static_cast<double>(b);
        if (sec < best.seconds_per_rhs) {
          best.seconds_per_rhs = sec;
          best.variant = femto::to_string(v);
          best.grain = grain;
          const double bytes = static_cast<double>(charged_bytes(call));
          best.gbps = bytes / (sec * static_cast<double>(b)) / 1e9;
          best.bytes_per_site =
              bytes / static_cast<double>(volh * l5 *
                                          static_cast<std::int64_t>(b));
        }
      }
    }
    best.b = b;
    best.gflops =
        1320.0 * static_cast<double>(volh) * l5 / best.seconds_per_rhs / 1e9;
    if (b == 1) best_b1_per_rhs = best.seconds_per_rhs;
    best.speedup = best_b1_per_rhs > 0.0
                       ? best_b1_per_rhs / best.seconds_per_rhs
                       : 1.0;
    study.rows.push_back(best);
  }
  return study;
}

void print_study(const Study& s) {
  std::printf("dslash_multi %s l5=%d (best variant/grain per B):\n",
              s.precision.c_str(), s.l5);
  for (const auto& r : s.rows)
    std::printf(
        "  B=%-3zu %-15s grain=%-6zu %9.3e s/RHS  %7.2f GFLOP/s  "
        "%7.2f GB/s  %7.1f B/site  x%.2f\n",
        r.b, r.variant.c_str(), r.grain, r.seconds_per_rhs, r.gflops,
        r.gbps, r.bytes_per_site, r.speedup);
}

void write_json(const femto::Geometry& d,
                const std::vector<Study>& studies) {
  std::FILE* f = std::fopen("BENCH_multirhs.json", "w");
  if (!f) return;
  std::fprintf(f,
               "{\n  \"isa\": \"%s\",\n  \"width_float\": %d,\n"
               "  \"width_double\": %d,\n"
               "  \"volume\": [%d, %d, %d, %d],\n",
               femto::simd::kIsaName, femto::simd::kWidth<float>,
               femto::simd::kWidth<double>, d.extent(0), d.extent(1),
               d.extent(2), d.extent(3));
  std::fprintf(f, "  \"studies\": [\n");
  for (std::size_t i = 0; i < studies.size(); ++i) {
    const auto& s = studies[i];
    std::fprintf(f,
                 "    {\"precision\": \"%s\", \"l5\": %d, \"rows\": [\n",
                 s.precision.c_str(), s.l5);
    for (std::size_t j = 0; j < s.rows.size(); ++j) {
      const auto& r = s.rows[j];
      std::fprintf(
          f,
          "      {\"b\": %zu, \"variant\": \"%s\", \"grain\": %zu, "
          "\"seconds_per_rhs\": %.3e, \"gflops\": %.3f, \"gbps\": %.3f, "
          "\"bytes_per_site\": %.1f, \"speedup\": %.3f}%s\n",
          r.b, r.variant.c_str(), r.grain, r.seconds_per_rhs, r.gflops,
          r.gbps, r.bytes_per_site, r.speedup,
          j + 1 < s.rows.size() ? "," : "");
    }
    std::fprintf(f, "    ]}%s\n", i + 1 < studies.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
}

}  // namespace

int main() {
  const auto geom = std::make_shared<femto::Geometry>(8, 8, 8, 16);
  const std::vector<std::size_t> batches = {1, 2, 4, 8, 16};

  std::printf("micro_multirhs: %dx%dx%dx%d, isa %s (float x%d)\n\n",
              geom->extent(0), geom->extent(1), geom->extent(2),
              geom->extent(3), femto::simd::kIsaName,
              femto::simd::kWidth<float>);

  std::vector<Study> studies;
  // Headline: 4D shape where batching unlocks RHS-lane vectorization.
  studies.push_back(run_study<float>(geom, 1, batches));
  // Amortisation curve where single-RHS vectorization already works.
  studies.push_back(run_study<float>(geom, 8, batches));
  studies.push_back(run_study<double>(geom, 8, batches));
  for (const auto& s : studies) print_study(s);

  write_json(*geom, studies);
  std::printf("\nwrote BENCH_multirhs.json\n");
  return 0;
}
