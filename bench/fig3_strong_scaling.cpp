// Fig. 3 (a, b, c): strong scaling of the CG solver on a 48^3 x 64
// lattice across three GPU generations (Titan, Ray, Sierra), with the
// communication policy autotuned per point.
//
// Shape criteria vs the paper:
//  (a) TFLOPS: Sierra > Ray > Titan at every GPU count, all rising with
//      GPUs but sub-linearly;
//  (b) percent of peak: the maximum achieved grows with GPU generation
//      (cache amplification), and every machine declines with scale;
//  (c) bandwidth per GPU at the most efficient point: ~139 / 516 / 975
//      GB/s for Titan / Ray / Sierra.

#include <cstdio>
#include <vector>

#include "machine/perf_model.hpp"

int main() {
  using namespace femto::machine;
  LatticeProblem prob;
  prob.extents = {48, 48, 48, 64};
  prob.l5 = 12;

  const std::vector<MachineSpec> machines{titan(), ray(), sierra()};
  const std::vector<int> gpu_counts{4, 8, 16, 32, 48, 64, 96, 128, 160};

  std::printf("== Fig. 3: strong scaling, 48^3 x 64 (L5 = %d) ==\n\n",
              prob.l5);

  std::printf("(a) performance (TFLOPS)\n%8s", "GPUs");
  for (const auto& m : machines) std::printf("%10s", m.name.c_str());
  std::printf("\n");
  for (int n : gpu_counts) {
    std::printf("%8d", n);
    for (const auto& m : machines)
      std::printf("%10.2f", SolverPerfModel(m, prob)
                                .strong_scaling_point(n)
                                .tflops);
    std::printf("\n");
  }

  std::printf("\n(b) percent of peak (1.675x flops vs FP32 peak)\n%8s",
              "GPUs");
  for (const auto& m : machines) std::printf("%10s", m.name.c_str());
  std::printf("\n");
  for (int n : gpu_counts) {
    std::printf("%8d", n);
    for (const auto& m : machines)
      std::printf("%10.2f", SolverPerfModel(m, prob)
                                .strong_scaling_point(n)
                                .pct_peak);
    std::printf("\n");
  }

  std::printf("\n(c) effective bandwidth per GPU (GB/s, AI = %.1f)\n%8s",
              prob.arithmetic_intensity, "GPUs");
  for (const auto& m : machines) std::printf("%10s", m.name.c_str());
  std::printf("\n");
  for (int n : gpu_counts) {
    std::printf("%8d", n);
    for (const auto& m : machines)
      std::printf("%10.1f", SolverPerfModel(m, prob)
                                .strong_scaling_point(n)
                                .bw_per_gpu_gbs);
    std::printf("\n");
  }

  // Shape checks.
  bool ok = true;
  for (int n : gpu_counts) {
    const double ti =
        SolverPerfModel(titan(), prob).strong_scaling_point(n).tflops;
    const double ra =
        SolverPerfModel(ray(), prob).strong_scaling_point(n).tflops;
    const double si =
        SolverPerfModel(sierra(), prob).strong_scaling_point(n).tflops;
    ok = ok && si > ra && ra > ti;
  }
  const double bw_t =
      SolverPerfModel(titan(), prob).strong_scaling_point(1).bw_per_gpu_gbs;
  const double bw_r =
      SolverPerfModel(ray(), prob).strong_scaling_point(4).bw_per_gpu_gbs;
  const double bw_s =
      SolverPerfModel(sierra(), prob).strong_scaling_point(4).bw_per_gpu_gbs;
  std::printf("\nbest-point bandwidths: Titan %.0f (paper 139), Ray %.0f "
              "(516), Sierra %.0f (975) GB/s\n",
              bw_t, bw_r, bw_s);
  std::printf("machine ordering Sierra > Ray > Titan at every count: %s\n",
              ok ? "YES" : "NO");
  return ok ? 0 : 1;
}
