// Microbenchmark: the BLAS-1 kernels of the CG solver ("50-100 flops per
// lattice site, i.e., they are extremely bandwidth bound").

#include <benchmark/benchmark.h>

#include "lattice/blas.hpp"

namespace {

std::shared_ptr<const femto::Geometry> geom() {
  static auto g = std::make_shared<femto::Geometry>(8, 8, 8, 16);
  return g;
}

void bm_axpy(benchmark::State& state) {
  femto::SpinorField<double> x(geom(), 8, femto::Subset::Odd),
      y(geom(), 8, femto::Subset::Odd);
  x.gaussian(1);
  y.gaussian(2);
  for (auto _ : state) {
    femto::blas::axpy(1.00001, x, y);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetBytesProcessed(state.iterations() * 3 * x.bytes());
}

void bm_caxpy(benchmark::State& state) {
  femto::SpinorField<float> x(geom(), 8, femto::Subset::Odd),
      y(geom(), 8, femto::Subset::Odd);
  x.gaussian(3);
  y.gaussian(4);
  for (auto _ : state) {
    femto::blas::caxpy({0.999, 1e-4}, x, y);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetBytesProcessed(state.iterations() * 3 * x.bytes());
}

void bm_norm2(benchmark::State& state) {
  femto::SpinorField<double> x(geom(), 8, femto::Subset::Odd);
  x.gaussian(5);
  double sink = 0;
  for (auto _ : state) {
    sink += femto::blas::norm2(x);
    benchmark::DoNotOptimize(sink);
  }
  state.SetBytesProcessed(state.iterations() * x.bytes());
}

void bm_cdot(benchmark::State& state) {
  femto::SpinorField<double> x(geom(), 8, femto::Subset::Odd),
      y(geom(), 8, femto::Subset::Odd);
  x.gaussian(6);
  y.gaussian(7);
  double sink = 0;
  for (auto _ : state) {
    sink += femto::blas::cdot(x, y).re;
    benchmark::DoNotOptimize(sink);
  }
  state.SetBytesProcessed(state.iterations() * 2 * x.bytes());
}

}  // namespace

BENCHMARK(bm_axpy)->Unit(benchmark::kMicrosecond);
BENCHMARK(bm_caxpy)->Unit(benchmark::kMicrosecond);
BENCHMARK(bm_norm2)->Unit(benchmark::kMicrosecond);
BENCHMARK(bm_cdot)->Unit(benchmark::kMicrosecond);
