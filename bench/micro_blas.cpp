// Microbenchmark: the BLAS-1 kernels of the CG solver ("50-100 flops per
// lattice site, i.e., they are extremely bandwidth bound").
//
// Besides the usual google-benchmark timings this binary runs a fused vs
// unfused traffic study over the solver's per-iteration kernel sequences
// (plain CG, single-precision triple-update CG, and the half-precision
// quantised iteration), reporting effective GB/s from the byte counter and
// emitting the results as machine-readable BENCH_blas.json so future PRs
// can track the trajectory.

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "lattice/blas.hpp"
#include "lattice/flops.hpp"
#include "solver/half.hpp"

namespace {

std::shared_ptr<const femto::Geometry> geom() {
  static auto g = std::make_shared<femto::Geometry>(8, 8, 8, 16);
  return g;
}

void bm_axpy(benchmark::State& state) {
  femto::SpinorField<double> x(geom(), 8, femto::Subset::Odd),
      y(geom(), 8, femto::Subset::Odd);
  x.gaussian(1);
  y.gaussian(2);
  for (auto _ : state) {
    femto::blas::axpy(1.00001, x, y);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetBytesProcessed(state.iterations() * 3 * x.bytes());
}

void bm_caxpy(benchmark::State& state) {
  femto::SpinorField<float> x(geom(), 8, femto::Subset::Odd),
      y(geom(), 8, femto::Subset::Odd);
  x.gaussian(3);
  y.gaussian(4);
  for (auto _ : state) {
    femto::blas::caxpy({0.999, 1e-4}, x, y);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetBytesProcessed(state.iterations() * 3 * x.bytes());
}

void bm_norm2(benchmark::State& state) {
  femto::SpinorField<double> x(geom(), 8, femto::Subset::Odd);
  x.gaussian(5);
  double sink = 0;
  for (auto _ : state) {
    sink += femto::blas::norm2(x);
    benchmark::DoNotOptimize(sink);
  }
  state.SetBytesProcessed(state.iterations() * x.bytes());
}

void bm_cdot(benchmark::State& state) {
  femto::SpinorField<double> x(geom(), 8, femto::Subset::Odd),
      y(geom(), 8, femto::Subset::Odd);
  x.gaussian(6);
  y.gaussian(7);
  double sink = 0;
  for (auto _ : state) {
    sink += femto::blas::cdot(x, y).re;
    benchmark::DoNotOptimize(sink);
  }
  state.SetBytesProcessed(state.iterations() * 2 * x.bytes());
}

void bm_axpy_norm2(benchmark::State& state) {
  femto::SpinorField<double> x(geom(), 8, femto::Subset::Odd),
      y(geom(), 8, femto::Subset::Odd);
  x.gaussian(8);
  y.gaussian(9);
  double sink = 0;
  for (auto _ : state) {
    sink += femto::blas::axpy_norm2(1e-6, x, y);
    benchmark::DoNotOptimize(sink);
  }
  state.SetBytesProcessed(state.iterations() * 3 * x.bytes());
}

void bm_triple_cg_update(benchmark::State& state) {
  femto::SpinorField<float> p(geom(), 8, femto::Subset::Odd),
      ap(geom(), 8, femto::Subset::Odd), x(geom(), 8, femto::Subset::Odd),
      r(geom(), 8, femto::Subset::Odd);
  p.gaussian(10);
  ap.gaussian(11);
  x.gaussian(12);
  r.gaussian(13);
  double sink = 0;
  for (auto _ : state) {
    sink += femto::blas::triple_cg_update(1e-6, p, ap, x, r);
    benchmark::DoNotOptimize(sink);
  }
  state.SetBytesProcessed(state.iterations() * 6 * p.bytes());
}

void bm_axpy_zpbx(benchmark::State& state) {
  femto::SpinorField<double> p(geom(), 8, femto::Subset::Odd),
      x(geom(), 8, femto::Subset::Odd), z(geom(), 8, femto::Subset::Odd);
  p.gaussian(14);
  x.gaussian(15);
  z.gaussian(16);
  for (auto _ : state) {
    femto::blas::axpy_zpbx(1e-6, p, x, z, 1e-6);
    benchmark::DoNotOptimize(p.data());
  }
  state.SetBytesProcessed(state.iterations() * 5 * p.bytes());
}

void bm_half_axpy_roundtrip(benchmark::State& state) {
  femto::SpinorField<float> x(geom(), 8, femto::Subset::Odd),
      y(geom(), 8, femto::Subset::Odd);
  x.gaussian(17);
  y.gaussian(18);
  femto::HalfSpinorField h(geom(), 8, femto::Subset::Odd);
  for (auto _ : state) {
    h.axpy_roundtrip(1e-6, x, y);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetBytesProcessed(state.iterations() *
                          (3 * x.bytes() + h.bytes()));
}

// ---------------------------------------------------------------------------
// Fused vs unfused traffic study -> BENCH_blas.json
// ---------------------------------------------------------------------------

struct SequenceResult {
  std::string name;
  std::int64_t unfused_bytes = 0, fused_bytes = 0;
  double unfused_seconds = 0.0, fused_seconds = 0.0;

  double traffic_reduction_pct() const {
    return 100.0 * (1.0 - static_cast<double>(fused_bytes) /
                              static_cast<double>(unfused_bytes));
  }
  double wallclock_reduction_pct() const {
    return 100.0 * (1.0 - fused_seconds / unfused_seconds);
  }
  static double gbps(std::int64_t bytes, double seconds) {
    return seconds > 0 ? static_cast<double>(bytes) / seconds / 1e9 : 0.0;
  }
};

// Times one kernel sequence and reads its byte-counter charge.
SequenceResult run_sequence(const std::string& name,
                            const std::function<void()>& unfused,
                            const std::function<void()>& fused, int reps) {
  SequenceResult res;
  res.name = name;
  femto::flops::reset();
  unfused();
  res.unfused_bytes = femto::flops::bytes();
  femto::flops::reset();
  fused();
  res.fused_bytes = femto::flops::bytes();

  using clock = std::chrono::steady_clock;
  for (int warm = 0; warm < 2; ++warm) {
    unfused();
    fused();
  }
  auto t0 = clock::now();
  for (int i = 0; i < reps; ++i) unfused();
  res.unfused_seconds =
      std::chrono::duration<double>(clock::now() - t0).count() / reps;
  t0 = clock::now();
  for (int i = 0; i < reps; ++i) fused();
  res.fused_seconds =
      std::chrono::duration<double>(clock::now() - t0).count() / reps;
  return res;
}

std::vector<SequenceResult> traffic_study() {
  const auto g = geom();
  const int l5 = 8;
  const auto sub = femto::Subset::Odd;
  const int reps = 20;
  std::vector<SequenceResult> results;

  {
    // Plain CG iteration body beyond the matvec (double precision).
    femto::SpinorField<double> p(g, l5, sub), ap(g, l5, sub), x(g, l5, sub),
        r(g, l5, sub);
    p.gaussian(21);
    ap.gaussian(22);
    x.gaussian(23);
    r.gaussian(24);
    results.push_back(run_sequence(
        "cg_iteration_double",
        [&] {
          femto::blas::redot(p, ap);
          femto::blas::axpy(1e-6, p, x);
          femto::blas::axpy(-1e-6, ap, r);
          femto::blas::norm2(r);
          femto::blas::xpay(r, 1e-6, p);
        },
        [&] {
          femto::blas::redot(p, ap);
          femto::blas::axpy_norm2(-1e-6, ap, r);
          femto::blas::axpy_zpbx(1e-6, p, x, r, 1e-6);
        },
        reps));
  }

  {
    // mixed_cg single-precision inner iteration (tripleCGUpdate path).
    femto::SpinorField<float> p(g, l5, sub), ap(g, l5, sub), x(g, l5, sub),
        r(g, l5, sub);
    p.gaussian(31);
    ap.gaussian(32);
    x.gaussian(33);
    r.gaussian(34);
    results.push_back(run_sequence(
        "cg_iteration_single",
        [&] {
          femto::blas::redot(p, ap);
          femto::blas::axpy(1e-6f, p, x);
          femto::blas::axpy(-1e-6f, ap, r);
          femto::blas::norm2(r);
          femto::blas::xpay(r, 1e-6f, p);
        },
        [&] {
          femto::blas::redot(p, ap);
          femto::blas::triple_cg_update(1e-6, p, ap, x, r);
          femto::blas::xpay(r, 1e-6, p);
        },
        reps));
  }

  {
    // mixed_cg half-precision inner iteration: updates + 16-bit quantise.
    femto::SpinorField<float> p(g, l5, sub), ap(g, l5, sub), x(g, l5, sub),
        r(g, l5, sub);
    p.gaussian(41);
    ap.gaussian(42);
    x.gaussian(43);
    r.gaussian(44);
    femto::HalfSpinorField store(g, l5, sub);
    results.push_back(run_sequence(
        "cg_iteration_half",
        [&] {
          femto::blas::redot(p, ap);
          femto::blas::axpy(1e-6f, p, x);
          femto::blas::axpy(-1e-6f, ap, r);
          store.encode(x);
          store.decode(x);
          store.encode(r);
          store.decode(r);
          femto::blas::norm2(r);
          femto::blas::xpay(r, 1e-6f, p);
          store.encode(p);
          store.decode(p);
        },
        [&] {
          femto::blas::redot(p, ap);
          store.axpy_roundtrip(1e-6, p, x);
          store.axpy_roundtrip_norm2(-1e-6, ap, r);
          store.xpay_roundtrip(r, 1e-6, p);
        },
        reps));
  }

  return results;
}

void write_json(const std::vector<SequenceResult>& results,
                const char* path) {
  std::FILE* f = std::fopen(path, "w");
  if (!f) return;
  const auto& d = *geom();
  std::fprintf(f, "{\n  \"volume\": [%d, %d, %d, %d],\n  \"l5\": 8,\n",
               d.extent(0), d.extent(1), d.extent(2), d.extent(3));
  std::fprintf(f, "  \"sequences\": [\n");
  for (std::size_t i = 0; i < results.size(); ++i) {
    const auto& r = results[i];
    std::fprintf(f,
                 "    {\"name\": \"%s\",\n"
                 "     \"unfused\": {\"bytes_per_iter\": %lld, "
                 "\"seconds_per_iter\": %.3e, \"gbps\": %.3f},\n"
                 "     \"fused\": {\"bytes_per_iter\": %lld, "
                 "\"seconds_per_iter\": %.3e, \"gbps\": %.3f},\n"
                 "     \"traffic_reduction_pct\": %.2f,\n"
                 "     \"wallclock_reduction_pct\": %.2f}%s\n",
                 r.name.c_str(), static_cast<long long>(r.unfused_bytes),
                 r.unfused_seconds,
                 SequenceResult::gbps(r.unfused_bytes, r.unfused_seconds),
                 static_cast<long long>(r.fused_bytes), r.fused_seconds,
                 SequenceResult::gbps(r.fused_bytes, r.fused_seconds),
                 r.traffic_reduction_pct(), r.wallclock_reduction_pct(),
                 i + 1 < results.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
}

}  // namespace

BENCHMARK(bm_axpy)->Unit(benchmark::kMicrosecond);
BENCHMARK(bm_caxpy)->Unit(benchmark::kMicrosecond);
BENCHMARK(bm_norm2)->Unit(benchmark::kMicrosecond);
BENCHMARK(bm_cdot)->Unit(benchmark::kMicrosecond);
BENCHMARK(bm_axpy_norm2)->Unit(benchmark::kMicrosecond);
BENCHMARK(bm_triple_cg_update)->Unit(benchmark::kMicrosecond);
BENCHMARK(bm_axpy_zpbx)->Unit(benchmark::kMicrosecond);
BENCHMARK(bm_half_axpy_roundtrip)->Unit(benchmark::kMicrosecond);

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  const auto results = traffic_study();
  std::printf("\nfused vs unfused solver iteration sequences (%s):\n",
              "8x8x8x16, l5=8, odd subset");
  for (const auto& r : results) {
    std::printf(
        "  %-22s traffic %6.2f%% less (%lld -> %lld bytes), "
        "wall-clock %6.2f%% less (%.3e -> %.3e s), %.2f -> %.2f GB/s\n",
        r.name.c_str(), r.traffic_reduction_pct(),
        static_cast<long long>(r.unfused_bytes),
        static_cast<long long>(r.fused_bytes), r.wallclock_reduction_pct(),
        r.unfused_seconds, r.fused_seconds,
        SequenceResult::gbps(r.unfused_bytes, r.unfused_seconds),
        SequenceResult::gbps(r.fused_bytes, r.fused_seconds));
  }
  write_json(results, "BENCH_blas.json");
  std::printf("wrote BENCH_blas.json\n");
  return 0;
}
