// benchdiff: the BENCH regression sentinel.
//
// The bench harness leaves BENCH_*.json files in the repo root (tracer
// overhead from micro_obs, lint-scan cost from bench_lint.sh, SIMD and
// multi-RHS speedups, ...).  Committing them tracks the trajectory, but
// nothing *failed* when a number quietly got worse.  benchdiff closes the
// loop: a committed baseline (bench/baseline.json) annotates each metric
// with a direction and a noise band, and CI fails when a gated metric
// regresses past its band.
//
// Baseline schema ("femtobench-baseline-v1"):
//
//   {
//     "schema": "femtobench-baseline-v1",
//     "metrics": {
//       "BENCH_obs.json:overhead_enabled_pct": {
//         "value": -3.2,          // the accepted reading
//         "direction": "lower",   // lower | higher | info
//         "noise_pct": 100.0,     // relative band around value
//         "abs_tol": 2.0,         // additive band (for near-zero values)
//         "gate": true            // false = tracked, never fails
//       }, ...
//     }
//   }
//
// A metric regresses when it moves in the bad direction past BOTH bands:
// |change| > noise_pct% of the baseline AND |change| > abs_tol.  Absolute
// wall-clock numbers are machine-bound and should stay direction "info";
// the gates belong on machine-portable ratios (overhead percentages,
// speedups, pass/fail booleans).
//
// Metric names are "<file-basename>:<dotted.json.path>"; arrays index as
// "[i]".  Numbers and booleans (as 0/1) are metrics; strings are ignored.
//
// Usage:
//   benchdiff --baseline FILE BENCH_a.json [BENCH_b.json ...]
//   benchdiff --baseline FILE --write-baseline BENCH_a.json [...]
//
// --write-baseline refreshes the accepted values while PRESERVING the
// human-edited direction/noise/gate annotations of metrics already in the
// baseline; new metrics enter as ungated "info" rows for a human to
// promote.  Exit: 0 clean, 1 regression, 2 usage or I/O error.

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

namespace {

// ---------------------------------------------------------------------------
// Minimal JSON DOM.  benchdiff consumes only machine-written files, so the
// parser is strict: any malformed input is a hard error (exit 2), never a
// silent partial read that could mask a missing gate.
// ---------------------------------------------------------------------------

struct JValue {
  enum Kind { Null, Bool, Num, Str, Arr, Obj };
  Kind kind = Null;
  bool b = false;
  double num = 0.0;
  std::string str;
  std::vector<JValue> arr;
  std::vector<std::pair<std::string, JValue>> obj;  // insertion order

  const JValue* find(const std::string& key) const {
    for (const auto& kv : obj)
      if (kv.first == key) return &kv.second;
    return nullptr;
  }
};

class Parser {
 public:
  Parser(const std::string& s, std::string& err) : s_(s), err_(err) {}

  bool run(JValue& out) {
    skip_ws();
    if (!value(out)) return false;
    skip_ws();
    if (i_ != s_.size()) return fail("trailing bytes after document");
    return true;
  }

 private:
  const std::string& s_;
  std::string& err_;
  std::size_t i_ = 0;

  bool fail(const std::string& what) {
    err_ = "byte " + std::to_string(i_) + ": " + what;
    return false;
  }
  char cur() const { return i_ < s_.size() ? s_[i_] : '\0'; }
  void skip_ws() {
    while (i_ < s_.size() &&
           std::isspace(static_cast<unsigned char>(s_[i_])) != 0)
      ++i_;
  }
  bool lit(const char* word, JValue& out, JValue::Kind k, bool bv) {
    const std::size_t n = std::string::traits_type::length(word);
    if (s_.compare(i_, n, word) != 0) return fail("bad literal");
    i_ += n;
    out.kind = k;
    out.b = bv;
    out.num = bv ? 1.0 : 0.0;
    return true;
  }

  bool value(JValue& out) {
    switch (cur()) {
      case '{': return object(out);
      case '[': return array(out);
      case '"': out.kind = JValue::Str; return string(out.str);
      case 't': return lit("true", out, JValue::Bool, true);
      case 'f': return lit("false", out, JValue::Bool, false);
      case 'n': return lit("null", out, JValue::Null, false);
      default: return number(out);
    }
  }

  bool object(JValue& out) {
    out.kind = JValue::Obj;
    ++i_;  // '{'
    skip_ws();
    if (cur() == '}') { ++i_; return true; }
    while (true) {
      skip_ws();
      std::string key;
      if (!string(key)) return false;
      if (out.find(key) != nullptr) return fail("duplicate key " + key);
      skip_ws();
      if (cur() != ':') return fail("expected ':'");
      ++i_;
      skip_ws();
      JValue v;
      if (!value(v)) return false;
      out.obj.emplace_back(std::move(key), std::move(v));
      skip_ws();
      if (cur() == ',') { ++i_; continue; }
      if (cur() == '}') { ++i_; return true; }
      return fail("expected ',' or '}'");
    }
  }

  bool array(JValue& out) {
    out.kind = JValue::Arr;
    ++i_;  // '['
    skip_ws();
    if (cur() == ']') { ++i_; return true; }
    while (true) {
      JValue v;
      skip_ws();
      if (!value(v)) return false;
      out.arr.push_back(std::move(v));
      skip_ws();
      if (cur() == ',') { ++i_; continue; }
      if (cur() == ']') { ++i_; return true; }
      return fail("expected ',' or ']'");
    }
  }

  bool string(std::string& out) {
    if (cur() != '"') return fail("expected string");
    ++i_;
    out.clear();
    while (i_ < s_.size()) {
      const char c = s_[i_];
      if (c == '"') { ++i_; return true; }
      if (c == '\\') {
        ++i_;
        const char e = cur();
        switch (e) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'n': out += '\n'; break;
          case 't': out += '\t'; break;
          case 'r': out += '\r'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'u':
            // Metric names are ASCII; keep the escape verbatim.
            out += "\\u";
            break;
          default: return fail("bad escape");
        }
        ++i_;
        continue;
      }
      out += c;
      ++i_;
    }
    return fail("unterminated string");
  }

  bool number(JValue& out) {
    const std::size_t start = i_;
    if (cur() == '-') ++i_;
    while (std::isdigit(static_cast<unsigned char>(cur())) != 0) ++i_;
    if (cur() == '.') {
      ++i_;
      while (std::isdigit(static_cast<unsigned char>(cur())) != 0) ++i_;
    }
    if (cur() == 'e' || cur() == 'E') {
      ++i_;
      if (cur() == '+' || cur() == '-') ++i_;
      while (std::isdigit(static_cast<unsigned char>(cur())) != 0) ++i_;
    }
    if (i_ == start) return fail("expected value");
    out.kind = JValue::Num;
    out.num = std::stod(s_.substr(start, i_ - start));
    return true;
  }
};

bool parse_file(const std::string& path, JValue& out, std::string& err) {
  std::ifstream in(path);
  if (!in) {
    err = "cannot open " + path;
    return false;
  }
  std::ostringstream body;
  body << in.rdbuf();
  const std::string text = body.str();
  if (!Parser(text, err).run(out)) {
    err = path + ": " + err;
    return false;
  }
  return true;
}

// ---------------------------------------------------------------------------
// Flattening: numeric leaves of a BENCH file become "<basename>:<path>".
// ---------------------------------------------------------------------------

std::string basename_of(const std::string& path) {
  const std::size_t slash = path.find_last_of('/');
  return slash == std::string::npos ? path : path.substr(slash + 1);
}

void flatten(const JValue& v, const std::string& prefix,
             std::map<std::string, double>& out) {
  switch (v.kind) {
    case JValue::Num: out[prefix] = v.num; break;
    case JValue::Bool: out[prefix] = v.b ? 1.0 : 0.0; break;
    case JValue::Obj:
      for (const auto& kv : v.obj)
        flatten(kv.second, prefix + "." + kv.first, out);
      break;
    case JValue::Arr:
      for (std::size_t i = 0; i < v.arr.size(); ++i)
        flatten(v.arr[i], prefix + "[" + std::to_string(i) + "]", out);
      break;
    default: break;  // strings and nulls are not metrics
  }
}

// ---------------------------------------------------------------------------
// Baseline model.
// ---------------------------------------------------------------------------

constexpr const char* kSchema = "femtobench-baseline-v1";

struct Metric {
  double value = 0.0;
  std::string direction = "info";  // higher | lower | info
  double noise_pct = 10.0;
  double abs_tol = 0.0;
  bool gate = false;
};

using Baseline = std::map<std::string, Metric>;

bool load_baseline(const std::string& path, Baseline& out,
                   std::string& err) {
  JValue doc;
  if (!parse_file(path, doc, err)) return false;
  const JValue* schema = doc.find("schema");
  if (schema == nullptr || schema->kind != JValue::Str ||
      schema->str != kSchema) {
    err = path + ": schema is not " + std::string(kSchema);
    return false;
  }
  const JValue* metrics = doc.find("metrics");
  if (metrics == nullptr || metrics->kind != JValue::Obj) {
    err = path + ": no metrics object";
    return false;
  }
  for (const auto& kv : metrics->obj) {
    const JValue& m = kv.second;
    Metric b;
    const JValue* f = m.find("value");
    if (f == nullptr || f->kind != JValue::Num) {
      err = path + ": metric " + kv.first + " has no numeric value";
      return false;
    }
    b.value = f->num;
    if ((f = m.find("direction")) != nullptr) b.direction = f->str;
    if (b.direction != "higher" && b.direction != "lower" &&
        b.direction != "info") {
      err = path + ": metric " + kv.first + " has bad direction '" +
            b.direction + "'";
      return false;
    }
    if ((f = m.find("noise_pct")) != nullptr) b.noise_pct = f->num;
    if ((f = m.find("abs_tol")) != nullptr) b.abs_tol = f->num;
    if ((f = m.find("gate")) != nullptr) b.gate = f->b;
    out[kv.first] = b;
  }
  return true;
}

std::string fmt_num(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.9g", v);
  return buf;
}

bool write_baseline(const std::string& path, const Baseline& b) {
  std::ofstream out(path);
  if (!out) return false;
  out << "{\n  \"schema\": \"" << kSchema << "\",\n  \"metrics\": {";
  bool first = true;
  for (const auto& kv : b) {
    const Metric& m = kv.second;
    out << (first ? "" : ",") << "\n    \"" << kv.first << "\": "
        << "{\"value\": " << fmt_num(m.value) << ", \"direction\": \""
        << m.direction << "\", \"noise_pct\": " << fmt_num(m.noise_pct)
        << ", \"abs_tol\": " << fmt_num(m.abs_tol) << ", \"gate\": "
        << (m.gate ? "true" : "false") << "}";
    first = false;
  }
  out << "\n  }\n}\n";
  return static_cast<bool>(out);
}

// Bad-direction delta: positive means "worse" by the metric's direction,
// zero/negative means equal or improved.  "info" never has a bad side.
double worseness(const Metric& m, double cur) {
  if (m.direction == "higher") return m.value - cur;
  if (m.direction == "lower") return cur - m.value;
  return 0.0;
}

int usage() {
  std::fprintf(
      stderr,
      "usage: benchdiff --baseline FILE [--write-baseline] "
      "BENCH.json...\n"
      "  compares flattened numeric metrics of each BENCH file against\n"
      "  the baseline; exits 1 when a gated metric regresses past its\n"
      "  noise band, 2 on bad input.  --write-baseline refreshes values\n"
      "  while keeping existing direction/noise/gate annotations.\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string baseline_path;
  bool do_write = false;
  std::vector<std::string> files;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--baseline") {
      if (i + 1 >= argc) return usage();
      baseline_path = argv[++i];
    } else if (a == "--write-baseline") {
      do_write = true;
    } else if (!a.empty() && a[0] == '-') {
      return usage();
    } else {
      files.push_back(a);
    }
  }
  if (baseline_path.empty() || files.empty()) return usage();

  std::string err;
  std::map<std::string, double> current;
  for (const std::string& f : files) {
    JValue doc;
    if (!parse_file(f, doc, err)) {
      std::fprintf(stderr, "benchdiff: %s\n", err.c_str());
      return 2;
    }
    std::map<std::string, double> flat;
    flatten(doc, "", flat);
    const std::string base = basename_of(f);
    for (const auto& kv : flat)
      current[base + ":" + kv.first.substr(1)] = kv.second;  // drop lead '.'
  }

  Baseline baseline;
  const bool have_baseline = load_baseline(baseline_path, baseline, err);

  if (do_write) {
    // Annotations survive the refresh; values are replaced; metrics that
    // vanished from the inputs are dropped (their files were re-run).
    Baseline next;
    for (const auto& kv : current) {
      Metric m;
      const auto old = baseline.find(kv.first);
      if (old != baseline.end()) m = old->second;
      m.value = kv.second;
      next[kv.first] = m;
    }
    if (!write_baseline(baseline_path, next)) {
      std::fprintf(stderr, "benchdiff: cannot write %s\n",
                   baseline_path.c_str());
      return 2;
    }
    std::printf("benchdiff: wrote %zu metric(s) to %s\n", next.size(),
                baseline_path.c_str());
    return 0;
  }

  if (!have_baseline) {
    std::fprintf(stderr, "benchdiff: %s\n", err.c_str());
    return 2;
  }

  int regressions = 0;
  int checked = 0;
  // Only judge baseline entries whose file was actually passed in: a run
  // that benches one subsystem must not fail on the files it skipped.
  std::map<std::string, bool> given;
  for (const std::string& f : files) given[basename_of(f)] = true;

  for (const auto& kv : baseline) {
    const std::string& name = kv.first;
    const Metric& m = kv.second;
    const std::size_t colon = name.find(':');
    if (colon == std::string::npos ||
        given.find(name.substr(0, colon)) == given.end())
      continue;
    const auto cur = current.find(name);
    if (cur == current.end()) {
      if (m.gate) {
        std::printf("REGRESSED %-58s gated metric missing from input\n",
                    name.c_str());
        ++regressions;
      }
      continue;
    }
    ++checked;
    if (!m.gate || m.direction == "info") continue;
    const double bad = worseness(m, cur->second);
    const double band = std::fabs(m.value) * m.noise_pct / 100.0;
    if (bad > band && bad > m.abs_tol) {
      std::printf("REGRESSED %-58s %s -> %s (%s worse; band %s, tol %s)\n",
                  name.c_str(), fmt_num(m.value).c_str(),
                  fmt_num(cur->second).c_str(), fmt_num(bad).c_str(),
                  fmt_num(band).c_str(), fmt_num(m.abs_tol).c_str());
      ++regressions;
    }
  }

  int unbaselined = 0;
  for (const auto& kv : current)
    if (baseline.find(kv.first) == baseline.end()) ++unbaselined;
  if (unbaselined > 0)
    std::printf(
        "benchdiff: %d new metric(s) not in the baseline "
        "(refresh with --write-baseline, then annotate gates)\n",
        unbaselined);

  std::printf("benchdiff: %d metric(s) checked, %d regression(s)\n", checked,
              regressions);
  return regressions == 0 ? 0 : 1;
}
