#pragma once
// femtolint v2 lexer: turns C++ source text into a token stream.
//
// The v1 scanner worked on comment-stripped *text* and paid for it: rules
// fired on commented-out code that the stripper missed (nested quotes,
// raw strings), and every rule re-derived structure with ad-hoc character
// scans.  The lexer gives every downstream pass the same, correct view:
//
//   * line and block comments are removed from the token stream but kept
//     in a side list (suppression comments and fixture directives live
//     there);
//   * string, char, and raw-string literals become single opaque tokens,
//     so nothing inside a literal can ever match a rule;
//   * a preprocessor directive (with backslash continuations joined) is
//     one token, so `#include` graph extraction and `#pragma once` checks
//     are trivial and `#include <new>` can no longer look like a naked
//     `new`;
//   * punctuation is maximal-munch (`::`, `+=`, `->`, ...), which the
//     race-accum and guarded-by passes rely on.
//
// The lexer does not run the preprocessor: femtolint lints what the
// developer wrote, not what the compiler saw.

#include <string>
#include <vector>

namespace femtolint {

enum class Tok {
  Ident,    // identifiers AND keywords (rules match on text)
  Number,   // pp-number: 0x1f, 1e-5, 3.14f, ...
  Str,      // "..." or R"delim(...)delim"; text is the raw literal
            // (quotes included) -- rules must check kind before matching
  Chr,      // '...'
  Punct,    // maximal-munch operator / punctuator
  Pp,       // one whole preprocessor directive, continuations joined
};

struct Token {
  Tok kind = Tok::Punct;
  std::string text;
  int line = 0;  // 1-based line of the token's first character
};

struct Comment {
  int line = 0;       // line the comment starts on
  int end_line = 0;   // last line it covers (== line for `//` comments)
  std::string text;   // without the // or /* */ markers
};

struct LexResult {
  std::vector<Token> tokens;
  std::vector<Comment> comments;
  int n_lines = 1;
};

/// Lex @p src.  Never fails: unterminated literals/comments are closed at
/// end of input (linting must degrade gracefully on torn files).
LexResult lex(const std::string& src);

inline bool is_ident(const Token& t, const char* text) {
  return t.kind == Tok::Ident && t.text == text;
}
inline bool is_punct(const Token& t, const char* text) {
  return t.kind == Tok::Punct && t.text == text;
}

}  // namespace femtolint
