#include "model.hpp"

#include <algorithm>
#include <fstream>
#include <sstream>

namespace femtolint {

namespace {

const char* kLaunchNames[] = {"parallel_for", "parallel_for_chunked",
                              "parallel_reduce", "parallel_reduce2",
                              "parallel_reduce_n"};

bool is_launch_name(const std::string& s) {
  for (const char* n : kLaunchNames)
    if (s == n) return true;
  return false;
}

bool is_reduce_name(const std::string& s) {
  return s == "parallel_reduce" || s == "parallel_reduce2" ||
         s == "parallel_reduce_n";
}

// Direct output: stream objects and C stdio writers.  String builders
// (ostringstream) are not output until something writes them.
const char* kEmitNames[] = {"ofstream", "fopen",  "freopen", "fprintf",
                            "vfprintf", "printf", "puts",    "fputs",
                            "fputc",    "putc",   "fwrite",  "cout",
                            "cerr",     "clog"};

bool is_emit_name(const std::string& s) {
  for (const char* n : kEmitNames)
    if (s == n) return true;
  return false;
}

const char* kUnorderedNames[] = {"unordered_map", "unordered_set",
                                 "unordered_multimap", "unordered_multiset"};

bool is_unordered_name(const std::string& s) {
  for (const char* n : kUnorderedNames)
    if (s == n) return true;
  return false;
}

bool is_control_kw(const std::string& s) {
  return s == "if" || s == "for" || s == "while" || s == "switch" ||
         s == "catch" || s == "return" || s == "sizeof" || s == "alignof" ||
         s == "decltype" || s == "static_assert";
}

// Token index just past a template argument list opening at @p open
// (which must be '<'); @p n bounds the scan.
std::size_t skip_angle_list(const std::vector<Token>& t, std::size_t open,
                            std::size_t n) {
  int depth = 0;
  for (std::size_t i = open; i < n; ++i) {
    if (t[i].kind != Tok::Punct) continue;
    const std::string& p = t[i].text;
    if (p == "<")
      ++depth;
    else if (p == ">")
      --depth;
    else if (p == ">>")
      depth -= 2;
    else if (p == "<<")
      depth += 2;
    else if (p == ";")
      return i;  // torn list: bail at statement end
    if (depth <= 0) return i + 1;
  }
  return n;
}

bool is_future_name(const std::string& s) {
  return s == "future" || s == "shared_future";
}

// Names declared with a type matching @p is_type, one alias hop deep.
// `std::unordered_map<K, V> counts;` records `counts`;
// `using Cache = std::unordered_map<K, V>;` + `Cache cache_;` records
// `cache_`; an accessor `const std::unordered_map<K, V>& cache() const`
// records `cache` (iterating its result is iterating the container).  The
// same mechanism serves std::future (blocking `.get()` detection).
std::set<std::string> find_typed_names(const std::vector<Token>& t,
                                       bool (*is_type)(const std::string&)) {
  const std::size_t n = t.size();
  std::set<std::string> aliases;
  for (std::size_t k = 0; k + 2 < n; ++k) {
    if (!is_ident(t[k], "using") || t[k + 1].kind != Tok::Ident ||
        !is_punct(t[k + 2], "="))
      continue;
    for (std::size_t j = k + 3; j < n && !is_punct(t[j], ";"); ++j)
      if (t[j].kind == Tok::Ident && is_type(t[j].text)) {
        aliases.insert(t[k + 1].text);
        break;
      }
  }
  std::set<std::string> names;
  for (std::size_t k = 0; k < n; ++k) {
    if (t[k].kind != Tok::Ident) continue;
    if (!is_type(t[k].text) && aliases.count(t[k].text) == 0)
      continue;
    std::size_t j = k + 1;
    if (j < n && is_punct(t[j], "<")) j = skip_angle_list(t, j, n);
    // Walk through nested-name, ref/pointer, and cv noise to the
    // declarator: `>& counts`, `>::iterator it`, `> const* m`.
    for (;;) {
      if (j + 1 < n && is_punct(t[j], "::")) {
        j += 2;
        continue;
      }
      if (j < n && (is_punct(t[j], "&") || is_punct(t[j], "&&") ||
                    is_punct(t[j], "*") || is_ident(t[j], "const"))) {
        ++j;
        continue;
      }
      break;
    }
    if (j < n && t[j].kind == Tok::Ident) names.insert(t[j].text);
  }
  return names;
}

std::vector<std::string> split_path(const std::string& p) {
  std::vector<std::string> out;
  std::string cur;
  for (char c : p) {
    if (c == '/' || c == '\\') {
      if (!cur.empty()) out.push_back(cur);
      cur.clear();
    } else {
      cur += c;
    }
  }
  if (!cur.empty()) out.push_back(cur);
  return out;
}

// ---------------------------------------------------------------------------
// Token-tree walker: functions and classes.
// ---------------------------------------------------------------------------

class Extractor {
 public:
  Extractor(const std::vector<Token>& toks, Source& out)
      : t_(toks), n_(toks.size()), out_(out) {}

  void run() { walk(0, n_, /*cls=*/nullptr); }

 private:
  const std::vector<Token>& t_;
  std::size_t n_;
  Source& out_;

  bool is(std::size_t i, const char* text) const {
    return i < n_ && t_[i].text == text;
  }
  bool ident_at(std::size_t i) const {
    return i < n_ && t_[i].kind == Tok::Ident;
  }

  // Matching closer for the (, [ or { at @p open; n_ if unbalanced.
  std::size_t match(std::size_t open) const {
    const std::string& o = t_[open].text;
    const char* c = o == "(" ? ")" : (o == "[" ? "]" : "}");
    int depth = 0;
    for (std::size_t i = open; i < n_; ++i) {
      if (t_[i].kind != Tok::Punct) continue;
      if (t_[i].text == o) ++depth;
      if (t_[i].text == c && --depth == 0) return i;
    }
    return n_;
  }

  // Skip a `template <...>` header starting at the 'template' keyword.
  std::size_t skip_template(std::size_t i) const {
    ++i;
    if (!is(i, "<")) return i;
    int depth = 0;
    for (; i < n_; ++i) {
      if (t_[i].kind != Tok::Punct) continue;
      if (t_[i].text == "<")
        ++depth;
      else if (t_[i].text == ">")
        --depth;
      else if (t_[i].text == ">>")
        depth -= 2;
      else if (t_[i].text == "<<")
        depth += 2;
      if (depth <= 0 && t_[i].text.find('>') != std::string::npos)
        return i + 1;
    }
    return n_;
  }

  // Index of the `(` opening a call of the identifier at @p k, or n_ if
  // the identifier is not called.  Handles a plain `name(` and, so that
  // `norm2_multi<T>(..)` counts as a call of norm2_multi, an explicit
  // template-argument list between the name and the paren.  The list is
  // only accepted when every token inside is type-ish (identifier,
  // number, `::`, `,`, `*`, `&`, nested angles) and short -- anything
  // else means `<` was a comparison, not a template bracket.
  std::size_t call_open_paren(std::size_t k) const {
    if (is(k + 1, "(")) return k + 1;
    if (!is(k + 1, "<")) return n_;
    int depth = 0;
    const std::size_t limit = std::min(n_, k + 1 + 32);
    for (std::size_t i = k + 1; i < limit; ++i) {
      const Token& tk = t_[i];
      if (tk.kind == Tok::Ident || tk.kind == Tok::Number) continue;
      if (tk.kind != Tok::Punct) return n_;
      if (tk.text == "<") {
        ++depth;
      } else if (tk.text == ">") {
        if (--depth == 0) return is(i + 1, "(") ? i + 1 : n_;
      } else if (tk.text == ">>") {
        depth -= 2;
        if (depth == 0) return is(i + 1, "(") ? i + 1 : n_;
        if (depth < 0) return n_;
      } else if (tk.text != "::" && tk.text != "," && tk.text != "*" &&
                 tk.text != "&") {
        return n_;
      }
    }
    return n_;
  }

  // Declaration-scope walk over [begin, end); @p cls non-null inside a
  // class body (collects members into it).
  void walk(std::size_t begin, std::size_t end, ClassInfo* cls) {
    std::vector<std::size_t> stmt;  // pending member-declaration tokens
    for (std::size_t i = begin; i < end;) {
      const Token& tk = t_[i];
      if (tk.kind == Tok::Pp) {
        ++i;
        continue;
      }
      if (tk.kind == Tok::Ident) {
        const std::string& w = tk.text;
        if (w == "template") {
          const std::size_t j = skip_template(i);
          for (std::size_t k = i; k < j; ++k) stmt.push_back(k);
          i = j;
          continue;
        }
        if (w == "namespace" && cls == nullptr) {
          std::size_t j = i + 1;
          while (j < end && !is(j, "{") && !is(j, ";") && !is(j, "=")) ++j;
          if (j < end && is(j, "{")) {
            const std::size_t close = match(j);
            walk(j + 1, close, nullptr);
            i = close + 1;
          } else {
            while (j < end && !is(j, ";")) ++j;  // namespace alias
            i = j + 1;
          }
          stmt.clear();
          continue;
        }
        if (w == "class" || w == "struct" || w == "union") {
          // Find the body '{' or the ';' of a forward declaration.
          std::size_t j = i + 1;
          while (j < end && !is(j, "{") && !is(j, ";") && !is(j, "(")) ++j;
          if (j < end && is(j, "{")) {
            ClassInfo ci;
            ci.line = tk.line;
            if (ident_at(i + 1)) ci.name = t_[i + 1].text;
            const std::size_t close = match(j);
            walk(j + 1, close, &ci);
            out_.classes.push_back(std::move(ci));
            i = close + 1;
            stmt.clear();
            continue;
          }
          // Forward declaration, elaborated type (`struct X x;`), or a
          // function parameter -- fall through to plain accumulation.
        }
        if (w == "enum") {
          std::size_t j = i + 1;
          while (j < end && !is(j, "{") && !is(j, ";")) ++j;
          i = (j < end && is(j, "{")) ? match(j) + 1 : j + 1;
          stmt.clear();
          continue;
        }
        if (w == "using" || w == "typedef" || w == "friend") {
          std::size_t j = i;
          while (j < end && !is(j, ";")) ++j;
          i = j + 1;
          stmt.clear();
          continue;
        }
        if (w == "operator") {
          // Build the operator-id, then treat like a named function.
          std::size_t j = i + 1;
          std::string opname = "operator";
          if (is(j, "(") && is(j + 1, ")")) {
            opname += "()";
            j += 2;
          } else {
            while (j < end && t_[j].kind == Tok::Punct && !is(j, "(")) {
              opname += t_[j].text;
              ++j;
            }
          }
          if (j < end && is(j, "(")) {
            const std::size_t consumed =
                try_function(j, end, opname, cls, /*name_tok=*/i);
            if (consumed != 0) {
              i = consumed;
              stmt.clear();
              continue;
            }
          }
          for (std::size_t k = i; k < j; ++k) stmt.push_back(k);
          i = j;
          continue;
        }
      }
      if (tk.kind == Tok::Punct && tk.text == "(" && i > begin &&
          ident_at(i - 1) && !is_control_kw(t_[i - 1].text)) {
        const std::size_t consumed =
            try_function(i, end, t_[i - 1].text, cls, i - 1);
        if (consumed != 0) {
          i = consumed;
          stmt.clear();
          continue;
        }
      }
      if (tk.kind == Tok::Punct && tk.text == "{") {
        i = match(i) + 1;  // opaque block (initializer list, asm, ...)
        stmt.clear();
        continue;
      }
      if (tk.kind == Tok::Punct && tk.text == ";") {
        if (cls != nullptr) analyze_member(stmt, *cls);
        stmt.clear();
        ++i;
        continue;
      }
      stmt.push_back(i);
      ++i;
    }
  }

  // @p open is the '(' of a candidate function header whose name is
  // @p name (token index @p name_tok).  Returns the token index to resume
  // from if this was a definition (body consumed), 0 otherwise.
  std::size_t try_function(std::size_t open, std::size_t end,
                           const std::string& name, ClassInfo* cls,
                           std::size_t name_tok) {
    const std::size_t close = match(open);
    if (close >= end) return 0;
    std::size_t j = close + 1;
    // Trailing qualifiers: const noexcept(...) override final & &&
    // -> return-type tokens ... up to '{', ';', '=', or ':'.
    while (j < end) {
      if (is(j, "{") || is(j, ";") || is(j, "=") || is(j, ":")) break;
      if (is(j, "(") || is(j, "[")) {
        j = match(j) + 1;
        continue;
      }
      if (is(j, ",") || is(j, ")")) return 0;  // inside an expression
      ++j;
    }
    if (j >= end) return 0;
    std::size_t body = n_;
    if (is(j, "{")) {
      body = j;
    } else if (is(j, ":")) {
      // Constructor initializer list: the body '{' is the first brace NOT
      // preceded by an identifier (member-init braces follow their member
      // name; the body brace follows ')' or '}').
      std::size_t k = j + 1;
      while (k < end) {
        if (is(k, "(")) {
          k = match(k) + 1;
          continue;
        }
        if (is(k, "{")) {
          if (k > 0 && ident_at(k - 1)) {
            k = match(k) + 1;  // brace member-initializer
            continue;
          }
          body = k;
          break;
        }
        if (is(k, ";")) return 0;
        ++k;
      }
    } else {
      return 0;  // declaration, `= default`, or plain expression
    }
    if (body >= end) return 0;

    FunctionInfo fn;
    fn.name = name;
    fn.line = t_[body].line;
    fn.body_begin = body;
    fn.body_end = match(body);
    // Qualifier / scope resolution for the class name.
    std::size_t q = name_tok;
    bool dtor = false;
    if (q > 0 && is(q - 1, "~")) {
      dtor = true;
      --q;
    }
    if (q >= 2 && is(q - 1, "::") && ident_at(q - 2))
      fn.class_name = t_[q - 2].text;
    else if (cls != nullptr)
      fn.class_name = cls->name;
    fn.is_ctor_or_dtor = dtor || (fn.name == fn.class_name);
    scan_params(fn, open, close);
    scan_body(fn);
    out_.functions.push_back(std::move(fn));
    return out_.functions.back().body_end + 1;
  }

  // Record parameter names whose declared type names a compressed gauge
  // container (kernel-traffic: the charge must read THAT container's
  // bytes()).  The parameter name is the last identifier of each
  // top-level comma-separated declarator.
  void scan_params(FunctionInfo& fn, std::size_t open, std::size_t close) {
    static const std::set<std::string> kCompressed = {
        "CompressedGaugeField", "Recon8GaugeField", "Fixed12GaugeField"};
    int depth = 0;
    bool compressed = false;
    std::string last_ident;
    const auto flush = [&] {
      if (compressed && !last_ident.empty())
        fn.compressed_params.insert(last_ident);
      compressed = false;
      last_ident.clear();
    };
    for (std::size_t k = open + 1; k < close && k < n_; ++k) {
      if (t_[k].kind == Tok::Punct) {
        const std::string& p = t_[k].text;
        if (p == "->") continue;  // trailing-return / lambda arrow
        if (p == "," && depth == 0) {
          flush();
          continue;
        }
        for (const char c : p) {
          if (c == '<' || c == '(' || c == '[' || c == '{') ++depth;
          if (c == '>' || c == ')' || c == ']' || c == '}') --depth;
        }
        continue;
      }
      if (t_[k].kind == Tok::Ident) {
        if (kCompressed.count(t_[k].text) != 0)
          compressed = true;
        else
          last_ident = t_[k].text;
      }
    }
    flush();
  }

  void scan_body(FunctionInfo& fn) {
    for (std::size_t k = fn.body_begin; k <= fn.body_end && k < n_; ++k) {
      if (t_[k].kind != Tok::Ident) continue;
      const std::string& w = t_[k].text;
      if (w == "flops" && is(k + 1, "::") && k + 2 < n_ &&
          t_[k + 2].text == "add_bytes") {
        fn.charges = true;
        if (fn.first_charge_line == 0) fn.first_charge_line = t_[k].line;
        // Which objects' bytes() feed the charge: `X.bytes(` / `X->bytes(`
        // identifiers inside the argument list.
        if (is(k + 3, "(")) {
          const std::size_t cl = match(k + 3);
          for (std::size_t j = k + 4; j + 2 < cl; ++j)
            if (ident_at(j) && (is(j + 1, ".") || is(j + 1, "->")) &&
                t_[j + 2].text == "bytes")
              fn.charge_bytes_of.insert(t_[j].text);
        }
        continue;
      }
      if (w == "FEMTO_NONDET_OK") {
        fn.nondet_ok = true;
        continue;
      }
      if (w == "FEMTO_BLOCKING_OK") {
        fn.blocking_ok = true;
        continue;
      }
      if (w == "FEMTO_PROTOCOL_OK") {
        fn.protocol_ok = true;
        continue;
      }
      if ((w == "make_unique" || w == "make_shared") && is(k + 1, "<") &&
          ident_at(k + 2)) {
        // The ctor call hidden behind the factory: make_unique<T>(...)
        // enters T::T, which the name-based graph would otherwise miss.
        fn.ctor_callees.insert(t_[k + 2].text);
      }
      scan_nondet(fn, k);
      if (is_emit_name(w) && !fn.emits) {
        fn.emits = true;
        fn.first_emit_line = t_[k].line;
        fn.first_emit_what = w;
      }
      if (w == "for" && is(k + 1, "(")) scan_range_for(fn, k + 1);
      if (call_open_paren(k) <= fn.body_end) {
        if (is_launch_name(w)) {
          if (!fn.launches) {
            fn.launches = true;
            fn.first_launch_line = t_[k].line;
            fn.first_launch_name = w;
          }
          if (is_reduce_name(w)) fn.fp_accumulates = true;
        } else if (!is_control_kw(w)) {
          fn.callees.insert(w);
          fn.call_sites.push_back({w, t_[k].line, k});
          if (w == "sum_ordered") fn.fp_accumulates = true;
        }
      }
    }
  }

  // Direct nondeterminism sources at token k (an identifier): clock reads,
  // thread ids, random_device, env reads, pointer hashing.  rand/srand are
  // left to the dedicated no-std-rand rule.
  void scan_nondet(FunctionInfo& fn, std::size_t k) {
    const std::string& w = t_[k].text;
    const auto add = [&](const std::string& what) {
      fn.nondet_sources.push_back({t_[k].line, what});
    };
    if (w == "now" && k >= 2 && is(k - 1, "::") && ident_at(k - 2) &&
        is(k + 1, "(")) {
      const std::string& c = t_[k - 2].text;
      if (c == "steady_clock" || c == "system_clock" ||
          c == "high_resolution_clock")
        add("std::chrono::" + c + "::now()");
      return;
    }
    if (w == "get_id" && is(k + 1, "(")) {
      add("thread id (get_id)");
      return;
    }
    if (w == "random_device") {
      add("std::random_device");
      return;
    }
    if ((w == "getenv" || w == "secure_getenv") && is(k + 1, "(")) {
      add("environment read (" + w + ")");
      return;
    }
    if (w == "hash" && is(k + 1, "<")) {
      // std::hash<T*> hashes an address: run-to-run nondeterministic under
      // ASLR.  Look for a '*' inside the template argument list.
      int depth = 0;
      for (std::size_t i = k + 1; i <= fn.body_end && i < n_; ++i) {
        if (t_[i].kind != Tok::Punct) continue;
        const std::string& p = t_[i].text;
        if (p == "<")
          ++depth;
        else if (p == ">")
          --depth;
        else if (p == ">>")
          depth -= 2;
        else if (p == "<<")
          depth += 2;
        else if (p == "*" && depth >= 1) {
          add("std::hash over a pointer type");
          return;
        }
        if (depth <= 0) return;
      }
    }
  }

  // @p open is the '(' after a `for`.  Records a RangeFor when the
  // parenthesised head contains a depth-1 ':' (range-based for), capturing
  // the range expression's identifiers and the loop body's direct writes
  // and callees.
  void scan_range_for(FunctionInfo& fn, std::size_t open) {
    const std::size_t close = match(open);
    if (close >= n_) return;
    std::size_t colon = n_;
    int pd = 0;
    for (std::size_t i = open; i < close; ++i) {
      if (t_[i].kind != Tok::Punct) continue;
      if (t_[i].text == ";") return;  // classic for, not range-based
      if (t_[i].text == "(") ++pd;
      if (t_[i].text == ")") --pd;
      if (t_[i].text == ":" && pd == 1 && colon == n_) colon = i;
    }
    if (colon >= close) return;
    RangeFor rf;
    rf.line = t_[open].line;
    for (std::size_t i = colon + 1; i < close; ++i)
      if (t_[i].kind == Tok::Ident) rf.range_idents.insert(t_[i].text);
    // Loop body: the '{...}' block after ')', or the single statement up
    // to the next top-level ';'.
    std::size_t b = close + 1, e = close;
    if (b < n_ && is(b, "{")) {
      e = match(b);
    } else {
      e = b;
      while (e < n_ && !is(e, ";")) {
        if (is(e, "(") || is(e, "[") || is(e, "{")) {
          e = match(e);
          if (e >= n_) break;
        }
        ++e;
      }
    }
    for (std::size_t i = b; i < e && i < n_; ++i) {
      if (t_[i].kind != Tok::Ident) continue;
      if (is_emit_name(t_[i].text)) rf.body_emits = true;
      if (call_open_paren(i) < e && !is_control_kw(t_[i].text))
        rf.body_callees.insert(t_[i].text);
    }
    fn.range_fors.push_back(std::move(rf));
  }

  // -------------------------------------------------------------------------
  // Member-declaration analysis (one ';'-terminated statement at class
  // scope, function definitions already consumed elsewhere).
  // -------------------------------------------------------------------------

  bool stmt_has_ident(const std::vector<std::size_t>& stmt,
                      const char* text) const {
    for (std::size_t k : stmt)
      if (t_[k].kind == Tok::Ident && t_[k].text == text) return true;
    return false;
  }

  void analyze_member(std::vector<std::size_t> stmt, ClassInfo& cls) {
    // Strip access labels glued to the front (`public :`).
    while (stmt.size() >= 2 && t_[stmt[0]].kind == Tok::Ident &&
           (t_[stmt[0]].text == "public" || t_[stmt[0]].text == "private" ||
            t_[stmt[0]].text == "protected") &&
           t_[stmt[1]].text == ":") {
      stmt.erase(stmt.begin(), stmt.begin() + 2);
    }
    if (stmt.empty()) return;
    const std::string& first = t_[stmt[0]].text;
    if (first == "using" || first == "typedef" || first == "friend" ||
        first == "static" || first == "template" || first == "class" ||
        first == "struct" || first == "enum" || first == "union" ||
        first == "namespace" || first == "operator" || first == "explicit" ||
        first == "virtual")
      return;

    // FEMTO_GUARDED_BY annotation: the member name is the identifier just
    // before the macro; the guard is the identifier inside its parens.
    for (std::size_t s = 0; s < stmt.size(); ++s) {
      if (t_[stmt[s]].kind == Tok::Ident &&
          t_[stmt[s]].text == "FEMTO_GUARDED_BY") {
        MemberInfo m;
        m.needs_guard = true;
        if (s > 0 && t_[stmt[s - 1]].kind == Tok::Ident)
          m.name = t_[stmt[s - 1]].text;
        m.line = t_[stmt[s]].line;
        if (s + 2 < stmt.size() && t_[stmt[s + 2]].kind == Tok::Ident)
          m.guard = t_[stmt[s + 2]].text;
        if (!m.name.empty()) cls.members.push_back(std::move(m));
        return;
      }
    }

    if (stmt_has_ident(stmt, "operator")) return;

    // Declarator: the last depth-0 identifier before any top-level
    // initializer.  Angle brackets nest only when opened after an
    // identifier (template argument lists).  A depth-0 '(' directly after
    // an identifier means this is a method *declaration*, not a member.
    int paren = 0, angle = 0;
    std::size_t declarator = stmt.size();
    std::size_t cut = stmt.size();
    for (std::size_t s = 0; s < stmt.size(); ++s) {
      const Token& tk = t_[stmt[s]];
      if (tk.kind == Tok::Punct) {
        const std::string& p = tk.text;
        if (p == "(" || p == "[") {
          if (p == "(" && paren == 0 && angle == 0 && s > 0 &&
              t_[stmt[s - 1]].kind == Tok::Ident)
            return;  // function declaration
          ++paren;
        } else if (p == ")" || p == "]")
          --paren;
        else if (p == "<" && s > 0 && t_[stmt[s - 1]].kind == Tok::Ident)
          ++angle;
        else if (p == ">" && angle > 0)
          --angle;
        else if (p == ">>" && angle > 0)
          angle = angle >= 2 ? angle - 2 : 0;
        else if (p == "=" && paren == 0 && angle == 0) {
          cut = s;
          break;
        }
      }
    }
    paren = angle = 0;
    for (std::size_t s = 0; s < cut; ++s) {
      const Token& tk = t_[stmt[s]];
      if (tk.kind == Tok::Punct) {
        const std::string& p = tk.text;
        if (p == "(" || p == "[")
          ++paren;
        else if (p == ")" || p == "]")
          --paren;
        else if (p == "<" && s > 0 && t_[stmt[s - 1]].kind == Tok::Ident)
          ++angle;
        else if (p == ">" && angle > 0)
          --angle;
        else if (p == ">>" && angle > 0)
          angle = angle >= 2 ? angle - 2 : 0;
      } else if (tk.kind == Tok::Ident && paren == 0 && angle == 0) {
        declarator = s;
      }
    }
    if (declarator >= cut) return;
    // A declarator directly followed by '(' is a function declaration.
    if (declarator + 1 < stmt.size() && t_[stmt[declarator + 1]].text == "(")
      return;

    const std::string name = t_[stmt[declarator]].text;
    const int line = t_[stmt[declarator]].line;
    if (stmt_has_ident(stmt, "mutex")) {
      cls.mutexes.push_back(name);
      return;
    }
    // Synchronisation-adjacent types manage their own thread safety (or,
    // for std::thread handles, are owned by ctor/dtor alone).
    if (stmt_has_ident(stmt, "condition_variable") ||
        stmt_has_ident(stmt, "condition_variable_any") ||
        stmt_has_ident(stmt, "atomic") || stmt_has_ident(stmt, "thread") ||
        stmt_has_ident(stmt, "jthread"))
      return;
    // A const member (not a pointer-to-const) is immutable state.
    bool has_star = false;
    for (std::size_t k : stmt)
      if (t_[k].text == "*") has_star = true;
    if (first == "const" && !has_star) return;

    MemberInfo m;
    m.name = name;
    m.line = line;
    m.needs_guard = true;
    cls.members.push_back(std::move(m));
  }
};

}  // namespace

// ---------------------------------------------------------------------------
// Source queries.
// ---------------------------------------------------------------------------

bool Source::is_header() const {
  return path.size() > 4 && path.compare(path.size() - 4, 4, ".hpp") == 0;
}

bool Source::in_parallel_engine() const {
  return rel.compare(0, 9, "parallel/") == 0 ||
         path.find("src/parallel/") != std::string::npos;
}

bool Source::suppressed(const std::string& rule, int line) const {
  // Mark EVERY matching directive used (overlapping duplicates are both
  // "doing the job"; only directives that match no finding at all are
  // stale), then report whether any matched.
  bool hit = false;
  for (const AllowDirective& d : allow_directives) {
    if (d.rule != rule) continue;
    if (d.file_scope || (line >= d.line && line <= d.end_line + 3)) {
      d.used = true;
      hit = true;
    }
  }
  return hit;
}

std::set<std::string> Source::expected_rules() const {
  std::set<std::string> out;
  const std::string tag = "femtolint-expect:";
  for (const Comment& c : lx.comments) {
    for (std::size_t p = c.text.find(tag); p != std::string::npos;
         p = c.text.find(tag, p + 1)) {
      std::istringstream is(c.text.substr(p + tag.size()));
      std::string id;
      while (is >> id) {
        while (!id.empty() && (id.back() == ',' || id.back() == '.'))
          id.pop_back();
        if (!id.empty()) out.insert(id);
      }
    }
  }
  out.erase("clean");
  return out;
}

// ---------------------------------------------------------------------------
// Parsing.
// ---------------------------------------------------------------------------

Source parse_source(std::string path, const std::string& text) {
  Source s;
  s.path = std::move(path);
  const std::vector<std::string> comps = split_path(s.path);
  for (std::size_t i = comps.size(); i-- > 0;) {
    if (comps[i] == "src" && i + 1 < comps.size()) {
      std::string rel;
      for (std::size_t k = i + 1; k < comps.size(); ++k) {
        if (!rel.empty()) rel += '/';
        rel += comps[k];
      }
      s.rel = rel;
      if (comps.size() - i > 2) s.module_dir = comps[i + 1];
      break;
    }
  }
  s.lx = lex(text);

  // Suppressions, module directive.
  const std::string allow_tag = "femtolint: allow(";
  const std::string allow_file_tag = "femtolint: allow-file(";
  const std::string mod_tag = "femtolint-module:";
  for (const Comment& c : s.lx.comments) {
    for (std::size_t p = c.text.find(allow_file_tag); p != std::string::npos;
         p = c.text.find(allow_file_tag, p + 1)) {
      const std::size_t b = p + allow_file_tag.size();
      const std::size_t e = c.text.find(')', b);
      if (e != std::string::npos)
        s.allow_directives.push_back(
            {c.line, c.end_line, c.text.substr(b, e - b), /*file_scope=*/true});
    }
    for (std::size_t p = c.text.find(allow_tag); p != std::string::npos;
         p = c.text.find(allow_tag, p + 1)) {
      // Don't re-match the tail of "allow-file(".
      if (p >= 5 && c.text.compare(p, allow_file_tag.size(),
                                   allow_file_tag) == 0)
        continue;
      const std::size_t b = p + allow_tag.size();
      const std::size_t e = c.text.find(')', b);
      if (e == std::string::npos) continue;
      s.allow_directives.push_back({c.line, c.end_line,
                                    c.text.substr(b, e - b),
                                    /*file_scope=*/false});
    }
    // The module directive must open the comment (prose *mentioning* the
    // directive, as in this tool's own docs, does not reassign the file).
    std::size_t mp = 0;
    while (mp < c.text.size() &&
           std::isspace(static_cast<unsigned char>(c.text[mp])) != 0)
      ++mp;
    if (c.text.compare(mp, mod_tag.size(), mod_tag) == 0) {
      std::istringstream is(c.text.substr(mp + mod_tag.size()));
      is >> s.module_override;
    }
  }

  // Includes.
  for (const Token& t : s.lx.tokens) {
    if (t.kind != Tok::Pp) continue;
    std::size_t p = t.text.find('#');
    if (p == std::string::npos) continue;
    ++p;
    while (p < t.text.size() &&
           std::isspace(static_cast<unsigned char>(t.text[p])) != 0)
      ++p;
    if (t.text.compare(p, 7, "include") != 0) continue;
    p += 7;
    while (p < t.text.size() &&
           std::isspace(static_cast<unsigned char>(t.text[p])) != 0)
      ++p;
    if (p >= t.text.size()) continue;
    const char open = t.text[p];
    if (open != '"' && open != '<') continue;
    const char close = open == '"' ? '"' : '>';
    const std::size_t e = t.text.find(close, p + 1);
    if (e == std::string::npos) continue;
    s.includes.push_back(
        {t.text.substr(p + 1, e - p - 1), t.line, open == '<'});
  }

  s.unordered_names = find_typed_names(s.lx.tokens, is_unordered_name);
  s.future_names = find_typed_names(s.lx.tokens, is_future_name);
  Extractor(s.lx.tokens, s).run();
  return s;
}

Source load_source(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream os;
  os << in.rdbuf();
  return parse_source(path, os.str());
}

}  // namespace femtolint
