#include "model.hpp"

#include <algorithm>
#include <fstream>
#include <sstream>

namespace femtolint {

namespace {

const char* kLaunchNames[] = {"parallel_for", "parallel_for_chunked",
                              "parallel_reduce", "parallel_reduce2",
                              "parallel_reduce_n"};

bool is_launch_name(const std::string& s) {
  for (const char* n : kLaunchNames)
    if (s == n) return true;
  return false;
}

bool is_control_kw(const std::string& s) {
  return s == "if" || s == "for" || s == "while" || s == "switch" ||
         s == "catch" || s == "return" || s == "sizeof" || s == "alignof" ||
         s == "decltype" || s == "static_assert";
}

std::vector<std::string> split_path(const std::string& p) {
  std::vector<std::string> out;
  std::string cur;
  for (char c : p) {
    if (c == '/' || c == '\\') {
      if (!cur.empty()) out.push_back(cur);
      cur.clear();
    } else {
      cur += c;
    }
  }
  if (!cur.empty()) out.push_back(cur);
  return out;
}

// ---------------------------------------------------------------------------
// Token-tree walker: functions and classes.
// ---------------------------------------------------------------------------

class Extractor {
 public:
  Extractor(const std::vector<Token>& toks, Source& out)
      : t_(toks), n_(toks.size()), out_(out) {}

  void run() { walk(0, n_, /*cls=*/nullptr); }

 private:
  const std::vector<Token>& t_;
  std::size_t n_;
  Source& out_;

  bool is(std::size_t i, const char* text) const {
    return i < n_ && t_[i].text == text;
  }
  bool ident_at(std::size_t i) const {
    return i < n_ && t_[i].kind == Tok::Ident;
  }

  // Matching closer for the (, [ or { at @p open; n_ if unbalanced.
  std::size_t match(std::size_t open) const {
    const std::string& o = t_[open].text;
    const char* c = o == "(" ? ")" : (o == "[" ? "]" : "}");
    int depth = 0;
    for (std::size_t i = open; i < n_; ++i) {
      if (t_[i].kind != Tok::Punct) continue;
      if (t_[i].text == o) ++depth;
      if (t_[i].text == c && --depth == 0) return i;
    }
    return n_;
  }

  // Skip a `template <...>` header starting at the 'template' keyword.
  std::size_t skip_template(std::size_t i) const {
    ++i;
    if (!is(i, "<")) return i;
    int depth = 0;
    for (; i < n_; ++i) {
      if (t_[i].kind != Tok::Punct) continue;
      if (t_[i].text == "<")
        ++depth;
      else if (t_[i].text == ">")
        --depth;
      else if (t_[i].text == ">>")
        depth -= 2;
      else if (t_[i].text == "<<")
        depth += 2;
      if (depth <= 0 && t_[i].text.find('>') != std::string::npos)
        return i + 1;
    }
    return n_;
  }

  // Declaration-scope walk over [begin, end); @p cls non-null inside a
  // class body (collects members into it).
  void walk(std::size_t begin, std::size_t end, ClassInfo* cls) {
    std::vector<std::size_t> stmt;  // pending member-declaration tokens
    for (std::size_t i = begin; i < end;) {
      const Token& tk = t_[i];
      if (tk.kind == Tok::Pp) {
        ++i;
        continue;
      }
      if (tk.kind == Tok::Ident) {
        const std::string& w = tk.text;
        if (w == "template") {
          const std::size_t j = skip_template(i);
          for (std::size_t k = i; k < j; ++k) stmt.push_back(k);
          i = j;
          continue;
        }
        if (w == "namespace" && cls == nullptr) {
          std::size_t j = i + 1;
          while (j < end && !is(j, "{") && !is(j, ";") && !is(j, "=")) ++j;
          if (j < end && is(j, "{")) {
            const std::size_t close = match(j);
            walk(j + 1, close, nullptr);
            i = close + 1;
          } else {
            while (j < end && !is(j, ";")) ++j;  // namespace alias
            i = j + 1;
          }
          stmt.clear();
          continue;
        }
        if (w == "class" || w == "struct" || w == "union") {
          // Find the body '{' or the ';' of a forward declaration.
          std::size_t j = i + 1;
          while (j < end && !is(j, "{") && !is(j, ";") && !is(j, "(")) ++j;
          if (j < end && is(j, "{")) {
            ClassInfo ci;
            ci.line = tk.line;
            if (ident_at(i + 1)) ci.name = t_[i + 1].text;
            const std::size_t close = match(j);
            walk(j + 1, close, &ci);
            out_.classes.push_back(std::move(ci));
            i = close + 1;
            stmt.clear();
            continue;
          }
          // Forward declaration, elaborated type (`struct X x;`), or a
          // function parameter -- fall through to plain accumulation.
        }
        if (w == "enum") {
          std::size_t j = i + 1;
          while (j < end && !is(j, "{") && !is(j, ";")) ++j;
          i = (j < end && is(j, "{")) ? match(j) + 1 : j + 1;
          stmt.clear();
          continue;
        }
        if (w == "using" || w == "typedef" || w == "friend") {
          std::size_t j = i;
          while (j < end && !is(j, ";")) ++j;
          i = j + 1;
          stmt.clear();
          continue;
        }
        if (w == "operator") {
          // Build the operator-id, then treat like a named function.
          std::size_t j = i + 1;
          std::string opname = "operator";
          if (is(j, "(") && is(j + 1, ")")) {
            opname += "()";
            j += 2;
          } else {
            while (j < end && t_[j].kind == Tok::Punct && !is(j, "(")) {
              opname += t_[j].text;
              ++j;
            }
          }
          if (j < end && is(j, "(")) {
            const std::size_t consumed =
                try_function(j, end, opname, cls, /*name_tok=*/i);
            if (consumed != 0) {
              i = consumed;
              stmt.clear();
              continue;
            }
          }
          for (std::size_t k = i; k < j; ++k) stmt.push_back(k);
          i = j;
          continue;
        }
      }
      if (tk.kind == Tok::Punct && tk.text == "(" && i > begin &&
          ident_at(i - 1) && !is_control_kw(t_[i - 1].text)) {
        const std::size_t consumed =
            try_function(i, end, t_[i - 1].text, cls, i - 1);
        if (consumed != 0) {
          i = consumed;
          stmt.clear();
          continue;
        }
      }
      if (tk.kind == Tok::Punct && tk.text == "{") {
        i = match(i) + 1;  // opaque block (initializer list, asm, ...)
        stmt.clear();
        continue;
      }
      if (tk.kind == Tok::Punct && tk.text == ";") {
        if (cls != nullptr) analyze_member(stmt, *cls);
        stmt.clear();
        ++i;
        continue;
      }
      stmt.push_back(i);
      ++i;
    }
  }

  // @p open is the '(' of a candidate function header whose name is
  // @p name (token index @p name_tok).  Returns the token index to resume
  // from if this was a definition (body consumed), 0 otherwise.
  std::size_t try_function(std::size_t open, std::size_t end,
                           const std::string& name, ClassInfo* cls,
                           std::size_t name_tok) {
    const std::size_t close = match(open);
    if (close >= end) return 0;
    std::size_t j = close + 1;
    // Trailing qualifiers: const noexcept(...) override final & &&
    // -> return-type tokens ... up to '{', ';', '=', or ':'.
    while (j < end) {
      if (is(j, "{") || is(j, ";") || is(j, "=") || is(j, ":")) break;
      if (is(j, "(") || is(j, "[")) {
        j = match(j) + 1;
        continue;
      }
      if (is(j, ",") || is(j, ")")) return 0;  // inside an expression
      ++j;
    }
    if (j >= end) return 0;
    std::size_t body = n_;
    if (is(j, "{")) {
      body = j;
    } else if (is(j, ":")) {
      // Constructor initializer list: the body '{' is the first brace NOT
      // preceded by an identifier (member-init braces follow their member
      // name; the body brace follows ')' or '}').
      std::size_t k = j + 1;
      while (k < end) {
        if (is(k, "(")) {
          k = match(k) + 1;
          continue;
        }
        if (is(k, "{")) {
          if (k > 0 && ident_at(k - 1)) {
            k = match(k) + 1;  // brace member-initializer
            continue;
          }
          body = k;
          break;
        }
        if (is(k, ";")) return 0;
        ++k;
      }
    } else {
      return 0;  // declaration, `= default`, or plain expression
    }
    if (body >= end) return 0;

    FunctionInfo fn;
    fn.name = name;
    fn.line = t_[body].line;
    fn.body_begin = body;
    fn.body_end = match(body);
    // Qualifier / scope resolution for the class name.
    std::size_t q = name_tok;
    bool dtor = false;
    if (q > 0 && is(q - 1, "~")) {
      dtor = true;
      --q;
    }
    if (q >= 2 && is(q - 1, "::") && ident_at(q - 2))
      fn.class_name = t_[q - 2].text;
    else if (cls != nullptr)
      fn.class_name = cls->name;
    fn.is_ctor_or_dtor = dtor || (fn.name == fn.class_name);
    scan_body(fn);
    out_.functions.push_back(std::move(fn));
    return out_.functions.back().body_end + 1;
  }

  void scan_body(FunctionInfo& fn) {
    for (std::size_t k = fn.body_begin; k <= fn.body_end && k < n_; ++k) {
      if (t_[k].kind != Tok::Ident) continue;
      const std::string& w = t_[k].text;
      if (w == "flops" && is(k + 1, "::") && k + 2 < n_ &&
          t_[k + 2].text == "add_bytes") {
        fn.charges = true;
        continue;
      }
      if (k + 1 <= fn.body_end && is(k + 1, "(")) {
        if (is_launch_name(w)) {
          if (!fn.launches) {
            fn.launches = true;
            fn.first_launch_line = t_[k].line;
            fn.first_launch_name = w;
          }
        } else if (!is_control_kw(w)) {
          fn.callees.insert(w);
        }
      }
    }
  }

  // -------------------------------------------------------------------------
  // Member-declaration analysis (one ';'-terminated statement at class
  // scope, function definitions already consumed elsewhere).
  // -------------------------------------------------------------------------

  bool stmt_has_ident(const std::vector<std::size_t>& stmt,
                      const char* text) const {
    for (std::size_t k : stmt)
      if (t_[k].kind == Tok::Ident && t_[k].text == text) return true;
    return false;
  }

  void analyze_member(std::vector<std::size_t> stmt, ClassInfo& cls) {
    // Strip access labels glued to the front (`public :`).
    while (stmt.size() >= 2 && t_[stmt[0]].kind == Tok::Ident &&
           (t_[stmt[0]].text == "public" || t_[stmt[0]].text == "private" ||
            t_[stmt[0]].text == "protected") &&
           t_[stmt[1]].text == ":") {
      stmt.erase(stmt.begin(), stmt.begin() + 2);
    }
    if (stmt.empty()) return;
    const std::string& first = t_[stmt[0]].text;
    if (first == "using" || first == "typedef" || first == "friend" ||
        first == "static" || first == "template" || first == "class" ||
        first == "struct" || first == "enum" || first == "union" ||
        first == "namespace" || first == "operator" || first == "explicit" ||
        first == "virtual")
      return;

    // FEMTO_GUARDED_BY annotation: the member name is the identifier just
    // before the macro; the guard is the identifier inside its parens.
    for (std::size_t s = 0; s < stmt.size(); ++s) {
      if (t_[stmt[s]].kind == Tok::Ident &&
          t_[stmt[s]].text == "FEMTO_GUARDED_BY") {
        MemberInfo m;
        m.needs_guard = true;
        if (s > 0 && t_[stmt[s - 1]].kind == Tok::Ident)
          m.name = t_[stmt[s - 1]].text;
        m.line = t_[stmt[s]].line;
        if (s + 2 < stmt.size() && t_[stmt[s + 2]].kind == Tok::Ident)
          m.guard = t_[stmt[s + 2]].text;
        if (!m.name.empty()) cls.members.push_back(std::move(m));
        return;
      }
    }

    if (stmt_has_ident(stmt, "operator")) return;

    // Declarator: the last depth-0 identifier before any top-level
    // initializer.  Angle brackets nest only when opened after an
    // identifier (template argument lists).  A depth-0 '(' directly after
    // an identifier means this is a method *declaration*, not a member.
    int paren = 0, angle = 0;
    std::size_t declarator = stmt.size();
    std::size_t cut = stmt.size();
    for (std::size_t s = 0; s < stmt.size(); ++s) {
      const Token& tk = t_[stmt[s]];
      if (tk.kind == Tok::Punct) {
        const std::string& p = tk.text;
        if (p == "(" || p == "[") {
          if (p == "(" && paren == 0 && angle == 0 && s > 0 &&
              t_[stmt[s - 1]].kind == Tok::Ident)
            return;  // function declaration
          ++paren;
        } else if (p == ")" || p == "]")
          --paren;
        else if (p == "<" && s > 0 && t_[stmt[s - 1]].kind == Tok::Ident)
          ++angle;
        else if (p == ">" && angle > 0)
          --angle;
        else if (p == ">>" && angle > 0)
          angle = angle >= 2 ? angle - 2 : 0;
        else if (p == "=" && paren == 0 && angle == 0) {
          cut = s;
          break;
        }
      }
    }
    paren = angle = 0;
    for (std::size_t s = 0; s < cut; ++s) {
      const Token& tk = t_[stmt[s]];
      if (tk.kind == Tok::Punct) {
        const std::string& p = tk.text;
        if (p == "(" || p == "[")
          ++paren;
        else if (p == ")" || p == "]")
          --paren;
        else if (p == "<" && s > 0 && t_[stmt[s - 1]].kind == Tok::Ident)
          ++angle;
        else if (p == ">" && angle > 0)
          --angle;
        else if (p == ">>" && angle > 0)
          angle = angle >= 2 ? angle - 2 : 0;
      } else if (tk.kind == Tok::Ident && paren == 0 && angle == 0) {
        declarator = s;
      }
    }
    if (declarator >= cut) return;
    // A declarator directly followed by '(' is a function declaration.
    if (declarator + 1 < stmt.size() && t_[stmt[declarator + 1]].text == "(")
      return;

    const std::string name = t_[stmt[declarator]].text;
    const int line = t_[stmt[declarator]].line;
    if (stmt_has_ident(stmt, "mutex")) {
      cls.mutexes.push_back(name);
      return;
    }
    // Synchronisation-adjacent types manage their own thread safety (or,
    // for std::thread handles, are owned by ctor/dtor alone).
    if (stmt_has_ident(stmt, "condition_variable") ||
        stmt_has_ident(stmt, "condition_variable_any") ||
        stmt_has_ident(stmt, "atomic") || stmt_has_ident(stmt, "thread") ||
        stmt_has_ident(stmt, "jthread"))
      return;
    // A const member (not a pointer-to-const) is immutable state.
    bool has_star = false;
    for (std::size_t k : stmt)
      if (t_[k].text == "*") has_star = true;
    if (first == "const" && !has_star) return;

    MemberInfo m;
    m.name = name;
    m.line = line;
    m.needs_guard = true;
    cls.members.push_back(std::move(m));
  }
};

}  // namespace

// ---------------------------------------------------------------------------
// Source queries.
// ---------------------------------------------------------------------------

bool Source::is_header() const {
  return path.size() > 4 && path.compare(path.size() - 4, 4, ".hpp") == 0;
}

bool Source::in_parallel_engine() const {
  return rel.compare(0, 9, "parallel/") == 0 ||
         path.find("src/parallel/") != std::string::npos;
}

bool Source::suppressed(const std::string& rule, int line) const {
  if (file_allows_.count(rule) != 0) return true;
  for (int ln = line - 3; ln <= line; ++ln) {
    auto it = line_allows_.find(ln);
    if (it != line_allows_.end() && it->second.count(rule) != 0) return true;
  }
  return false;
}

std::set<std::string> Source::expected_rules() const {
  std::set<std::string> out;
  const std::string tag = "femtolint-expect:";
  for (const Comment& c : lx.comments) {
    for (std::size_t p = c.text.find(tag); p != std::string::npos;
         p = c.text.find(tag, p + 1)) {
      std::istringstream is(c.text.substr(p + tag.size()));
      std::string id;
      while (is >> id) {
        while (!id.empty() && (id.back() == ',' || id.back() == '.'))
          id.pop_back();
        if (!id.empty()) out.insert(id);
      }
    }
  }
  out.erase("clean");
  return out;
}

// ---------------------------------------------------------------------------
// Parsing.
// ---------------------------------------------------------------------------

Source parse_source(std::string path, const std::string& text) {
  Source s;
  s.path = std::move(path);
  const std::vector<std::string> comps = split_path(s.path);
  for (std::size_t i = comps.size(); i-- > 0;) {
    if (comps[i] == "src" && i + 1 < comps.size()) {
      std::string rel;
      for (std::size_t k = i + 1; k < comps.size(); ++k) {
        if (!rel.empty()) rel += '/';
        rel += comps[k];
      }
      s.rel = rel;
      if (comps.size() - i > 2) s.module_dir = comps[i + 1];
      break;
    }
  }
  s.lx = lex(text);

  // Suppressions, module directive.
  const std::string allow_tag = "femtolint: allow(";
  const std::string allow_file_tag = "femtolint: allow-file(";
  const std::string mod_tag = "femtolint-module:";
  for (const Comment& c : s.lx.comments) {
    for (std::size_t p = c.text.find(allow_file_tag); p != std::string::npos;
         p = c.text.find(allow_file_tag, p + 1)) {
      const std::size_t b = p + allow_file_tag.size();
      const std::size_t e = c.text.find(')', b);
      if (e != std::string::npos)
        s.file_allows_.insert(c.text.substr(b, e - b));
    }
    for (std::size_t p = c.text.find(allow_tag); p != std::string::npos;
         p = c.text.find(allow_tag, p + 1)) {
      // Don't re-match the tail of "allow-file(".
      if (p >= 5 && c.text.compare(p, allow_file_tag.size(),
                                   allow_file_tag) == 0)
        continue;
      const std::size_t b = p + allow_tag.size();
      const std::size_t e = c.text.find(')', b);
      if (e == std::string::npos) continue;
      const std::string rule = c.text.substr(b, e - b);
      for (int ln = c.line; ln <= c.end_line; ++ln)
        s.line_allows_[ln].insert(rule);
    }
    // The module directive must open the comment (prose *mentioning* the
    // directive, as in this tool's own docs, does not reassign the file).
    std::size_t mp = 0;
    while (mp < c.text.size() &&
           std::isspace(static_cast<unsigned char>(c.text[mp])) != 0)
      ++mp;
    if (c.text.compare(mp, mod_tag.size(), mod_tag) == 0) {
      std::istringstream is(c.text.substr(mp + mod_tag.size()));
      is >> s.module_override;
    }
  }

  // Includes.
  for (const Token& t : s.lx.tokens) {
    if (t.kind != Tok::Pp) continue;
    std::size_t p = t.text.find('#');
    if (p == std::string::npos) continue;
    ++p;
    while (p < t.text.size() &&
           std::isspace(static_cast<unsigned char>(t.text[p])) != 0)
      ++p;
    if (t.text.compare(p, 7, "include") != 0) continue;
    p += 7;
    while (p < t.text.size() &&
           std::isspace(static_cast<unsigned char>(t.text[p])) != 0)
      ++p;
    if (p >= t.text.size()) continue;
    const char open = t.text[p];
    if (open != '"' && open != '<') continue;
    const char close = open == '"' ? '"' : '>';
    const std::size_t e = t.text.find(close, p + 1);
    if (e == std::string::npos) continue;
    s.includes.push_back(
        {t.text.substr(p + 1, e - p - 1), t.line, open == '<'});
  }

  Extractor(s.lx.tokens, s).run();
  return s;
}

Source load_source(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream os;
  os << in.rdbuf();
  return parse_source(path, os.str());
}

}  // namespace femtolint
