#pragma once
// femtolint v2 rules.
//
// Per-file rules run independently on one Source (parallelized over files);
// whole-program passes run once over the full Program:
//
//   layering        #include graph of src/ vs. the declared module DAG in
//                   layers.def (cycle-free, every cross-module edge declared)
//   kernel-traffic  transitive: a function that launches a kernel (possibly
//                   via helpers) must charge flops::add_bytes somewhere on
//                   every call chain reaching the launch
//   guarded-by      FEMTO_GUARDED_BY(mu) members only touched in methods
//                   that visibly take `mu`
//   mutex-annotate  a mutex-owning class must annotate every shared mutable
//                   member (or mark it const / atomic)

#include <map>
#include <set>
#include <string>
#include <vector>

#include "model.hpp"

namespace femtolint {

struct Finding {
  std::string file;
  int line = 0;
  std::string rule;
  std::string message;
};

/// Module DAG declared in layers.def.  Line syntax:
///   # comment
///   module <name>: <allowed-dep> <allowed-dep> ...
///   file <src-relative-path> <module>       (reassign one file)
struct LayerSpec {
  bool loaded = false;
  std::string path;  // for error reporting
  std::set<std::string> modules;
  std::map<std::string, std::set<std::string>> allowed;   // module -> deps
  std::map<std::string, std::string> file_overrides;      // rel path -> module
};

/// Parse @p path into @p spec; false + @p err on I/O or syntax error.
bool load_layers(const std::string& path, LayerSpec& spec, std::string& err);

/// Module a source belongs to ("" if it is outside the module tree).
std::string module_of(const Source& s, const LayerSpec& spec);

/// All single-file rules: race-shared-accum, no-std-rand, no-naked-new,
/// pragma-once, header-hygiene, cast.
void run_file_rules(const Source& s, std::vector<Finding>& out);

/// All whole-program passes (layering skipped when !spec.loaded).
void run_program_rules(const Program& prog, const LayerSpec& spec,
                       std::vector<Finding>& out);

/// Deterministic order: (file, line, rule, message).
void sort_findings(std::vector<Finding>& v);

}  // namespace femtolint
