#pragma once
// femtolint v2 rules.
//
// Per-file rules run independently on one Source (parallelized over files);
// whole-program passes run once over the full Program:
//
//   layering        #include graph of src/ vs. the declared module DAG in
//                   layers.def (cycle-free, every cross-module edge declared)
//   kernel-traffic  transitive: a function that launches a kernel (possibly
//                   via helpers) must charge flops::add_bytes somewhere on
//                   every call chain reaching the launch
//   guarded-by      FEMTO_GUARDED_BY(mu) members only touched in methods
//                   that visibly take `mu`
//   mutex-annotate  a mutex-owning class must annotate every shared mutable
//                   member (or mark it const / atomic)

#include <map>
#include <set>
#include <string>
#include <vector>

#include "model.hpp"

namespace femtolint {

struct Finding {
  std::string file;
  int line = 0;
  std::string rule;
  std::string message;
};

/// Module DAG declared in layers.def.  Line syntax:
///   # comment
///   module <name>: <allowed-dep> <allowed-dep> ...
///   file <src-relative-path> <module>       (reassign one file)
struct LayerSpec {
  bool loaded = false;
  std::string path;  // for error reporting
  std::set<std::string> modules;
  std::map<std::string, std::set<std::string>> allowed;   // module -> deps
  std::map<std::string, std::string> file_overrides;      // rel path -> module
};

/// Parse @p path into @p spec; false + @p err on I/O or syntax error.
bool load_layers(const std::string& path, LayerSpec& spec, std::string& err);

/// Trace-category taxonomy declared in trace_categories.def.  Line syntax:
///   # comment
///   category <name>
/// Every FEMTO_TRACE_SCOPE / trace_flow_out / trace_flow_in category
/// argument must be a string literal naming one of these -- the taxonomy
/// file IS the span namespace, so a new category gets design-reviewed the
/// same way a new layer edge does.
struct TraceCategorySpec {
  bool loaded = false;
  std::string path;  // for error reporting
  std::set<std::string> categories;
};

/// Parse @p path into @p spec; false + @p err on I/O or syntax error.
bool load_trace_categories(const std::string& path, TraceCategorySpec& spec,
                           std::string& err);

/// The trace-category rule (skipped when !spec.loaded).
void run_trace_category_rule(const Program& prog,
                             const TraceCategorySpec& spec,
                             std::vector<Finding>& out);

/// Module a source belongs to ("" if it is outside the module tree).
std::string module_of(const Source& s, const LayerSpec& spec);

/// All single-file rules: race-shared-accum, fp-accumulation-discipline,
/// no-std-rand, no-naked-new, pragma-once, header-hygiene, cast,
/// raw-intrinsics.
void run_file_rules(const Source& s, std::vector<Finding>& out);

/// All whole-program passes (layering skipped when !spec.loaded).
void run_program_rules(const Program& prog, const LayerSpec& spec,
                       std::vector<Finding>& out);

/// Whole-program effect census (one entry per direct or transitive
/// holder), reported by `femtolint --json` and BENCH_lint.json.
struct EffectStats {
  std::size_t functions = 0;          // functions in the call graph
  std::size_t launching = 0;          // effect launches_parallel (transitive)
  std::size_t nondet_sources = 0;     // effect nondet_source (direct)
  std::size_t emitting = 0;           // effect emits_output (transitive)
  std::size_t fp_accumulating = 0;    // effect fp_accumulates (direct)
  std::size_t unordered_names = 0;    // distinct unordered-declared names
};

/// Effect inference over the name-based call graph plus the determinism
/// rules built on it: nondet-in-kernel and unordered-iteration-emit
/// (fp-accumulation-discipline is lexical and lives in run_file_rules).
/// Run after run_program_rules; fills @p stats when non-null.
void run_effect_rules(const Program& prog, std::vector<Finding>& out,
                      EffectStats* stats = nullptr);

/// Stale-suppression audit: every allow / allow-file directive that did
/// not suppress a finding is reported.  MUST run last (it reads the `used`
/// marks the other rules leave on directives).
void run_unused_suppression_rule(const Program& prog,
                                 std::vector<Finding>& out);

/// Deterministic order: (file, line, rule, message).
void sort_findings(std::vector<Finding>& v);

}  // namespace femtolint
