#include "rules.hpp"

#include <algorithm>
#include <cstring>
#include <fstream>
#include <functional>
#include <sstream>
#include <tuple>

namespace femtolint {

namespace {

using Tokens = std::vector<Token>;

std::size_t match_fwd(const Tokens& t, std::size_t open) {
  const std::string& o = t[open].text;
  const char* c = o == "(" ? ")" : (o == "[" ? "]" : "}");
  int depth = 0;
  for (std::size_t i = open; i < t.size(); ++i) {
    if (t[i].kind != Tok::Punct) continue;
    if (t[i].text == o) ++depth;
    if (t[i].text == c && --depth == 0) return i;
  }
  return t.size();
}

bool is_member_access(const Tokens& t, std::size_t i) {
  // t[i] is an identifier; true when it is written as `x.id` / `p->id` /
  // `ns::id` (i.e. not a plain unqualified reference).  `this->id` still
  // counts as unqualified for the rules that care.
  if (i == 0) return false;
  const std::string& p = t[i - 1].text;
  return t[i - 1].kind == Tok::Punct &&
         (p == "." || p == "->" || p == "::");
}

bool is_this_access(const Tokens& t, std::size_t i) {
  return i >= 2 && t[i - 1].kind == Tok::Punct && t[i - 1].text == "->" &&
         is_ident(t[i - 2], "this");
}

// ---------------------------------------------------------------------------
// Per-file rules.
// ---------------------------------------------------------------------------

// A name looks *declared* within [b, e) when some occurrence is preceded by
// a type-ish token (identifier, '&', '*', or a closing '>'), or when it is
// a later declarator in a comma list whose statement head declares
// (`double sr = 0.0, si = 0.0;` and `Vec<double, W> racc, iacc;` declare
// si and iacc too).  A comma reached only by leaving a '(' or '[' is an
// argument separator, not a declarator list, and never counts.
bool declared_in(const Tokens& t, std::size_t b, std::size_t e,
                 const std::string& name) {
  const auto type_ish_before = [&](std::size_t i) {
    if (i == 0) return false;
    const Token& p = t[i - 1];
    return p.kind == Tok::Ident || p.text == "&" || p.text == "*" ||
           p.text == ">" || p.text == ">>";
  };
  for (std::size_t i = b; i < e; ++i) {
    if (t[i].kind != Tok::Ident || t[i].text != name || i == 0) continue;
    if (type_ish_before(i)) return true;
    if (!is_punct(t[i - 1], ",")) continue;
    // Walk left to the statement start; bail if we exit a bracket first.
    std::size_t stmt_b = b;
    int depth = 0;
    bool in_args = false;
    for (std::size_t j = i - 1; j > b; --j) {
      const Token& tk = t[j - 1];
      if (tk.kind != Tok::Punct) continue;
      if (tk.text == ")" || tk.text == "]") {
        ++depth;
      } else if (tk.text == "(" || tk.text == "[") {
        if (depth == 0) {
          in_args = true;
          break;
        }
        --depth;
      } else if (depth == 0 &&
                 (tk.text == ";" || tk.text == "{" || tk.text == "}")) {
        stmt_b = j;
        break;
      }
    }
    if (in_args) continue;
    for (std::size_t m = stmt_b; m < i; ++m)
      if (t[m].kind == Tok::Ident && type_ish_before(m)) return true;
  }
  return false;
}

void rule_race_shared_accum(const Source& s, std::vector<Finding>& out) {
  if (s.in_parallel_engine()) return;
  const Tokens& t = s.lx.tokens;

  for (std::size_t k = 0; k + 1 < t.size(); ++k) {
    if (t[k].kind != Tok::Ident) continue;
    const std::string& name = t[k].text;
    if (name != "parallel_for" && name != "parallel_for_chunked") continue;
    if (!is_punct(t[k + 1], "(")) continue;
    const std::size_t call_open = k + 1;
    const std::size_t call_close = match_fwd(t, call_open);
    if (call_close >= t.size()) continue;
    // First '[' at paren depth 1 opens the body lambda's capture list.
    std::size_t cap = t.size();
    int pd = 0;
    for (std::size_t i = call_open; i < call_close; ++i) {
      if (t[i].kind != Tok::Punct) continue;
      if (t[i].text == "(") ++pd;
      if (t[i].text == ")") --pd;
      if (t[i].text == "[" && pd == 1) {
        cap = i;
        break;
      }
    }
    if (cap >= t.size()) continue;
    const std::size_t cap_end = match_fwd(t, cap);
    if (cap_end >= t.size()) continue;
    std::size_t i = cap_end + 1;
    std::size_t params_b = i, params_e = i;
    if (i < t.size() && is_punct(t[i], "(")) {
      params_b = i + 1;
      params_e = match_fwd(t, i);
      if (params_e >= t.size()) continue;
      i = params_e + 1;
    }
    while (i < t.size() && t[i].kind == Tok::Ident) ++i;  // mutable etc.
    if (i >= t.size() || !is_punct(t[i], "{")) continue;
    const std::size_t body_open = i;
    const std::size_t body_close = match_fwd(t, body_open);
    if (body_close >= t.size()) continue;

    for (std::size_t p = body_open + 1; p < body_close; ++p) {
      if (t[p].kind != Tok::Punct) continue;
      const std::string& op = t[p].text;
      if (op != "+=" && op != "-=" && op != "*=" && op != "/=") continue;
      if (p == 0 || t[p - 1].kind != Tok::Ident) continue;  // yd[k] += ok
      const std::size_t id = p - 1;
      if (is_member_access(t, id)) continue;
      const std::string& var = t[id].text;
      if (declared_in(t, params_b, params_e, var)) continue;
      if (declared_in(t, body_open + 1, p, var)) continue;
      const int line = t[p].line;
      if (s.suppressed("race-shared-accum", line)) continue;
      out.push_back(
          {s.path, line, "race-shared-accum",
           "accumulation into captured scalar '" + var + "' inside a " +
               name +
               " body: a data race, and non-deterministic even if atomic; "
               "use parallel_reduce / parallel_reduce_n"});
    }
  }
}

void rule_fp_accum_discipline(const Source& s, std::vector<Finding>& out) {
  // The reduce family's chunk bodies accumulate floating point.  The only
  // discipline that keeps results bitwise reproducible is: accumulate into
  // the per-chunk slot (or a body-local), and let the pool combine chunks
  // in its fixed order.  A compound assignment to a CAPTURED scalar inside
  // a reduce body bypasses that order entirely -- it is the same defect
  // race-shared-accum catches in parallel_for bodies, hidden inside the
  // primitive that was supposed to prevent it.
  if (s.in_parallel_engine()) return;
  const Tokens& t = s.lx.tokens;

  for (std::size_t k = 0; k + 1 < t.size(); ++k) {
    if (t[k].kind != Tok::Ident) continue;
    const std::string& name = t[k].text;
    if (name != "parallel_reduce" && name != "parallel_reduce2" &&
        name != "parallel_reduce_n")
      continue;
    if (!is_punct(t[k + 1], "(")) continue;
    const std::size_t call_open = k + 1;
    const std::size_t call_close = match_fwd(t, call_open);
    if (call_close >= t.size()) continue;
    // First '[' at paren depth 1 opens the chunk-body lambda's captures.
    std::size_t cap = t.size();
    int pd = 0;
    for (std::size_t i = call_open; i < call_close; ++i) {
      if (t[i].kind != Tok::Punct) continue;
      if (t[i].text == "(") ++pd;
      if (t[i].text == ")") --pd;
      if (t[i].text == "[" && pd == 1) {
        cap = i;
        break;
      }
    }
    if (cap >= t.size()) continue;
    const std::size_t cap_end = match_fwd(t, cap);
    if (cap_end >= t.size()) continue;
    std::size_t i = cap_end + 1;
    std::size_t params_b = i, params_e = i;
    if (i < t.size() && is_punct(t[i], "(")) {
      params_b = i + 1;
      params_e = match_fwd(t, i);
      if (params_e >= t.size()) continue;
      i = params_e + 1;
    }
    while (i < t.size() && t[i].kind == Tok::Ident) ++i;  // mutable etc.
    if (i >= t.size() || !is_punct(t[i], "{")) continue;
    const std::size_t body_open = i;
    const std::size_t body_close = match_fwd(t, body_open);
    if (body_close >= t.size()) continue;

    for (std::size_t p = body_open + 1; p < body_close; ++p) {
      if (t[p].kind != Tok::Punct) continue;
      const std::string& op = t[p].text;
      if (op != "+=" && op != "-=" && op != "*=" && op != "/=") continue;
      if (p == 0 || t[p - 1].kind != Tok::Ident) continue;  // acc[0] += ok
      const std::size_t id = p - 1;
      if (is_member_access(t, id)) continue;
      const std::string& var = t[id].text;
      if (declared_in(t, params_b, params_e, var)) continue;
      if (declared_in(t, body_open + 1, p, var)) continue;
      const int line = t[p].line;
      if (s.suppressed("fp-accumulation-discipline", line)) continue;
      out.push_back(
          {s.path, line, "fp-accumulation-discipline",
           "accumulation into captured scalar '" + var + "' inside a " +
               name +
               " body: partials must flow through the per-chunk accumulator "
               "slot (or simd::sum_ordered) so the fixed chunk-order "
               "combination keeps the sum bitwise reproducible"});
    }
  }
}

void rule_no_std_rand(const Source& s, std::vector<Finding>& out) {
  const Tokens& t = s.lx.tokens;
  const auto report = [&](int line, const std::string& what) {
    if (s.suppressed("no-std-rand", line)) return;
    out.push_back({s.path, line, "no-std-rand",
                   what + ": kernels must use the counter-based Xoshiro256 "
                          "(reproducible per global site, thread-count "
                          "independent)"});
  };
  for (std::size_t k = 0; k < t.size(); ++k) {
    if (t[k].kind != Tok::Ident) continue;
    if (t[k].text == "srand" && k + 1 < t.size() && is_punct(t[k + 1], "(")) {
      report(t[k].line, "call to srand");
      continue;
    }
    if (t[k].text != "rand") continue;
    if (k > 0 && is_punct(t[k - 1], "::")) {
      if (k >= 2 && is_ident(t[k - 2], "std"))
        report(t[k].line, "call to std::rand");
      continue;
    }
    if (k > 0 && (is_punct(t[k - 1], ".") || is_punct(t[k - 1], "->")))
      continue;
    if (k + 1 < t.size() && is_punct(t[k + 1], "("))
      report(t[k].line, "call to rand");
  }
}

void rule_no_naked_new(const Source& s, std::vector<Finding>& out) {
  const Tokens& t = s.lx.tokens;
  for (std::size_t k = 0; k < t.size(); ++k) {
    if (t[k].kind != Tok::Ident) continue;
    const std::string& w = t[k].text;
    if (w != "new" && w != "delete") continue;
    if (k > 0 && is_ident(t[k - 1], "operator")) continue;
    // `Foo(const Foo&) = delete;` deletes a function, not memory.
    if (w == "delete" && k > 0 && is_punct(t[k - 1], "=")) continue;
    if (k > 0 && is_punct(t[k - 1], "<")) continue;  // template argument
    const int line = t[k].line;
    if (s.suppressed("no-naked-new", line)) continue;
    out.push_back({s.path, line, "no-naked-new",
                   "naked `" + w +
                       "` in kernel code: ownership belongs in "
                       "std::vector / smart pointers (ASan-clean by "
                       "construction)"});
  }
}

void rule_pragma_once(const Source& s, std::vector<Finding>& out) {
  if (!s.is_header()) return;
  const Tokens& t = s.lx.tokens;
  if (!t.empty() && t[0].kind == Tok::Pp) {
    // Normalise internal whitespace before comparing.
    std::istringstream is(t[0].text.substr(t[0].text.find('#') + 1));
    std::string a, b;
    is >> a >> b;
    if (a == "pragma" && b == "once") return;
  }
  const int line = t.empty() ? 1 : t[0].line;
  if (s.suppressed("pragma-once", line)) return;
  out.push_back(
      {s.path, line, "pragma-once", "header must start with #pragma once"});
}

void rule_header_hygiene(const Source& s, std::vector<Finding>& out) {
  if (!s.is_header()) return;
  const Tokens& t = s.lx.tokens;
  bool has_femto = false;
  for (std::size_t k = 0; k + 1 < t.size(); ++k) {
    if (is_ident(t[k], "using") && is_ident(t[k + 1], "namespace")) {
      const int line = t[k].line;
      if (!s.suppressed("header-hygiene", line))
        out.push_back({s.path, line, "header-hygiene",
                       "`using namespace` in a header leaks into every "
                       "includer"});
    }
    if (is_ident(t[k], "namespace") && t[k + 1].kind == Tok::Ident &&
        t[k + 1].text.compare(0, 5, "femto") == 0)
      has_femto = true;
  }
  if (!has_femto && !s.suppressed("header-hygiene", 1))
    out.push_back({s.path, 1, "header-hygiene",
                   "header declares nothing inside `namespace femto`"});
}

void rule_cast(const Source& s, std::vector<Finding>& out) {
  for (const Token& tk : s.lx.tokens) {
    if (tk.kind != Tok::Ident) continue;
    if (tk.text != "reinterpret_cast" && tk.text != "const_cast") continue;
    if (s.suppressed("cast", tk.line)) continue;
    out.push_back({s.path, tk.line, "cast",
                   tk.text +
                       " requires an explicit `// femtolint: allow(cast): "
                       "why it is safe` suppression (aliasing / constness "
                       "audit trail)"});
  }
}

void rule_raw_intrinsics(const Source& s, std::vector<Finding>& out) {
  // Vendor SIMD belongs in src/simd/ behind the Vec<T, W> interface: the
  // module that may legitimately specialize per ISA.  Everywhere else,
  // kernels must stay width-agnostic so a new target is a new backend in
  // one directory, not a tree-wide audit.
  const std::string m =
      !s.module_override.empty() ? s.module_override : s.module_dir;
  if (m == "simd") return;
  const auto report = [&](int line, const std::string& what) {
    if (s.suppressed("raw-intrinsics", line)) return;
    out.push_back({s.path, line, "raw-intrinsics",
                   what + " outside src/simd/: portable kernels go through "
                          "simd::Vec (femtosimd); per-ISA code lives in the "
                          "simd module only"});
  };
  static const char* const kVendorHeaders[] = {
      "immintrin.h", "x86intrin.h", "emmintrin.h", "xmmintrin.h",
      "pmmintrin.h", "smmintrin.h", "tmmintrin.h", "nmmintrin.h",
      "ammintrin.h", "wmmintrin.h", "arm_neon.h",  "arm_sve.h",
  };
  for (const IncludeEdge& inc : s.includes)
    for (const char* h : kVendorHeaders)
      if (inc.path == h)
        report(inc.line, "#include <" + inc.path + ">");
  const auto starts_with = [](const std::string& w, const char* p) {
    return w.compare(0, std::strlen(p), p) == 0;
  };
  for (const Token& tk : s.lx.tokens) {
    if (tk.kind != Tok::Ident) continue;
    const std::string& w = tk.text;
    const bool x86 = starts_with(w, "_mm") || starts_with(w, "__m128") ||
                     starts_with(w, "__m256") || starts_with(w, "__m512") ||
                     starts_with(w, "__builtin_ia32");
    const bool neon = starts_with(w, "vld1") || starts_with(w, "vst1") ||
                      starts_with(w, "vdupq_") || starts_with(w, "vaddq_") ||
                      starts_with(w, "vsubq_") || starts_with(w, "vmulq_") ||
                      starts_with(w, "vfmaq_") || starts_with(w, "vgetq_") ||
                      starts_with(w, "float32x") ||
                      starts_with(w, "float64x") ||
                      starts_with(w, "int16x") || starts_with(w, "int32x") ||
                      starts_with(w, "uint32x");
    if (x86 || neon)
      report(tk.line, "vendor intrinsic identifier '" + w + "'");
  }
}

// ---------------------------------------------------------------------------
// Whole-program pass: transitive kernel-traffic.
// ---------------------------------------------------------------------------

void pass_kernel_traffic(const Program& prog, std::vector<Finding>& out) {
  struct Node {
    const Source* src = nullptr;
    const FunctionInfo* fn = nullptr;
    std::set<std::size_t> callers;
  };
  std::vector<Node> nodes;
  std::map<std::string, std::vector<std::size_t>> by_name;
  for (const Source& s : prog.sources)
    for (const FunctionInfo& fn : s.functions) {
      by_name[fn.name].push_back(nodes.size());
      nodes.push_back({&s, &fn, {}});
    }
  for (std::size_t i = 0; i < nodes.size(); ++i)
    for (const std::string& callee : nodes[i].fn->callees) {
      auto it = by_name.find(callee);
      if (it == by_name.end()) continue;
      for (std::size_t j : it->second)
        if (j != i) nodes[j].callers.insert(i);
    }

  // A launcher is *covered* when every call chain from a call-graph root
  // down to it passes through a function that charges flops::add_bytes.
  // uncovered(v): v is a root itself, or some caller chain reaches a root
  // without ever charging.
  std::set<std::size_t> stack;
  std::function<bool(std::size_t)> uncovered = [&](std::size_t v) {
    if (nodes[v].callers.empty()) return true;
    stack.insert(v);
    bool result = false;
    for (std::size_t c : nodes[v].callers) {
      if (stack.count(c) != 0) continue;  // recursion cycle: no new root
      if (nodes[c].fn->charges) continue;
      if (uncovered(c)) {
        result = true;
        break;
      }
    }
    stack.erase(v);
    return result;
  };

  for (std::size_t i = 0; i < nodes.size(); ++i) {
    const Node& n = nodes[i];
    if (!n.fn->launches || n.fn->charges) continue;
    if (n.src->in_parallel_engine()) continue;  // the execution engine
    if (!uncovered(i)) continue;
    const int line = n.fn->first_launch_line;
    if (n.src->suppressed("kernel-traffic", line)) continue;
    out.push_back({n.src->path, line, "kernel-traffic",
                   "function '" + n.fn->name + "' launches " +
                       n.fn->first_launch_name +
                       " but no call chain reaching it charges "
                       "flops::add_bytes; the arithmetic-intensity model "
                       "depends on every kernel recording its memory "
                       "traffic"});
  }

  // Compressed-container charge honesty: a kernel that takes a compressed
  // gauge container and charges flops::add_bytes must derive the gauge
  // term from THAT container's bytes() — charging a full-18 field's
  // bytes() would overstate the stream by 1.5-2.6x and silently inflate
  // the femtoscope AI/GB/s derivations.
  for (const Source& s : prog.sources)
    for (const FunctionInfo& fn : s.functions) {
      if (fn.compressed_params.empty() || !fn.charges) continue;
      bool honest = false;
      for (const std::string& p : fn.compressed_params)
        if (fn.charge_bytes_of.count(p) != 0) {
          honest = true;
          break;
        }
      if (honest) continue;
      const int line = fn.first_charge_line;
      if (s.suppressed("kernel-traffic", line)) continue;
      out.push_back(
          {s.path, line, "kernel-traffic",
           "function '" + fn.name +
               "' takes a compressed gauge container ('" +
               *fn.compressed_params.begin() +
               "') but its flops::add_bytes charge never reads that "
               "container's bytes(); compressed links must be charged at "
               "their true stored size"});
    }
}

// ---------------------------------------------------------------------------
// Whole-program pass: lock discipline.
// ---------------------------------------------------------------------------

void pass_lock_discipline(const Program& prog, std::vector<Finding>& out) {
  // mutex-annotate: every mutex-owning class annotates its mutable members.
  for (const Source& s : prog.sources)
    for (const ClassInfo& c : s.classes) {
      if (c.mutexes.empty()) continue;
      for (const MemberInfo& m : c.members) {
        if (!m.needs_guard || !m.guard.empty()) continue;
        if (s.suppressed("mutex-annotate", m.line)) continue;
        out.push_back(
            {s.path, m.line, "mutex-annotate",
             "class '" + c.name + "' owns mutex '" + c.mutexes.front() +
                 "' but member '" + m.name +
                 "' has no FEMTO_GUARDED_BY annotation (annotate it, or "
                 "make it const / std::atomic)"});
      }
    }

  // guarded-by: annotated members only touched while visibly holding the
  // named mutex.  Methods are matched to classes by name (lexical nesting
  // or the `Class::` qualifier), so out-of-line definitions in the .cpp
  // are checked against the annotations in the header.
  std::map<std::string, std::map<std::string, std::string>> guards_by_class;
  for (const Source& s : prog.sources)
    for (const ClassInfo& c : s.classes)
      for (const MemberInfo& m : c.members)
        if (!m.guard.empty()) guards_by_class[c.name][m.name] = m.guard;

  for (const Source& s : prog.sources) {
    const Tokens& t = s.lx.tokens;
    for (const FunctionInfo& fn : s.functions) {
      if (fn.class_name.empty() || fn.is_ctor_or_dtor) continue;
      auto git = guards_by_class.find(fn.class_name);
      if (git == guards_by_class.end()) continue;
      const std::map<std::string, std::string>& guards = git->second;

      // Lock evidence within this body, per mutex name.
      const auto holds = [&](const std::string& mu) {
        bool takes_lock = false, names_mu = false;
        for (std::size_t k = fn.body_begin;
             k <= fn.body_end && k < t.size(); ++k) {
          if (t[k].kind != Tok::Ident) continue;
          const std::string& w = t[k].text;
          if (w == "lock_guard" || w == "unique_lock" ||
              w == "scoped_lock" || w == "shared_lock")
            takes_lock = true;
          else if (w == "lock" && k > 0 &&
                   (is_punct(t[k - 1], ".") || is_punct(t[k - 1], "->")))
            takes_lock = true;
          if (w == mu) names_mu = true;
        }
        return takes_lock && names_mu;
      };

      std::set<std::string> reported;
      for (std::size_t k = fn.body_begin; k <= fn.body_end && k < t.size();
           ++k) {
        if (t[k].kind != Tok::Ident) continue;
        auto mit = guards.find(t[k].text);
        if (mit == guards.end()) continue;
        if (is_member_access(t, k) && !is_this_access(t, k)) continue;
        if (reported.count(mit->first) != 0) continue;
        reported.insert(mit->first);
        if (holds(mit->second)) continue;
        const int line = t[k].line;
        if (s.suppressed("guarded-by", line)) continue;
        out.push_back({s.path, line, "guarded-by",
                       "member '" + mit->first + "' is FEMTO_GUARDED_BY(" +
                           mit->second + ") but '" + fn.class_name +
                           "::" + fn.name +
                           "' touches it without visibly locking " +
                           mit->second});
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Whole-program pass: architecture layering.
// ---------------------------------------------------------------------------

bool find_dag_cycle(const LayerSpec& spec, std::string& cycle) {
  // Colours: 0 white, 1 grey, 2 black.
  std::map<std::string, int> colour;
  std::vector<std::string> path;
  std::function<bool(const std::string&)> dfs = [&](const std::string& m) {
    colour[m] = 1;
    path.push_back(m);
    auto it = spec.allowed.find(m);
    if (it != spec.allowed.end())
      for (const std::string& d : it->second) {
        if (colour[d] == 1) {
          cycle.clear();
          for (const std::string& p : path) cycle += p + " -> ";
          cycle += d;
          return true;
        }
        if (colour[d] == 0 && dfs(d)) return true;
      }
    colour[m] = 2;
    path.pop_back();
    return false;
  };
  for (const std::string& m : spec.modules)
    if (colour[m] == 0 && dfs(m)) return true;
  return false;
}

void pass_layering(const Program& prog, const LayerSpec& spec,
                   std::vector<Finding>& out) {
  if (!spec.loaded) return;
  std::string cycle;
  if (find_dag_cycle(spec, cycle)) {
    out.push_back({spec.path, 1, "layering",
                   "declared module graph has a cycle: " + cycle});
    return;  // edge conformance against a cyclic spec is meaningless
  }
  for (const Source& s : prog.sources) {
    const std::string m = module_of(s, spec);
    if (m.empty()) continue;
    if (spec.modules.count(m) == 0) {
      if (!s.suppressed("layering", 1))
        out.push_back({s.path, 1, "layering",
                       "module '" + m + "' is not declared in " + spec.path});
      continue;
    }
    const auto ait = spec.allowed.find(m);
    for (const IncludeEdge& inc : s.includes) {
      if (inc.system) continue;
      std::string target;
      auto fit = spec.file_overrides.find(inc.path);
      if (fit != spec.file_overrides.end()) {
        target = fit->second;
      } else {
        const std::size_t slash = inc.path.find('/');
        if (slash == std::string::npos) continue;  // sibling include
        target = inc.path.substr(0, slash);
        if (spec.modules.count(target) == 0) continue;  // not a module path
      }
      if (target == m) continue;
      if (ait != spec.allowed.end() && ait->second.count(target) != 0)
        continue;
      if (s.suppressed("layering", inc.line)) continue;
      out.push_back({s.path, inc.line, "layering",
                     "#include \"" + inc.path + "\" crosses modules " + m +
                         " -> " + target + ", which is not an allowed edge "
                         "in " + spec.path});
    }
  }
}

}  // namespace

// ---------------------------------------------------------------------------
// Public entry points.
// ---------------------------------------------------------------------------

bool load_layers(const std::string& path, LayerSpec& spec, std::string& err) {
  std::ifstream in(path);
  if (!in) {
    err = "cannot open " + path;
    return false;
  }
  spec = LayerSpec{};
  spec.path = path;
  std::string line;
  int ln = 0;
  while (std::getline(in, line)) {
    ++ln;
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    for (char& c : line)
      if (c == ':') c = ' ';
    std::istringstream is(line);
    std::string kw;
    if (!(is >> kw)) continue;
    if (kw == "module") {
      std::string name;
      if (!(is >> name)) {
        err = path + ":" + std::to_string(ln) + ": module needs a name";
        return false;
      }
      spec.modules.insert(name);
      std::string dep;
      while (is >> dep) spec.allowed[name].insert(dep);
    } else if (kw == "file") {
      std::string p, mod;
      if (!(is >> p >> mod)) {
        err = path + ":" + std::to_string(ln) +
              ": file needs <path> <module>";
        return false;
      }
      spec.file_overrides[p] = mod;
    } else {
      err = path + ":" + std::to_string(ln) + ": unknown directive '" + kw +
            "' (expected module/file)";
      return false;
    }
  }
  for (const auto& [m, deps] : spec.allowed)
    for (const std::string& d : deps)
      if (spec.modules.count(d) == 0) {
        err = path + ": module '" + m + "' allows undeclared module '" + d +
              "'";
        return false;
      }
  for (const auto& [p, m] : spec.file_overrides)
    if (spec.modules.count(m) == 0) {
      err = path + ": file override '" + p + "' names undeclared module '" +
            m + "'";
      return false;
    }
  spec.loaded = true;
  return true;
}

bool load_trace_categories(const std::string& path, TraceCategorySpec& spec,
                           std::string& err) {
  std::ifstream in(path);
  if (!in) {
    err = "cannot open " + path;
    return false;
  }
  spec = TraceCategorySpec{};
  spec.path = path;
  std::string line;
  int ln = 0;
  while (std::getline(in, line)) {
    ++ln;
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    std::istringstream is(line);
    std::string kw;
    if (!(is >> kw)) continue;
    if (kw != "category") {
      err = path + ":" + std::to_string(ln) + ": unknown directive '" + kw +
            "' (expected category)";
      return false;
    }
    std::string name;
    if (!(is >> name)) {
      err = path + ":" + std::to_string(ln) + ": category needs a name";
      return false;
    }
    spec.categories.insert(name);
  }
  if (spec.categories.empty()) {
    err = path + ": declares no categories";
    return false;
  }
  spec.loaded = true;
  return true;
}

namespace {

// Callables whose FIRST string argument is a femtoscope category.
const char* const kCategoryCallees[] = {"FEMTO_TRACE_SCOPE",
                                        "trace_flow_out", "trace_flow_in"};

}  // namespace

void run_trace_category_rule(const Program& prog,
                             const TraceCategorySpec& spec,
                             std::vector<Finding>& out) {
  if (!spec.loaded) return;
  for (const Source& s : prog.sources) {
    const auto& toks = s.lx.tokens;
    for (std::size_t i = 0; i + 2 < toks.size(); ++i) {
      const Token& t = toks[i];
      if (t.kind != Tok::Ident) continue;
      bool callee = false;
      for (const char* name : kCategoryCallees)
        if (t.text == name) callee = true;
      if (!callee || !is_punct(toks[i + 1], "(")) continue;
      // The macro/function *definition* sites live behind Pp tokens or in
      // obs itself; a parameter forward like trace_flow_out(category, ...)
      // is skipped -- the rule wants literal call sites.
      const Token& arg = toks[i + 2];
      const int line = arg.line;
      if (arg.kind != Tok::Str) {
        if (arg.kind == Tok::Ident && i + 3 < toks.size() &&
            !is_punct(toks[i + 3], ")") && !is_punct(toks[i + 3], ","))
          continue;  // declaration or expression, not a forwarded identifier
        if (s.suppressed("trace-category", line)) continue;
        out.push_back(
            {s.path, line, "trace-category",
             "the category argument of '" + t.text +
                 "' must be a string literal from " + spec.path +
                 " (got a non-literal; literals are what the taxonomy, "
                 "the Chrome export and the flamegraphs key on)"});
        continue;
      }
      // Strip the surrounding quotes the lexer keeps.
      std::string cat = arg.text;
      if (cat.size() >= 2 && cat.front() == '"' && cat.back() == '"')
        cat = cat.substr(1, cat.size() - 2);
      if (spec.categories.count(cat) != 0) continue;
      if (s.suppressed("trace-category", line)) continue;
      out.push_back(
          {s.path, line, "trace-category",
           "span category \"" + cat + "\" is not declared in " + spec.path +
               " -- add it there (design review for the span namespace) or "
               "use an existing category"});
    }
  }
}

std::string module_of(const Source& s, const LayerSpec& spec) {
  if (!s.module_override.empty()) return s.module_override;
  if (!s.rel.empty()) {
    auto it = spec.file_overrides.find(s.rel);
    if (it != spec.file_overrides.end()) return it->second;
  }
  return s.module_dir;
}

void run_file_rules(const Source& s, std::vector<Finding>& out) {
  rule_race_shared_accum(s, out);
  rule_fp_accum_discipline(s, out);
  rule_no_std_rand(s, out);
  rule_no_naked_new(s, out);
  rule_pragma_once(s, out);
  rule_header_hygiene(s, out);
  rule_cast(s, out);
  rule_raw_intrinsics(s, out);
}

void run_program_rules(const Program& prog, const LayerSpec& spec,
                       std::vector<Finding>& out) {
  pass_kernel_traffic(prog, out);
  pass_lock_discipline(prog, out);
  pass_layering(prog, spec, out);
}

// ---------------------------------------------------------------------------
// Whole-program pass: effect inference + determinism rules.
// ---------------------------------------------------------------------------

void run_effect_rules(const Program& prog, std::vector<Finding>& out,
                      EffectStats* stats) {
  struct Node {
    const Source* src = nullptr;
    const FunctionInfo* fn = nullptr;
    std::set<std::size_t> callers;
  };
  constexpr std::size_t kNone = static_cast<std::size_t>(-1);
  std::vector<Node> nodes;
  std::map<std::string, std::vector<std::size_t>> by_name;
  for (const Source& s : prog.sources)
    for (const FunctionInfo& fn : s.functions) {
      by_name[fn.name].push_back(nodes.size());
      nodes.push_back({&s, &fn, {}});
    }
  for (std::size_t i = 0; i < nodes.size(); ++i)
    for (const std::string& callee : nodes[i].fn->callees) {
      auto it = by_name.find(callee);
      if (it == by_name.end()) continue;
      for (std::size_t j : it->second)
        if (j != i) nodes[j].callers.insert(i);
    }

  // Downward fixed point with cycle truncation: memo[v] is the index of a
  // witness function holding the effect reachable from v through callees
  // (v itself included), or kNone.  State 1 = on the DFS stack.
  struct Memo {
    std::vector<std::size_t> witness;
    std::vector<char> state;  // 0 unset, 1 computing, 2 done
  };
  const auto make_memo = [&] {
    Memo m;
    m.witness.assign(nodes.size(), kNone);
    m.state.assign(nodes.size(), 0);
    return m;
  };
  // Transitive witness of @p direct through the callee graph.
  std::function<std::size_t(Memo&, const std::function<bool(std::size_t)>&,
                            std::size_t)>
      reach_down = [&](Memo& m, const std::function<bool(std::size_t)>& direct,
                       std::size_t v) -> std::size_t {
    if (m.state[v] == 2) return m.witness[v];
    if (m.state[v] == 1) return kNone;  // recursion cycle: no new holder
    m.state[v] = 1;
    std::size_t w = direct(v) ? v : kNone;
    if (w == kNone)
      for (const std::string& callee : nodes[v].fn->callees) {
        auto it = by_name.find(callee);
        if (it == by_name.end()) continue;
        for (std::size_t j : it->second) {
          if (j == v) continue;
          w = reach_down(m, direct, j);
          if (w != kNone) break;
        }
        if (w != kNone) break;
      }
    m.state[v] = 2;
    m.witness[v] = w;
    return w;
  };

  Memo launch_memo = make_memo();
  const std::function<bool(std::size_t)> launches_direct =
      [&](std::size_t v) { return nodes[v].fn->launches; };
  const auto launch_witness = [&](std::size_t v) {
    return reach_down(launch_memo, launches_direct, v);
  };

  Memo emit_memo = make_memo();
  const std::function<bool(std::size_t)> emits_direct = [&](std::size_t v) {
    return nodes[v].fn->emits;
  };
  const auto emit_witness = [&](std::size_t v) {
    return reach_down(emit_memo, emits_direct, v);
  };

  // nondet-in-kernel.  A function is "in kernel context" when it launches
  // (transitively), or some transitive CALLER does: its work then shares a
  // dynamic extent with kernel launches, so any unblessed nondeterminism
  // source in it is one helper-inline away from steering numerics.
  Memo ctx_memo = make_memo();
  std::function<std::size_t(std::size_t)> kernel_context =
      [&](std::size_t v) -> std::size_t {
    if (ctx_memo.state[v] == 2) return ctx_memo.witness[v];
    if (ctx_memo.state[v] == 1) return kNone;
    ctx_memo.state[v] = 1;
    std::size_t w = launch_witness(v);
    if (w == kNone)
      for (std::size_t c : nodes[v].callers) {
        w = kernel_context(c);
        if (w != kNone) break;
      }
    ctx_memo.state[v] = 2;
    ctx_memo.witness[v] = w;
    return w;
  };

  for (std::size_t v = 0; v < nodes.size(); ++v) {
    const Node& n = nodes[v];
    if (n.fn->nondet_sources.empty() || n.fn->nondet_ok) continue;
    if (n.src->in_parallel_engine()) continue;  // the execution engine
    const std::size_t w = kernel_context(v);
    if (w == kNone) continue;
    for (const NondetUse& u : n.fn->nondet_sources) {
      if (n.src->suppressed("nondet-in-kernel", u.line)) continue;
      out.push_back(
          {n.src->path, u.line, "nondet-in-kernel",
           "nondeterminism source " + u.what + " in '" + n.fn->name +
               "' sits on a kernel call chain (context: '" +
               nodes[w].fn->name + "' launches " +
               nodes[w].fn->first_launch_name +
               "); time through obs::Stopwatch, hoist the read out of the "
               "kernel path, or bless the function with "
               "FEMTO_NONDET_OK(reason) if the value can never reach "
               "numerics"});
    }
  }

  // unordered-iteration-emit: a range-for over an unordered container
  // whose loop body writes output (directly, or through a transitively
  // emitting callee) serializes hash order -- different run to run.
  std::set<std::string> unordered;
  for (const Source& s : prog.sources)
    unordered.insert(s.unordered_names.begin(), s.unordered_names.end());
  if (!unordered.empty()) {
    for (std::size_t v = 0; v < nodes.size(); ++v) {
      const Node& n = nodes[v];
      for (const RangeFor& rf : n.fn->range_fors) {
        std::string container;
        for (const std::string& id : rf.range_idents)
          if (unordered.count(id) != 0) {
            container = id;
            break;
          }
        if (container.empty()) continue;
        std::string sink;
        if (rf.body_emits) {
          sink = "writes a stream in the loop body";
        } else {
          for (const std::string& c : rf.body_callees) {
            auto it = by_name.find(c);
            if (it == by_name.end()) continue;
            for (std::size_t j : it->second)
              if (emit_witness(j) != kNone) {
                sink = "calls '" + c + "', which writes output";
                break;
              }
            if (!sink.empty()) break;
          }
        }
        if (sink.empty()) continue;
        if (n.src->suppressed("unordered-iteration-emit", rf.line)) continue;
        out.push_back(
            {n.src->path, rf.line, "unordered-iteration-emit",
             "range-for over unordered container '" + container +
                 "' feeds output (" + sink +
                 "): hash order varies run to run, so the emitted "
                 "report/metrics/cache bytes would too; materialize a "
                 "sorted view (std::map, or collect and sort keys) before "
                 "writing"});
      }
    }
  }

  if (stats != nullptr) {
    stats->functions = nodes.size();
    stats->unordered_names = unordered.size();
    for (std::size_t v = 0; v < nodes.size(); ++v) {
      if (launch_witness(v) != kNone) ++stats->launching;
      if (!nodes[v].fn->nondet_sources.empty()) ++stats->nondet_sources;
      if (emit_witness(v) != kNone) ++stats->emitting;
      if (nodes[v].fn->fp_accumulates) ++stats->fp_accumulating;
    }
  }
}

// ---------------------------------------------------------------------------
// Whole-program pass: stale-suppression audit.  Runs LAST.
// ---------------------------------------------------------------------------

void run_unused_suppression_rule(const Program& prog,
                                 std::vector<Finding>& out) {
  for (const Source& s : prog.sources)
    for (const AllowDirective& d : s.allow_directives) {
      if (d.used) continue;
      // A directive about this rule is self-referential (it can only ever
      // be "used" by the pass that is reading it); exempt it.
      if (d.rule == "unused-suppression") continue;
      if (s.suppressed("unused-suppression", d.line)) continue;
      out.push_back(
          {s.path, d.line, "unused-suppression",
           std::string("suppression 'allow") + (d.file_scope ? "-file" : "") +
               "(" + d.rule +
               ")' no longer matches any finding; delete it (stale "
               "suppressions are holes the next regression walks through "
               "unreviewed)"});
    }
}

void sort_findings(std::vector<Finding>& v) {
  std::sort(v.begin(), v.end(), [](const Finding& a, const Finding& b) {
    return std::tie(a.file, a.line, a.rule, a.message) <
           std::tie(b.file, b.line, b.rule, b.message);
  });
}

}  // namespace femtolint
