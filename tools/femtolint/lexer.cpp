#include "lexer.hpp"

#include <cctype>
#include <cstddef>

namespace femtolint {

namespace {

bool ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) != 0 || c == '_';
}
bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}
bool digit(char c) { return std::isdigit(static_cast<unsigned char>(c)) != 0; }

// Multi-character punctuators, longest first (maximal munch).
const char* kPuncts[] = {
    "<<=", ">>=", "->*", "...", "::", "->", "++", "--", "+=", "-=",
    "*=",  "/=",  "%=",  "&=",  "|=", "^=", "<<", ">>", "<=", ">=",
    "==",  "!=",  "&&",  "||",
};

class Lexer {
 public:
  explicit Lexer(const std::string& src) : s_(src) {}

  LexResult run() {
    while (i_ < s_.size()) step();
    out_.n_lines = line_;
    return std::move(out_);
  }

 private:
  const std::string& s_;
  std::size_t i_ = 0;
  int line_ = 1;
  LexResult out_;

  char cur() const { return i_ < s_.size() ? s_[i_] : '\0'; }
  char at(std::size_t k) const { return k < s_.size() ? s_[k] : '\0'; }

  void advance() {
    if (s_[i_] == '\n') ++line_;
    ++i_;
  }

  void emit(Tok kind, std::string text, int line) {
    out_.tokens.push_back({kind, std::move(text), line});
  }

  void step() {
    const char c = cur();
    if (c == '\n' || std::isspace(static_cast<unsigned char>(c)) != 0) {
      advance();
      return;
    }
    if (c == '/' && at(i_ + 1) == '/') return line_comment();
    if (c == '/' && at(i_ + 1) == '*') return block_comment();
    if (c == '#' && at_line_start()) return pp_directive();
    if (c == '"') return string_lit(i_);
    if (c == '\'') return char_lit();
    if (ident_start(c)) return ident();
    if (digit(c) || (c == '.' && digit(at(i_ + 1)))) return number();
    punct();
  }

  // '#' only starts a directive at the beginning of a (whitespace-led)
  // line; in practice that is every '#' outside a literal.
  bool at_line_start() const {
    std::size_t k = i_;
    while (k > 0) {
      const char p = s_[k - 1];
      if (p == '\n') return true;
      if (p != ' ' && p != '\t') return false;
      --k;
    }
    return true;
  }

  void line_comment() {
    const int start = line_;
    advance();  // '/'
    advance();  // '/'
    std::string text;
    while (i_ < s_.size() && cur() != '\n') {
      text += cur();
      advance();
    }
    out_.comments.push_back({start, start, std::move(text)});
  }

  void block_comment() {
    const int start = line_;
    advance();  // '/'
    advance();  // '*'
    std::string text;
    while (i_ < s_.size() && !(cur() == '*' && at(i_ + 1) == '/')) {
      text += cur();
      advance();
    }
    if (i_ < s_.size()) {
      advance();  // '*'
      advance();  // '/'
    }
    out_.comments.push_back({start, line_, std::move(text)});
  }

  // One token for the whole directive; backslash continuations joined.  A
  // trailing // comment on the directive line still lands in comments so
  // suppressions next to an #include keep working.
  void pp_directive() {
    const int start = line_;
    std::string text;
    while (i_ < s_.size()) {
      const char c = cur();
      if (c == '\n') break;
      if (c == '\\' && at(i_ + 1) == '\n') {
        text += ' ';
        advance();
        advance();
        continue;
      }
      if (c == '/' && at(i_ + 1) == '/') {
        line_comment();
        break;
      }
      if (c == '/' && at(i_ + 1) == '*') {
        block_comment();
        text += ' ';
        continue;
      }
      text += c;
      advance();
    }
    emit(Tok::Pp, std::move(text), start);
  }

  // @p begin points at the opening quote.  Handles an already-consumed
  // raw-string prefix via raw_delim (see ident()).  The token keeps the
  // literal's raw text (quotes included): rules never pattern-match inside
  // a Str token by accident -- they must opt in by inspecting t.kind --
  // but value-checking rules (trace-category) need the actual bytes.
  void string_lit(std::size_t begin) {
    const int start = line_;
    advance();  // '"'
    while (i_ < s_.size()) {
      const char c = cur();
      if (c == '\\' && i_ + 1 < s_.size()) {
        advance();
        advance();
        continue;
      }
      advance();
      if (c == '"') break;
    }
    emit(Tok::Str, s_.substr(begin, i_ - begin), start);
  }

  void raw_string_lit() {
    const int start = line_;
    const std::size_t begin = i_;
    advance();  // '"'
    std::string delim;
    while (i_ < s_.size() && cur() != '(' && cur() != '\n') {
      delim += cur();
      advance();
    }
    if (i_ < s_.size()) advance();  // '('
    const std::string closer = ")" + delim + "\"";
    const std::size_t end = s_.find(closer, i_);
    while (i_ < s_.size() && i_ < (end == std::string::npos
                                       ? s_.size()
                                       : end + closer.size()))
      advance();
    emit(Tok::Str, s_.substr(begin, i_ - begin), start);
  }

  void char_lit() {
    const int start = line_;
    advance();  // '\''
    while (i_ < s_.size()) {
      const char c = cur();
      if (c == '\\' && i_ + 1 < s_.size()) {
        advance();
        advance();
        continue;
      }
      advance();
      if (c == '\'' || c == '\n') break;
    }
    emit(Tok::Chr, "''", start);
  }

  void ident() {
    const int start = line_;
    std::string text;
    while (i_ < s_.size() && ident_char(cur())) {
      text += cur();
      advance();
    }
    // Raw / encoded string prefixes glue to the literal: R"(..)", u8R"(..)".
    if (cur() == '"') {
      const bool raw = !text.empty() && text.back() == 'R' &&
                       (text == "R" || text == "LR" || text == "uR" ||
                        text == "UR" || text == "u8R");
      if (raw) return raw_string_lit();
      if (text == "L" || text == "u" || text == "U" || text == "u8")
        return string_lit(i_);
    }
    if (cur() == '\'' &&
        (text == "L" || text == "u" || text == "U" || text == "u8"))
      return char_lit();
    emit(Tok::Ident, std::move(text), start);
  }

  // pp-number: digits, idents, '.', digit separators, exponent signs.
  void number() {
    const int start = line_;
    std::string text;
    while (i_ < s_.size()) {
      const char c = cur();
      if (ident_char(c) || c == '.' || c == '\'') {
        text += c;
        advance();
        if ((c == 'e' || c == 'E' || c == 'p' || c == 'P') &&
            (cur() == '+' || cur() == '-') && !text.empty() &&
            text.find_first_of("xX") == std::string::npos) {
          text += cur();
          advance();
        }
        continue;
      }
      break;
    }
    emit(Tok::Number, std::move(text), start);
  }

  void punct() {
    const int start = line_;
    for (const char* p : kPuncts) {
      const std::size_t n = std::string::traits_type::length(p);
      if (s_.compare(i_, n, p) == 0) {
        for (std::size_t k = 0; k < n; ++k) advance();
        emit(Tok::Punct, p, start);
        return;
      }
    }
    std::string one(1, cur());
    advance();
    emit(Tok::Punct, std::move(one), start);
  }
};

}  // namespace

LexResult lex(const std::string& src) { return Lexer(src).run(); }

}  // namespace femtolint
