#pragma once
// femtolint v4 interprocedural concurrency analysis (DESIGN.md §14).
//
// Two whole-program passes over the name-based call graph:
//
//   lockset propagation   a per-body token walk tracks which mutexes are
//                         held at every call site (RAII guards, explicit
//                         .lock()/.unlock(), condition-variable waits that
//                         release their guard).  Acquisitions nested under
//                         a held mutex — directly or through any callee
//                         chain — become edges of the global lock-order
//                         graph; a cycle in that graph is an interleaving
//                         away from deadlock (rule: lock-order-cycle).
//                         Blocking operations (cv waits, joins, future
//                         gets, pool launches, femtocomm calls) reached
//                         while the lockset is non-empty are flagged
//                         (rule: blocking-call-under-lock) unless the
//                         function is blessed with FEMTO_BLOCKING_OK.
//
//   comm-protocol         Communicator / HaloExchanger primitives are
//                         modelled as typed effects — send, recv (timed
//                         receives count for pairing but not ordering),
//                         and collectives (barrier / allreduce /
//                         broadcast).  Enforced: every call-graph root
//                         whose extent sends must also receive and vice
//                         versa (rule: unpaired-send); no collective may
//                         be reachable only under a rank-dependent branch
//                         (rule: collective-divergence); and a blocking
//                         receive may not lexically precede the matching
//                         same-tag send in one body (rule:
//                         recv-before-send).  FEMTO_PROTOCOL_OK blesses a
//                         deliberately asymmetric protocol step.
//
// Both passes are name-based like every femtolint closure: no overload
// resolution, no aliasing — the same documented limits as DESIGN.md §9,
// traded for a whole-tree scan that runs on every tier-1 build.

#include <string>
#include <vector>

#include "model.hpp"
#include "rules.hpp"

namespace femtolint {

/// Census of the concurrency model, reported by --json / BENCH_lint.json.
struct ConcurrencyStats {
  std::size_t mutexes = 0;        // distinct mutex identities seen acquired
  std::size_t lock_edges = 0;     // edges in the global lock-order graph
  std::size_t blocking_fns = 0;   // functions that block (transitively)
  std::size_t comm_fns = 0;       // functions with comm effects (transitive)
  std::size_t comm_roots = 0;     // call-graph roots with comm in the extent
};

/// Lockset propagation: lock-order-cycle + blocking-call-under-lock.
/// Fills the mutex/edge/blocking fields of @p stats when non-null.
void run_lockset_pass(const Program& prog, std::vector<Finding>& out,
                      ConcurrencyStats* stats = nullptr);

/// Comm-protocol checking: unpaired-send, collective-divergence,
/// recv-before-send.  Fills the comm fields of @p stats when non-null.
void run_protocol_pass(const Program& prog, std::vector<Finding>& out,
                       ConcurrencyStats* stats = nullptr);

/// The global mutex lock-order graph in Graphviz DOT form (--lock-graph):
/// one node per mutex identity, one edge per blessed acquisition order,
/// labelled with the witness call chain.  CI uploads this as an artifact
/// so the canonical order in DESIGN.md §14 can be diffed against reality.
std::string lock_graph_dot(const Program& prog);

}  // namespace femtolint
