#include "concurrency.hpp"

#include <algorithm>
#include <functional>
#include <map>
#include <optional>
#include <set>
#include <sstream>
#include <unordered_set>

namespace femtolint {

namespace {

using Tokens = std::vector<Token>;
constexpr std::size_t kNone = static_cast<std::size_t>(-1);

std::size_t match_fwd(const Tokens& t, std::size_t open) {
  const std::string& o = t[open].text;
  const char* c = o == "(" ? ")" : (o == "[" ? "]" : "}");
  int depth = 0;
  for (std::size_t i = open; i < t.size(); ++i) {
    if (t[i].kind != Tok::Punct) continue;
    if (t[i].text == o) ++depth;
    if (t[i].text == c && --depth == 0) return i;
  }
  return t.size();
}

// Token index just past a template argument list opening at @p open ('<').
std::size_t skip_angles(const Tokens& t, std::size_t open) {
  int depth = 0;
  for (std::size_t i = open; i < t.size(); ++i) {
    if (t[i].kind != Tok::Punct) continue;
    const std::string& p = t[i].text;
    if (p == "<")
      ++depth;
    else if (p == ">")
      --depth;
    else if (p == ">>")
      depth -= 2;
    else if (p == "<<")
      depth += 2;
    else if (p == ";")
      return i;
    if (depth <= 0) return i + 1;
  }
  return t.size();
}

// The '(' opening a call of the identifier at @p k, accepting an explicit
// template-argument list of type-ish tokens (same shape model.cpp accepts).
std::size_t open_paren_after(const Tokens& t, std::size_t k) {
  const std::size_t n = t.size();
  if (k + 1 < n && is_punct(t[k + 1], "(")) return k + 1;
  if (k + 1 >= n || !is_punct(t[k + 1], "<")) return kNone;
  int depth = 0;
  const std::size_t limit = std::min(n, k + 1 + 32);
  for (std::size_t i = k + 1; i < limit; ++i) {
    const Token& tk = t[i];
    if (tk.kind == Tok::Ident || tk.kind == Tok::Number) continue;
    if (tk.kind != Tok::Punct) return kNone;
    if (tk.text == "<") {
      ++depth;
    } else if (tk.text == ">") {
      if (--depth == 0)
        return (i + 1 < n && is_punct(t[i + 1], "(")) ? i + 1 : kNone;
    } else if (tk.text == ">>") {
      depth -= 2;
      if (depth == 0)
        return (i + 1 < n && is_punct(t[i + 1], "(")) ? i + 1 : kNone;
      if (depth < 0) return kNone;
    } else if (tk.text != "::" && tk.text != "," && tk.text != "*" &&
               tk.text != "&") {
      return kNone;
    }
  }
  return kNone;
}

bool member_access_before(const Tokens& t, std::size_t k) {
  return k > 0 && t[k - 1].kind == Tok::Punct &&
         (t[k - 1].text == "." || t[k - 1].text == "->");
}

bool is_guard_name(const std::string& s) {
  return s == "lock_guard" || s == "unique_lock" || s == "scoped_lock" ||
         s == "shared_lock";
}

bool is_launch_name(const std::string& s) {
  return s == "parallel_for" || s == "parallel_for_chunked" ||
         s == "parallel_reduce" || s == "parallel_reduce2" ||
         s == "parallel_reduce_n";
}

bool is_wait_name(const std::string& s) {
  return s == "wait" || s == "wait_for" || s == "wait_until";
}

bool is_send_name(const std::string& s) {
  return s == "send" || s == "send_vec";
}
// Blocking (untimed) receives; `pop` additionally requires arguments at
// the call site so container `.pop()` never matches.
bool is_recv_name(const std::string& s) {
  return s == "recv" || s == "recv_vec" || s == "pop";
}
bool is_timed_recv_name(const std::string& s) {
  return s == "recv_for" || s == "pop_for";
}
bool is_collective_name(const std::string& s) {
  return s == "barrier" || s == "barrier_wait" || s == "allreduce_sum" ||
         s == "broadcast";
}
bool is_comm_name(const std::string& s) {
  return is_send_name(s) || is_recv_name(s) || is_timed_recv_name(s) ||
         is_collective_name(s);
}

// Method names that alias std container / atomic / smart-pointer vocabulary
// program-wide.  The name-based call graph cannot tell `v_.load()` from
// `Autotuner::load()`, and one such mistaken edge fabricates a deadlock
// cycle, so these names never propagate lock or comm effects through a
// call edge (a function so named is still analyzed directly — only bare
// name-matched edges INTO it are dropped).  Documented limit, DESIGN.md §14.
bool is_ubiquitous_name(const std::string& s) {
  static const std::set<std::string> kNames = {
      "load",        "store",     "exchange",   "fetch_add",
      "fetch_sub",   "compare_exchange_weak",   "compare_exchange_strong",
      "reset",       "release",   "get",        "size",
      "empty",       "clear",     "count",      "begin",
      "end",         "cbegin",    "cend",       "rbegin",
      "rend",        "front",     "back",       "data",
      "find",        "at",        "insert",     "erase",
      "emplace",     "emplace_back", "emplace_front",
      "push",        "pop",       "push_back",  "push_front",
      "pop_back",    "pop_front", "reserve",    "resize",
      "swap",        "str",       "c_str",      "substr",
      "append",      "length",    "value",      "has_value",
      "test_and_set"};
  return kNames.count(s) != 0;
}

std::string join_chain(const std::vector<std::string>& chain) {
  std::string out;
  for (const std::string& c : chain) {
    if (!out.empty()) out += " -> ";
    out += c;
  }
  return out;
}

std::string join_held(const std::vector<std::string>& held) {
  std::set<std::string> uniq(held.begin(), held.end());
  std::string out;
  for (const std::string& h : uniq) {
    if (!out.empty()) out += ", ";
    out += h;
  }
  return "{" + out + "}";
}

// ---------------------------------------------------------------------------
// Shared call graph (callees ∪ ctor_callees; caller edges for roots).
// ---------------------------------------------------------------------------

struct Node {
  const Source* src = nullptr;
  const FunctionInfo* fn = nullptr;
  bool has_caller = false;
};

struct CallGraph {
  std::vector<Node> nodes;
  std::map<std::string, std::vector<std::size_t>> by_name;

  void for_each_callee(std::size_t v,
                       const std::function<void(std::size_t)>& f) const {
    const auto visit = [&](const std::set<std::string>& names) {
      for (const std::string& c : names) {
        if (is_ubiquitous_name(c)) continue;
        auto it = by_name.find(c);
        if (it == by_name.end()) continue;
        for (std::size_t j : it->second)
          if (j != v) f(j);
      }
    };
    visit(nodes[v].fn->callees);
    visit(nodes[v].fn->ctor_callees);
  }
};

CallGraph build_graph(const Program& prog) {
  CallGraph g;
  for (const Source& s : prog.sources)
    for (const FunctionInfo& fn : s.functions) {
      g.by_name[fn.name].push_back(g.nodes.size());
      g.nodes.push_back({&s, &fn, false});
    }
  for (std::size_t i = 0; i < g.nodes.size(); ++i)
    g.for_each_callee(i, [&](std::size_t j) { g.nodes[j].has_caller = true; });
  return g;
}

std::string display(const Node& n) {
  return n.fn->class_name.empty() ? n.fn->name
                                  : n.fn->class_name + "::" + n.fn->name;
}

// ---------------------------------------------------------------------------
// Mutex identity: members are qualified by their owning class (every class
// in this tree names its mutex mu_, so the bare name would alias them all);
// function-local mutexes by the declaring function; anything unresolvable
// keeps its bare name.
// ---------------------------------------------------------------------------

struct MutexTable {
  std::map<std::string, std::set<std::string>> owners;  // member -> classes
};

MutexTable build_mutex_table(const Program& prog) {
  MutexTable mt;
  for (const Source& s : prog.sources)
    for (const ClassInfo& c : s.classes)
      for (const std::string& m : c.mutexes)
        if (!c.name.empty()) mt.owners[m].insert(c.name);
  return mt;
}

// ---------------------------------------------------------------------------
// Per-function lockset walk.
// ---------------------------------------------------------------------------

struct LockUse {
  std::string mu;
  int line = 0;
};

struct CallEvent {
  std::string name;  // callee (or constructed type, for make_unique<T>)
  int line = 0;
  std::vector<std::string> held;  // lockset at the call (non-empty)
};

struct BlockEvent {
  std::string what;
  int line = 0;
  std::vector<std::string> held;  // effective lockset (non-empty)
};

struct LockEdgeUse {
  std::string from, to;
  int line = 0;
};

struct FnLockInfo {
  std::vector<LockUse> acquires;       // every acquisition, any lockset
  std::vector<LockUse> blocking;       // every blocking primitive
  std::vector<CallEvent> calls;        // call sites under a held lock
  std::vector<BlockEvent> block_under; // blocking under a held lock
  std::vector<LockEdgeUse> intra_edges;
};

class LockWalker {
 public:
  LockWalker(const Source& s, const FunctionInfo& fn, const MutexTable& mt,
             const std::set<std::string>& future_names)
      : s_(s), t_(s.lx.tokens), fn_(fn), mt_(mt), futures_(future_names) {}

  FnLockInfo run() {
    find_local_mutexes();
    walk();
    return std::move(info_);
  }

 private:
  const Source& s_;
  const Tokens& t_;
  const FunctionInfo& fn_;
  const MutexTable& mt_;
  const std::set<std::string>& futures_;
  FnLockInfo info_;

  struct Guard {
    std::vector<std::string> mus;
    bool active = false;
  };
  std::map<std::string, Guard> guards_;
  std::vector<std::vector<std::string>> scopes_;  // guard vars per scope
  std::vector<std::string> lockset_;
  std::set<std::string> locals_;  // function-local mutex names
  int synth_ = 0;                 // synthetic guard counter for .lock()

  std::string fn_display() const {
    return fn_.class_name.empty() ? fn_.name
                                  : fn_.class_name + "::" + fn_.name;
  }

  std::string resolve(const std::string& name) const {
    if (locals_.count(name) != 0) return fn_display() + "." + name;
    auto it = mt_.owners.find(name);
    if (it != mt_.owners.end()) {
      if (!fn_.class_name.empty() && it->second.count(fn_.class_name) != 0)
        return fn_.class_name + "::" + name;
      if (it->second.size() == 1) return *it->second.begin() + "::" + name;
    }
    return name;
  }

  void find_local_mutexes() {
    // `std::mutex NAME ;` (or `... mutex NAME ;`) inside the body.
    for (std::size_t k = fn_.body_begin;
         k + 2 <= fn_.body_end && k + 2 < t_.size(); ++k) {
      if (!is_ident(t_[k], "mutex")) continue;
      if (t_[k + 1].kind != Tok::Ident) continue;
      if (!is_punct(t_[k + 2], ";") && !is_punct(t_[k + 2], "{")) continue;
      locals_.insert(t_[k + 1].text);
    }
  }

  void acquire(const std::string& mu, int line) {
    for (const std::string& held : std::set<std::string>(lockset_.begin(),
                                                         lockset_.end()))
      info_.intra_edges.push_back({held, mu, line});
    info_.acquires.push_back({mu, line});
    lockset_.push_back(mu);
  }

  void release(const std::string& mu) {
    auto it = std::find(lockset_.begin(), lockset_.end(), mu);
    if (it != lockset_.end()) lockset_.erase(it);
  }

  void release_guard(const std::string& var) {
    auto it = guards_.find(var);
    if (it == guards_.end() || !it->second.active) return;
    it->second.active = false;
    for (const std::string& mu : it->second.mus) release(mu);
  }

  void block(const std::string& what, int line,
             const std::string& released_mu = "") {
    info_.blocking.push_back({what, line});
    std::vector<std::string> eff = lockset_;
    if (!released_mu.empty()) {
      auto it = std::find(eff.begin(), eff.end(), released_mu);
      if (it != eff.end()) eff.erase(it);
    }
    if (!eff.empty()) info_.block_under.push_back({what, line, eff});
  }

  // Last identifier of each top-level comma-separated argument in
  // (open, close): the mutex operands of a guard constructor (`mu_`,
  // `other.mu_`, `stderr_mutex()` all resolve to their final name).
  std::vector<std::string> guard_args(std::size_t open, std::size_t close,
                                      bool& defer) const {
    std::vector<std::string> out;
    std::string last;
    int depth = 0;
    for (std::size_t i = open + 1; i < close; ++i) {
      const Token& tk = t_[i];
      if (tk.kind == Tok::Punct) {
        if (tk.text == "(" || tk.text == "[" || tk.text == "{") ++depth;
        if (tk.text == ")" || tk.text == "]" || tk.text == "}") --depth;
        if (tk.text == "," && depth == 0) {
          if (!last.empty()) out.push_back(last);
          last.clear();
        }
        continue;
      }
      if (tk.kind != Tok::Ident) continue;
      if (tk.text == "std") continue;
      if (tk.text == "defer_lock" || tk.text == "defer_lock_t") {
        defer = true;
        last.clear();
        continue;
      }
      if (tk.text == "adopt_lock" || tk.text == "try_to_lock") {
        last.clear();
        continue;
      }
      last = tk.text;
    }
    if (!last.empty()) out.push_back(last);
    return out;
  }

  void walk() {
    scopes_.push_back({});
    for (std::size_t k = fn_.body_begin + 1;
         k < fn_.body_end && k < t_.size(); ++k) {
      const Token& tk = t_[k];
      if (tk.kind == Tok::Punct) {
        if (tk.text == "{") {
          scopes_.push_back({});
        } else if (tk.text == "}") {
          if (scopes_.size() > 1) {
            for (const std::string& var : scopes_.back())
              release_guard(var);
            scopes_.pop_back();
          }
        }
        continue;
      }
      if (tk.kind != Tok::Ident) continue;
      const std::string& w = tk.text;

      // Fast path: with no lock held, only the small vocabulary below can
      // change walker state, and one hash probe beats the compare cascade
      // (the walk visits every token of every body in the tree).
      static const std::unordered_set<std::string> kInteresting = {
          "lock_guard",    "unique_lock", "scoped_lock",
          "shared_lock",   "lock",        "unlock",
          "wait",          "wait_for",    "wait_until",
          "join",          "sleep_for",   "sleep_until",
          "get",           "parallel_for",
          "parallel_for_chunked",         "parallel_reduce",
          "parallel_reduce2",             "parallel_reduce_n",
          "send",          "send_vec",    "recv",
          "recv_vec",      "recv_for",    "pop",
          "pop_for",       "barrier",     "barrier_wait",
          "allreduce_sum", "broadcast",   "make_unique",
          "make_shared"};
      if (lockset_.empty() && kInteresting.count(w) == 0) continue;

      // RAII guard declaration: `lock_guard<std::mutex> VAR(args);` (also
      // CTAD `std::scoped_lock VAR(a_, b_);`).
      if (is_guard_name(w)) {
        std::size_t j = k + 1;
        if (j < t_.size() && is_punct(t_[j], "<")) j = skip_angles(t_, j);
        if (j + 1 < t_.size() && t_[j].kind == Tok::Ident &&
            is_punct(t_[j + 1], "(")) {
          const std::string var = t_[j].text;
          const std::size_t close = match_fwd(t_, j + 1);
          if (close < t_.size()) {
            bool defer = false;
            std::vector<std::string> mus;
            for (const std::string& a : guard_args(j + 1, close, defer))
              mus.push_back(resolve(a));
            Guard g{mus, false};
            if (!defer) {
              g.active = true;
              for (const std::string& mu : mus) acquire(mu, tk.line);
            }
            guards_[var] = std::move(g);
            scopes_.back().push_back(var);
            k = close;
            continue;
          }
        }
      }

      // Explicit lock()/unlock() on a guard variable or a known mutex.
      if ((w == "lock" || w == "unlock") && member_access_before(t_, k) &&
          k + 1 < t_.size() && is_punct(t_[k + 1], "(") && k >= 2 &&
          t_[k - 2].kind == Tok::Ident) {
        const std::string& recv = t_[k - 2].text;
        auto git = guards_.find(recv);
        if (git != guards_.end()) {
          if (w == "lock" && !git->second.active) {
            git->second.active = true;
            for (const std::string& mu : git->second.mus)
              acquire(mu, tk.line);
          } else if (w == "unlock") {
            release_guard(recv);
          }
          continue;
        }
        if (locals_.count(recv) != 0 ||
            (mt_.owners.count(recv) != 0 && !fn_.class_name.empty() &&
             mt_.owners.at(recv).count(fn_.class_name) != 0)) {
          const std::string mu = resolve(recv);
          if (w == "lock") {
            // Bare .lock(): held until .unlock() or end of function.
            const std::string var = "#raw" + std::to_string(synth_++);
            guards_[var] = Guard{{mu}, true};
            scopes_.front().push_back(var);
            acquire(mu, tk.line);
          } else {
            release(mu);
          }
          continue;
        }
        continue;
      }

      // Condition-variable waits release their guard's mutex for the
      // duration; the blocking check sees the lockset minus that mutex.
      if (is_wait_name(w) && member_access_before(t_, k) &&
          k + 1 < t_.size() && is_punct(t_[k + 1], "(")) {
        std::string released;
        for (std::size_t i = k + 2; i < t_.size(); ++i) {
          if (t_[i].kind == Tok::Ident) {
            auto git = guards_.find(t_[i].text);
            if (git != guards_.end() && git->second.active &&
                !git->second.mus.empty())
              released = git->second.mus.front();
            break;
          }
          if (t_[i].kind == Tok::Punct && t_[i].text != "(") break;
        }
        block("waits on a condition variable", tk.line, released);
        continue;
      }

      if (w == "join" && member_access_before(t_, k) && k + 1 < t_.size() &&
          is_punct(t_[k + 1], "(")) {
        block("joins a thread", tk.line);
        continue;
      }

      if ((w == "sleep_for" || w == "sleep_until") && k + 1 < t_.size() &&
          is_punct(t_[k + 1], "(")) {
        block("sleeps (" + w + ")", tk.line);
        continue;
      }

      if (w == "get" && member_access_before(t_, k) && k + 1 < t_.size() &&
          is_punct(t_[k + 1], "(") && k >= 2 && t_[k - 2].kind == Tok::Ident &&
          futures_.count(t_[k - 2].text) != 0) {
        block("waits on future '" + t_[k - 2].text + "'", tk.line);
        continue;
      }

      if (is_launch_name(w) && k + 1 < t_.size() && is_punct(t_[k + 1], "(")) {
        block("launches parallel work (" + w + ")", tk.line);
        continue;
      }

      if (is_comm_name(w) && member_access_before(t_, k)) {
        const std::size_t open = open_paren_after(t_, k);
        if (open != kNone && open <= fn_.body_end) {
          // Container `.pop()` takes no arguments; comm pop(src, tag) does.
          if (w != "pop" || !is_punct(t_[open + 1], ")")) {
            block("performs femtocomm '" + w + "'", tk.line);
            continue;
          }
        }
      }

      // make_unique<T>( / make_shared<T>( — the hidden ctor call.
      if ((w == "make_unique" || w == "make_shared") && k + 2 < t_.size() &&
          is_punct(t_[k + 1], "<") && t_[k + 2].kind == Tok::Ident) {
        if (!lockset_.empty())
          info_.calls.push_back({t_[k + 2].text, tk.line, lockset_});
        continue;
      }

      // Plain call site under a held lock (ubiquitous std vocabulary never
      // propagates — see is_ubiquitous_name).
      if (!lockset_.empty() && !is_ubiquitous_name(w)) {
        const std::size_t open = open_paren_after(t_, k);
        if (open != kNone && open <= fn_.body_end && !is_guard_name(w) &&
            w != "if" && w != "for" && w != "while" && w != "switch" &&
            w != "return" && w != "sizeof" && w != "catch")
          info_.calls.push_back({w, tk.line, lockset_});
      }
    }
  }
};

// ---------------------------------------------------------------------------
// Whole-program lock analysis: transitive closures + the lock-order graph.
// ---------------------------------------------------------------------------

struct AcqWitness {
  std::vector<std::string> chain;  // caller ... -> acquiring function
  int line = 0;
  const Source* src = nullptr;
};

struct BlockWitness {
  std::string what;
  std::vector<std::string> chain;
};

struct EdgeWitness {
  const Source* src = nullptr;
  int line = 0;
  std::string via;
};

struct LockAnalysis {
  CallGraph g;
  std::vector<FnLockInfo> info;
  std::vector<std::map<std::string, AcqWitness>> tacq;
  std::vector<std::optional<BlockWitness>> tblock;
  // Directed lock-order graph with one representative witness per edge.
  std::map<std::pair<std::string, std::string>, EdgeWitness> edges;
};

LockAnalysis analyze_locks(const Program& prog) {
  LockAnalysis la;
  la.g = build_graph(prog);
  const MutexTable mt = build_mutex_table(prog);
  std::set<std::string> futures;
  for (const Source& s : prog.sources)
    futures.insert(s.future_names.begin(), s.future_names.end());

  const std::size_t n = la.g.nodes.size();
  la.info.resize(n);
  for (std::size_t v = 0; v < n; ++v)
    la.info[v] =
        LockWalker(*la.g.nodes[v].src, *la.g.nodes[v].fn, mt, futures).run();

  // Transitive acquires, with one witness chain per (function, mutex).
  la.tacq.resize(n);
  std::vector<char> astate(n, 0);
  std::function<void(std::size_t)> close_acq = [&](std::size_t v) {
    if (astate[v] != 0) return;  // done, or cycle truncation mid-compute
    astate[v] = 1;
    for (const LockUse& a : la.info[v].acquires)
      if (la.tacq[v].count(a.mu) == 0)
        la.tacq[v][a.mu] = {{display(la.g.nodes[v])}, a.line,
                            la.g.nodes[v].src};
    la.g.for_each_callee(v, [&](std::size_t j) {
      close_acq(j);
      for (const auto& [mu, w] : la.tacq[j])
        if (la.tacq[v].count(mu) == 0) {
          AcqWitness nw = w;
          nw.chain.insert(nw.chain.begin(), display(la.g.nodes[v]));
          la.tacq[v][mu] = std::move(nw);
        }
    });
    astate[v] = 2;
  };
  for (std::size_t v = 0; v < n; ++v) close_acq(v);

  // Transitive blocking witness.
  la.tblock.resize(n);
  std::vector<char> bstate(n, 0);
  std::function<void(std::size_t)> close_blk = [&](std::size_t v) {
    if (bstate[v] != 0) return;
    bstate[v] = 1;
    if (!la.info[v].blocking.empty()) {
      la.tblock[v] = BlockWitness{la.info[v].blocking.front().mu,
                                  {display(la.g.nodes[v])}};
    } else {
      la.g.for_each_callee(v, [&](std::size_t j) {
        if (la.tblock[v]) return;
        close_blk(j);
        if (la.tblock[j]) {
          BlockWitness w = *la.tblock[j];
          w.chain.insert(w.chain.begin(), display(la.g.nodes[v]));
          la.tblock[v] = std::move(w);
        }
      });
    }
    bstate[v] = 2;
  };
  for (std::size_t v = 0; v < n; ++v) close_blk(v);

  // Lock-order edges: intra-body nesting plus call-propagated acquires.
  const auto add_edge = [&](const std::string& from, const std::string& to,
                            const Source* src, int line,
                            const std::string& via) {
    la.edges.emplace(std::make_pair(from, to), EdgeWitness{src, line, via});
  };
  for (std::size_t v = 0; v < n; ++v) {
    const Node& nd = la.g.nodes[v];
    for (const LockEdgeUse& e : la.info[v].intra_edges)
      add_edge(e.from, e.to, nd.src, e.line, display(nd));
    for (const CallEvent& ce : la.info[v].calls) {
      auto it = la.g.by_name.find(ce.name);
      if (it == la.g.by_name.end()) continue;
      for (std::size_t j : it->second) {
        if (j == v) continue;
        for (const auto& [mu, w] : la.tacq[j]) {
          std::vector<std::string> chain = w.chain;
          chain.insert(chain.begin(), display(nd));
          for (const std::string& held :
               std::set<std::string>(ce.held.begin(), ce.held.end()))
            add_edge(held, mu, nd.src, ce.line, join_chain(chain));
        }
      }
    }
  }
  return la;
}

// Cycles in the lock-order graph, deduplicated by canonical rotation.
std::vector<std::vector<std::string>> find_cycles(
    const std::map<std::pair<std::string, std::string>, EdgeWitness>& edges) {
  std::map<std::string, std::vector<std::string>> adj;
  for (const auto& [e, w] : edges) adj[e.first].push_back(e.second);

  std::vector<std::vector<std::string>> cycles;
  std::set<std::string> seen_sig;
  std::vector<std::string> path;
  std::map<std::string, int> colour;  // 0 white, 1 grey, 2 black

  const std::function<void(const std::string&)> dfs =
      [&](const std::string& m) {
        colour[m] = 1;
        path.push_back(m);
        auto it = adj.find(m);
        if (it != adj.end())
          for (const std::string& d : it->second) {
            if (colour[d] == 1) {
              // Cycle: path segment from d to m, closed.
              std::vector<std::string> cyc;
              bool in = false;
              for (const std::string& p : path) {
                if (p == d) in = true;
                if (in) cyc.push_back(p);
              }
              if (cyc.empty()) cyc.push_back(d);  // self edge
              // Canonical rotation: smallest element first.
              const auto mn =
                  std::min_element(cyc.begin(), cyc.end());
              std::rotate(cyc.begin(), mn, cyc.end());
              std::string sig;
              for (const std::string& c : cyc) sig += c + "|";
              if (seen_sig.insert(sig).second) cycles.push_back(cyc);
              continue;
            }
            if (colour[d] == 0) dfs(d);
          }
        colour[m] = 2;
        path.pop_back();
      };
  for (const auto& [m, _] : adj)
    if (colour[m] == 0) dfs(m);
  return cycles;
}

}  // namespace

// ---------------------------------------------------------------------------
// Public entry points.
// ---------------------------------------------------------------------------

void run_lockset_pass(const Program& prog, std::vector<Finding>& out,
                      ConcurrencyStats* stats) {
  const LockAnalysis la = analyze_locks(prog);
  const std::size_t n = la.g.nodes.size();

  // lock-order-cycle: every distinct cycle in the global graph, reported
  // once with the full witness of each edge.
  for (const std::vector<std::string>& cyc : find_cycles(la.edges)) {
    std::string ring;
    std::string detail;
    const EdgeWitness* first = nullptr;
    for (std::size_t i = 0; i < cyc.size(); ++i) {
      const std::string& from = cyc[i];
      const std::string& to = cyc[(i + 1) % cyc.size()];
      ring += from + " -> ";
      auto it = la.edges.find({from, to});
      if (it == la.edges.end()) continue;
      if (first == nullptr) first = &it->second;
      detail += "; " + from + " -> " + to + " via " + it->second.via + " (" +
                it->second.src->path + ":" + std::to_string(it->second.line) +
                ")";
    }
    ring += cyc.front();
    if (first == nullptr) continue;
    if (first->src->suppressed("lock-order-cycle", first->line)) continue;
    out.push_back(
        {first->src->path, first->line, "lock-order-cycle",
         "mutex acquisition cycle " + ring + detail +
             "; two threads interleaving these chains deadlock — impose "
             "one canonical order (DESIGN.md §14) or collapse the locks"});
  }

  // blocking-call-under-lock: direct blocking primitives and transitively
  // blocking callees reached while the lockset is non-empty.
  for (std::size_t v = 0; v < n; ++v) {
    const Node& nd = la.g.nodes[v];
    if (nd.src->in_parallel_engine()) continue;  // the blocking machinery
    if (nd.fn->blocking_ok) continue;
    std::set<int> reported;
    for (const BlockEvent& be : la.info[v].block_under) {
      if (!reported.insert(be.line).second) continue;
      if (nd.src->suppressed("blocking-call-under-lock", be.line)) continue;
      out.push_back(
          {nd.src->path, be.line, "blocking-call-under-lock",
           "'" + display(nd) + "' " + be.what + " while holding " +
               join_held(be.held) +
               "; once femtocomm transports block for real this is a hang "
               "waiting for its schedule — release the lock first, or "
               "bless the function with FEMTO_BLOCKING_OK(reason)"});
    }
    for (const CallEvent& ce : la.info[v].calls) {
      auto it = la.g.by_name.find(ce.name);
      if (it == la.g.by_name.end()) continue;
      for (std::size_t j : it->second) {
        if (j == v || !la.tblock[j]) continue;
        if (!reported.insert(ce.line).second) break;
        if (nd.src->suppressed("blocking-call-under-lock", ce.line)) break;
        out.push_back(
            {nd.src->path, ce.line, "blocking-call-under-lock",
             "'" + display(nd) + "' calls '" + ce.name + "' while holding " +
                 join_held(ce.held) + ", and that call " +
                 la.tblock[j]->what + " (chain: " + display(nd) + " -> " +
                 join_chain(la.tblock[j]->chain) +
                 "); release the lock before the call, or bless with "
                 "FEMTO_BLOCKING_OK(reason)"});
        break;
      }
    }
  }

  if (stats != nullptr) {
    std::set<std::string> mus;
    for (std::size_t v = 0; v < n; ++v) {
      for (const LockUse& a : la.info[v].acquires) mus.insert(a.mu);
      if (la.tblock[v]) ++stats->blocking_fns;
    }
    stats->mutexes = mus.size();
    stats->lock_edges = la.edges.size();
  }
}

std::string lock_graph_dot(const Program& prog) {
  const LockAnalysis la = analyze_locks(prog);
  std::ostringstream os;
  os << "digraph lock_order {\n";
  os << "  // femtolint --lock-graph: mutex acquisition order. An edge\n";
  os << "  // A -> B means some call chain acquires B while holding A.\n";
  os << "  rankdir=LR;\n  node [shape=box, fontname=\"monospace\"];\n";
  std::set<std::string> nodes;
  for (const auto& [e, w] : la.edges) {
    nodes.insert(e.first);
    nodes.insert(e.second);
  }
  for (const std::string& m : nodes) os << "  \"" << m << "\";\n";
  for (const auto& [e, w] : la.edges)
    os << "  \"" << e.first << "\" -> \"" << e.second << "\" [label=\""
       << w.via << "\\n" << w.src->path << ":" << w.line << "\"];\n";
  os << "}\n";
  return os.str();
}

// ---------------------------------------------------------------------------
// Comm-protocol pass.
// ---------------------------------------------------------------------------

namespace {

struct Eff {
  std::string name;
  int line = 0;
  std::string tag;  // first identifier of the 2nd argument ("" if none)
  bool timed = false;
};

struct FnEffects {
  std::vector<Eff> sends, recvs, colls;  // lexical order
};

// Extract the direct comm effects of one function: method calls on the
// Communicator/HaloExchanger families, with the tag identifier of
// point-to-point operations for the ordering rule.
FnEffects direct_effects(const Source& s, const FunctionInfo& fn) {
  FnEffects fx;
  const Tokens& t = s.lx.tokens;
  for (const CallSite& cs : fn.call_sites) {
    if (!is_comm_name(cs.name)) continue;
    // `pop` / `pop_for` collide with std containers: they only count as
    // comm effects as member calls with arguments.  Every other primitive
    // name is comm-specific, so plain sibling calls (`send_vec(...)` inside
    // a Communicator method) count too.
    const bool member = member_access_before(t, cs.tok);
    if ((cs.name == "pop" || cs.name == "pop_for") && !member) continue;
    const std::size_t open = open_paren_after(t, cs.tok);
    if (open == kNone || open > fn.body_end) continue;
    const std::size_t close = match_fwd(t, open);
    if (cs.name == "pop" && open + 1 == close) continue;
    // Tag = first identifier of the second top-level argument.
    std::string tag;
    int depth = 0, arg = 0;
    for (std::size_t i = open + 1; i < close && i < t.size(); ++i) {
      const Token& tk = t[i];
      if (tk.kind == Tok::Punct) {
        if (tk.text == "(" || tk.text == "[" || tk.text == "{") ++depth;
        if (tk.text == ")" || tk.text == "]" || tk.text == "}") --depth;
        if (tk.text == "," && depth == 0) ++arg;
        continue;
      }
      if (arg == 1 && tk.kind == Tok::Ident) {
        tag = tk.text;
        break;
      }
    }
    if (is_send_name(cs.name)) {
      fx.sends.push_back({cs.name, cs.line, tag, false});
    } else if (is_recv_name(cs.name)) {
      fx.recvs.push_back({cs.name, cs.line, tag, false});
    } else if (is_timed_recv_name(cs.name)) {
      fx.recvs.push_back({cs.name, cs.line, tag, true});
    } else if (is_collective_name(cs.name)) {
      fx.colls.push_back({cs.name, cs.line, tag, false});
    }
  }
  return fx;
}

}  // namespace

void run_protocol_pass(const Program& prog, std::vector<Finding>& out,
                       ConcurrencyStats* stats) {
  const CallGraph g = build_graph(prog);
  const std::size_t n = g.nodes.size();
  std::vector<FnEffects> fx(n);
  for (std::size_t v = 0; v < n; ++v)
    fx[v] = direct_effects(*g.nodes[v].src, *g.nodes[v].fn);

  // Transitive send/recv/collective witnesses over the callee graph.
  struct Wit {
    std::string what;
    std::vector<std::string> chain;
  };
  std::vector<std::optional<Wit>> tsend(n), trecv(n), tcoll(n);
  std::vector<char> state(n, 0);
  const std::function<void(std::size_t)> close = [&](std::size_t v) {
    if (state[v] != 0) return;
    state[v] = 1;
    // A function NAMED like a primitive IS that primitive (its body bottoms
    // out in mailbox pushes the effect grammar does not see).
    const std::string& own = g.nodes[v].fn->name;
    if (!fx[v].sends.empty() || is_send_name(own))
      tsend[v] = Wit{fx[v].sends.empty() ? own : fx[v].sends.front().name,
                     {display(g.nodes[v])}};
    if (!fx[v].recvs.empty() || is_recv_name(own) || is_timed_recv_name(own))
      trecv[v] = Wit{fx[v].recvs.empty() ? own : fx[v].recvs.front().name,
                     {display(g.nodes[v])}};
    if (!fx[v].colls.empty() || is_collective_name(own))
      tcoll[v] = Wit{fx[v].colls.empty() ? own : fx[v].colls.front().name,
                     {display(g.nodes[v])}};
    g.for_each_callee(v, [&](std::size_t j) {
      if (tsend[v] && trecv[v] && tcoll[v]) return;
      close(j);
      const auto lift = [&](std::vector<std::optional<Wit>>& tw) {
        if (!tw[v] && tw[j]) {
          Wit w = *tw[j];
          w.chain.insert(w.chain.begin(), display(g.nodes[v]));
          tw[v] = std::move(w);
        }
      };
      lift(tsend);
      lift(trecv);
      lift(tcoll);
    });
    state[v] = 2;
  };
  for (std::size_t v = 0; v < n; ++v) close(v);

  for (std::size_t v = 0; v < n; ++v) {
    const Node& nd = g.nodes[v];
    const FunctionInfo& fn = *nd.fn;
    if (fn.protocol_ok) continue;

    // unpaired-send: a call-graph root whose transitive extent sends but
    // never receives (or vice versa) relies on a partner OUTSIDE the
    // scanned program — with blocking transports that is a hang, not a
    // protocol.
    if (!nd.has_caller && !is_comm_name(fn.name)) {
      const bool s = tsend[v].has_value(), r = trecv[v].has_value();
      if (s != r && !nd.src->suppressed("unpaired-send", fn.line)) {
        const Wit& w = s ? *tsend[v] : *trecv[v];
        out.push_back(
            {nd.src->path, fn.line, "unpaired-send",
             "'" + display(nd) + "' (a call-graph root) " +
                 (s ? "sends" : "receives") + " via " + join_chain(w.chain) +
                 " ('" + w.what + "') but its extent never " +
                 (s ? "receives" : "sends") +
                 "; every root protocol must pair its point-to-point "
                 "traffic or bless the asymmetry with "
                 "FEMTO_PROTOCOL_OK(reason)"});
      }
    }

    // recv-before-send: a blocking receive lexically before the matching
    // same-tag send in the same body deadlocks two symmetric ranks the
    // moment sends block (rendezvous transports).
    for (std::size_t i = 0; i < fx[v].recvs.size(); ++i) {
      const Eff& r = fx[v].recvs[i];
      if (r.timed || r.tag.empty()) continue;
      bool sent_before = false, sent_after = false;
      for (const Eff& s : fx[v].sends) {
        if (s.tag != r.tag) continue;
        (s.line <= r.line ? sent_before : sent_after) = true;
      }
      if (sent_before || !sent_after) continue;
      if (nd.src->suppressed("recv-before-send", r.line)) continue;
      out.push_back(
          {nd.src->path, r.line, "recv-before-send",
           "'" + display(nd) + "' blocks in '" + r.name + "' (tag " + r.tag +
               ") before its matching send of the same tag; two ranks "
               "running this symmetrically deadlock once sends block — "
               "send first, or bless a deliberately asymmetric step with "
               "FEMTO_PROTOCOL_OK(reason)"});
    }

    // collective-divergence: a collective reachable only inside a
    // rank-dependent branch is reached by a subset of ranks; everyone
    // else waits forever.
    const Tokens& t = nd.src->lx.tokens;
    std::set<std::string> tainted = {"rank_"};
    const auto is_rank_read = [&](std::size_t k) {
      if (t[k].kind != Tok::Ident) return false;
      if (tainted.count(t[k].text) != 0) return true;
      return t[k].text == "rank" && member_access_before(t, k) &&
             k + 1 < t.size() && is_punct(t[k + 1], "(");
    };
    // One taint hop: `X = ... .rank() ...` marks X.
    for (std::size_t k = fn.body_begin; k < fn.body_end && k < t.size();
         ++k) {
      if (t[k].kind != Tok::Ident || t[k].text != "rank") continue;
      if (!member_access_before(t, k) || k + 1 >= t.size() ||
          !is_punct(t[k + 1], "("))
        continue;
      for (std::size_t b = k; b > fn.body_begin; --b) {
        if (t[b].kind == Tok::Punct &&
            (t[b].text == ";" || t[b].text == "{" || t[b].text == "}"))
          break;
        if (is_punct(t[b], "=") && b > 0 && t[b - 1].kind == Tok::Ident) {
          tainted.insert(t[b - 1].text);
          break;
        }
      }
    }
    for (std::size_t k = fn.body_begin; k < fn.body_end && k < t.size();
         ++k) {
      if (!is_ident(t[k], "if") || k + 1 >= t.size() ||
          !is_punct(t[k + 1], "("))
        continue;
      const std::size_t cond_close = match_fwd(t, k + 1);
      if (cond_close >= t.size() || cond_close > fn.body_end) continue;
      bool rank_dep = false;
      for (std::size_t i = k + 2; i < cond_close && !rank_dep; ++i)
        rank_dep = is_rank_read(i);
      if (!rank_dep) continue;

      // Branch ranges: the then block/statement, plus the else block.
      std::vector<std::pair<std::size_t, std::size_t>> branches;
      std::size_t b = cond_close + 1;
      const auto push_branch = [&](std::size_t from) -> std::size_t {
        if (from >= t.size()) return from;
        if (is_punct(t[from], "{")) {
          const std::size_t e = match_fwd(t, from);
          branches.push_back({from + 1, e});
          return e + 1;
        }
        std::size_t e = from;
        while (e < t.size() && e <= fn.body_end && !is_punct(t[e], ";")) {
          if (is_punct(t[e], "(") || is_punct(t[e], "[") ||
              is_punct(t[e], "{")) {
            e = match_fwd(t, e);
            if (e >= t.size()) break;
          }
          ++e;
        }
        branches.push_back({from, e});
        return e + 1;
      };
      b = push_branch(b);
      if (b < t.size() && is_ident(t[b], "else")) push_branch(b + 1);

      std::string hit;
      int hit_line = t[k].line;
      for (const auto& [bb, be] : branches) {
        for (std::size_t i = bb; i < be && i < t.size() && hit.empty();
             ++i) {
          if (t[i].kind != Tok::Ident) continue;
          const std::size_t open = open_paren_after(t, i);
          if (open == kNone || open > be) continue;
          if (is_collective_name(t[i].text) && member_access_before(t, i)) {
            hit = "'" + t[i].text + "' directly";
            hit_line = t[i].line;
            break;
          }
          auto bit = g.by_name.find(t[i].text);
          if (bit == g.by_name.end()) continue;
          for (std::size_t j : bit->second)
            if (j != v && tcoll[j]) {
              hit = "'" + tcoll[j]->what + "' via " + t[i].text + " (chain: " +
                    join_chain(tcoll[j]->chain) + ")";
              hit_line = t[i].line;
              break;
            }
        }
        if (!hit.empty()) break;
      }
      if (hit.empty()) continue;
      if (nd.src->suppressed("collective-divergence", hit_line)) continue;
      out.push_back(
          {nd.src->path, hit_line, "collective-divergence",
           "'" + display(nd) + "' reaches collective " + hit +
               " under a rank-dependent branch (if at line " +
               std::to_string(t[k].line) +
               "); ranks that take the other path never enter the "
               "collective and everyone else hangs in it — hoist the "
               "collective out of the branch, or bless with "
               "FEMTO_PROTOCOL_OK(reason)"});
    }
  }

  if (stats != nullptr) {
    for (std::size_t v = 0; v < n; ++v) {
      if (tsend[v] || trecv[v] || tcoll[v]) {
        ++stats->comm_fns;
        if (!g.nodes[v].has_caller) ++stats->comm_roots;
      }
    }
  }
}

}  // namespace femtolint
