// femtolint: repo-specific static analysis for the femtoverse source tree.
//
// v2 is a token-level engine (lexer.cpp + model.cpp + rules.cpp) instead of
// the v1 line-regex scanner: comments, string/char/raw-string literals and
// preprocessor directives are lexed properly, every file is parsed into a
// symbol model (functions, call edges, classes, members, includes), and
// three whole-program passes run over the combined model.  See DESIGN.md §9.
//
// Per-file rules (each with a negative fixture in tests/lint/):
//   race-shared-accum  no compound assignment to captured scalars inside
//                      parallel_for / parallel_for_chunked bodies;
//                      reductions must go through parallel_reduce*
//   fp-accumulation-discipline
//                      inside parallel_reduce* chunk bodies, FP partials
//                      accumulate into the per-chunk slot (or a local),
//                      never a captured scalar: the fixed chunk-order
//                      combination is what makes sums reproducible
//   no-std-rand        no std::rand / srand / rand(): kernels must use the
//                      counter-based Xoshiro256 (reproducible per site)
//   no-naked-new       no naked new / delete in kernel code; containers or
//                      smart pointers own memory
//   pragma-once        headers start with #pragma once
//   header-hygiene     headers declare namespace femto and never say
//                      `using namespace`
//   cast               reinterpret_cast / const_cast require an explicit
//                      suppression stating why the cast is safe
//   raw-intrinsics     vendor SIMD intrinsics (_mm*, NEON v*q_*) and their
//                      headers are forbidden outside src/simd/; kernels use
//                      the portable simd::Vec layer
//
// Whole-program passes:
//   kernel-traffic     transitive: a function that launches a parallel
//                      kernel (directly or through helpers) must charge
//                      flops::add_bytes somewhere on every call chain
//                      (src/parallel, the execution engine, is exempt)
//   layering           the #include graph of src/ must conform to the
//                      module DAG declared in layers.def (--layers)
//   trace-category     every FEMTO_TRACE_SCOPE / trace_flow_out /
//                      trace_flow_in category argument is a string literal
//                      declared in trace_categories.def
//                      (--trace-categories); the taxonomy file IS the span
//                      namespace, so new categories get design-reviewed
//   guarded-by         FEMTO_GUARDED_BY(mu) members are only touched in
//                      methods that visibly take `mu`
//   mutex-annotate     mutex-owning classes annotate all shared mutable
//                      members
//
// Effect-inference passes (v3, DESIGN.md §13): per-function effect sets
// (launches_parallel, fp_accumulates, nondet_source, unordered_iteration,
// emits_output) extracted per file and propagated transitively over the
// name-based call graph:
//   nondet-in-kernel   no unblessed nondeterminism source (std::chrono
//                      *::now, get_id, std::random_device, getenv, pointer
//                      hashing) on or beside a kernel-launching call
//                      chain; FEMTO_NONDET_OK(reason) blesses a function
//   unordered-iteration-emit
//                      a range-for over an unordered_{map,set,...} whose
//                      body writes output (directly or via a transitively
//                      emitting callee) must iterate a sorted view
//   unused-suppression a stale allow / allow-file directive (one that no
//                      longer suppresses anything) is itself a finding
//
// Concurrency passes (v4, DESIGN.md §14): lockset propagation over the same
// call graph, plus comm-protocol checking:
//   lock-order-cycle   a cycle in the global mutex acquisition-order graph
//                      (each edge witnessed by a call chain) is an
//                      interleaving away from deadlock
//   blocking-call-under-lock
//                      cv waits, joins, future gets, pool launches and
//                      femtocomm calls reached while a lockset is held;
//                      FEMTO_BLOCKING_OK(reason) blesses a function
//   unpaired-send      a call-graph root whose extent sends but never
//                      receives (or vice versa)
//   collective-divergence
//                      a barrier/allreduce/broadcast reachable only under a
//                      rank-dependent branch
//   recv-before-send   a blocking receive lexically before the matching
//                      same-tag send in one body (rendezvous deadlock);
//                      FEMTO_PROTOCOL_OK(reason) blesses asymmetric steps
//
// Suppression: `// femtolint: allow(<rule>): reason` on the offending line
// or within the three lines above it, or
// `// femtolint: allow-file(<rule>): reason` anywhere in the file.
// Suppressions live in comments (the lexer keeps them out of the token
// stream), so commented-out code can never trip a rule.
//
// Usage:
//   femtolint [--layers FILE] [--trace-categories FILE] [--json]
//             [--threads N] [--baseline FILE | --write-baseline FILE]
//             <dir-or-file>...
//   femtolint [--layers FILE] [--trace-categories FILE] --self-test <dir>
//   femtolint [--layers FILE] --lock-graph <dir-or-file>...
//
// --write-baseline snapshots the current findings (rule\tfile\tmessage, no
// line numbers, so unrelated edits do not churn it); --baseline filters the
// snapshot out of a later run and fails only on NEW findings.  --lock-graph
// prints the global mutex order as Graphviz DOT (CI uploads it as an
// artifact).
//
// The scan is parallelized over files with the femtopar thread pool;
// findings are sorted (file, line, rule, message), so output is
// deterministic for any thread count.

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <set>
#include <string>
#include <vector>

#include "parallel/thread_pool.hpp"
#include "concurrency.hpp"
#include "model.hpp"
#include "rules.hpp"

namespace {

namespace fs = std::filesystem;
using femtolint::Finding;
using femtolint::LayerSpec;
using femtolint::Program;
using femtolint::Source;
using femtolint::TraceCategorySpec;

bool lintable(const fs::path& p) {
  const std::string e = p.extension().string();
  return e == ".cpp" || e == ".hpp";
}

std::vector<fs::path> collect(const std::vector<std::string>& roots) {
  std::vector<fs::path> files;
  for (const auto& r : roots) {
    const fs::path root(r);
    if (fs::is_regular_file(root)) {
      if (lintable(root)) files.push_back(root);
      continue;
    }
    for (const auto& e : fs::recursive_directory_iterator(root)) {
      if (e.is_regular_file() && lintable(e.path())) files.push_back(e.path());
    }
  }
  std::sort(files.begin(), files.end());
  return files;
}

// Parse every file and run the per-file rules, parallelized over files.
// Each worker writes only its own slots, so the result is deterministic.
Program scan(const std::vector<fs::path>& files, std::size_t threads,
             std::vector<Finding>& findings) {
  Program prog;
  prog.sources.resize(files.size());
  std::vector<std::vector<Finding>> per_file(files.size());
  femto::par::ThreadPool pool(threads);
  // femtolint: allow(kernel-traffic): lint scan is file I/O, not a numerics
  // kernel -- there is no memory-traffic model to charge.
  pool.parallel_for(0, files.size(), [&](std::size_t i) {
    prog.sources[i] = femtolint::load_source(files[i].string());
    femtolint::run_file_rules(prog.sources[i], per_file[i]);
  });
  for (auto& v : per_file)
    findings.insert(findings.end(), v.begin(), v.end());
  return prog;
}

std::string json_escape(const std::string& s) {
  std::string out;
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void print_json(const std::vector<Finding>& all, std::size_t n_files,
                const femtolint::EffectStats& es, double effect_pass_ms,
                const femtolint::ConcurrencyStats& cs, double lockorder_ms,
                double protocol_ms) {
  std::printf("{\n  \"files\": %zu,\n  \"findings\": [", n_files);
  for (std::size_t i = 0; i < all.size(); ++i) {
    const Finding& f = all[i];
    std::printf(
        "%s\n    {\"file\": \"%s\", \"line\": %d, \"rule\": \"%s\", "
        "\"message\": \"%s\"}",
        i == 0 ? "" : ",", json_escape(f.file).c_str(), f.line,
        f.rule.c_str(), json_escape(f.message).c_str());
  }
  std::printf("%s],\n", all.empty() ? "" : "\n  ");
  std::printf(
      "  \"effect_pass_ms\": %.3f,\n"
      "  \"lockorder_pass_ms\": %.3f,\n"
      "  \"protocol_pass_ms\": %.3f,\n"
      "  \"effects\": {\"functions\": %zu, \"launching\": %zu, "
      "\"nondet_sources\": %zu, \"emitting\": %zu, \"fp_accumulating\": "
      "%zu, \"unordered_names\": %zu},\n",
      effect_pass_ms, lockorder_ms, protocol_ms, es.functions, es.launching,
      es.nondet_sources, es.emitting, es.fp_accumulating,
      es.unordered_names);
  std::printf(
      "  \"concurrency\": {\"mutexes\": %zu, \"lock_edges\": %zu, "
      "\"blocking_fns\": %zu, \"comm_fns\": %zu, \"comm_roots\": %zu}\n}\n",
      cs.mutexes, cs.lock_edges, cs.blocking_fns, cs.comm_fns,
      cs.comm_roots);
}

// ---------------------------------------------------------------------------
// Baseline mode: a snapshot of accepted findings, keyed by
// rule\tfile\tmessage (line numbers excluded so unrelated edits above a
// finding do not churn the file).  --baseline filters the snapshot out of
// the current run; only NEW findings fail the build.
// ---------------------------------------------------------------------------

std::string baseline_key(const Finding& f) {
  return f.rule + "\t" + f.file + "\t" + f.message;
}

bool load_baseline(const std::string& path, std::set<std::string>& keys) {
  std::ifstream in(path);
  if (!in) return false;
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty() || line[0] == '#') continue;
    keys.insert(line);
  }
  return true;
}

bool write_baseline(const std::string& path,
                    const std::vector<Finding>& all) {
  std::ofstream out(path);
  if (!out) return false;
  out << "# femtolint baseline: rule\\tfile\\tmessage, one accepted finding "
         "per line.\n"
      << "# Regenerate with `femtolint --write-baseline " << path << " ...`;"
      << " runs with --baseline fail only on findings not listed here.\n";
  for (const Finding& f : all) out << baseline_key(f) << "\n";
  return static_cast<bool>(out);
}

// ---------------------------------------------------------------------------
// Self-test over the negative fixtures: every rule named by a
// `// femtolint-expect:` directive must fire on its fixture and nothing
// else may.  Whole-program passes run with the fixture as a one-file
// program, so the cross-file rules are exercised too.
// ---------------------------------------------------------------------------

int self_test(const std::string& dir, const LayerSpec& spec,
              const TraceCategorySpec& tc) {
  int failures = 0;
  int n_fixtures = 0;
  if (!spec.loaded)
    std::printf(
        "note: no --layers file given; layering fixtures are skipped\n");
  if (!tc.loaded)
    std::printf(
        "note: no --trace-categories file given; trace-category fixtures "
        "are skipped\n");
  for (const fs::path& p : collect({dir})) {
    const Source s = femtolint::load_source(p.string());
    std::set<std::string> want = s.expected_rules();
    if (!spec.loaded && want.count("layering") != 0) continue;
    if (!tc.loaded && want.count("trace-category") != 0) continue;
    bool has_directive = false;
    for (const auto& c : s.lx.comments)
      if (c.text.find("femtolint-expect:") != std::string::npos)
        has_directive = true;
    if (!has_directive) continue;
    ++n_fixtures;
    std::vector<Finding> findings;
    Program prog;
    prog.sources.push_back(s);
    // Rules mark suppressions used on prog's copy; run everything against
    // it so the unused-suppression audit sees the same marks.
    femtolint::run_file_rules(prog.sources.front(), findings);
    femtolint::run_program_rules(prog, spec, findings);
    femtolint::run_trace_category_rule(prog, tc, findings);
    femtolint::run_effect_rules(prog, findings);
    femtolint::run_lockset_pass(prog, findings);
    femtolint::run_protocol_pass(prog, findings);
    femtolint::run_unused_suppression_rule(prog, findings);
    std::set<std::string> got;
    for (const Finding& f : findings) got.insert(f.rule);
    if (want == got) {
      std::printf("ok   %s\n", p.string().c_str());
      continue;
    }
    ++failures;
    std::printf("FAIL %s\n", p.string().c_str());
    for (const auto& r : want)
      if (got.count(r) == 0)
        std::printf("     expected rule did not fire: %s\n", r.c_str());
    for (const auto& r : got)
      if (want.count(r) == 0)
        std::printf("     unexpected rule fired: %s\n", r.c_str());
  }
  if (n_fixtures == 0) {
    std::fprintf(stderr, "femtolint --self-test: no fixtures under %s\n",
                 dir.c_str());
    return 2;
  }
  std::printf("femtolint self-test: %d fixture(s), %d failure(s)\n",
              n_fixtures, failures);
  return failures == 0 ? 0 : 1;
}

int usage() {
  std::fprintf(stderr,
               "usage: femtolint [--layers FILE] [--trace-categories FILE]\n"
               "                 [--json] [--threads N]\n"
               "                 [--baseline FILE | --write-baseline FILE] "
               "<dir-or-file>...\n"
               "       femtolint [--layers FILE] [--trace-categories FILE] "
               "--self-test <fixtures-dir>\n"
               "       femtolint [--layers FILE] --lock-graph "
               "<dir-or-file>...\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  LayerSpec spec;
  TraceCategorySpec tc;
  bool json = false;
  bool lock_graph = false;
  std::size_t threads = 0;  // 0 = femtopar default (hardware concurrency)
  std::string self_test_dir;
  std::string baseline_path;
  std::string write_baseline_path;
  bool want_self_test = false;
  std::vector<std::string> roots;

  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& a = args[i];
    if (a == "--layers") {
      if (i + 1 >= args.size()) return usage();
      std::string err;
      if (!femtolint::load_layers(args[++i], spec, err)) {
        std::fprintf(stderr, "femtolint: %s\n", err.c_str());
        return 2;
      }
    } else if (a == "--trace-categories") {
      if (i + 1 >= args.size()) return usage();
      std::string err;
      if (!femtolint::load_trace_categories(args[++i], tc, err)) {
        std::fprintf(stderr, "femtolint: %s\n", err.c_str());
        return 2;
      }
    } else if (a == "--json") {
      json = true;
    } else if (a == "--lock-graph") {
      lock_graph = true;
    } else if (a == "--threads") {
      if (i + 1 >= args.size()) return usage();
      threads = static_cast<std::size_t>(std::stoul(args[++i]));
    } else if (a == "--baseline") {
      if (i + 1 >= args.size()) return usage();
      baseline_path = args[++i];
    } else if (a == "--write-baseline") {
      if (i + 1 >= args.size()) return usage();
      write_baseline_path = args[++i];
    } else if (a == "--self-test") {
      if (i + 1 >= args.size()) return usage();
      want_self_test = true;
      self_test_dir = args[++i];
    } else if (!a.empty() && a[0] == '-') {
      return usage();
    } else {
      roots.push_back(a);
    }
  }
  if (!baseline_path.empty() && !write_baseline_path.empty()) return usage();

  if (want_self_test) {
    if (!roots.empty()) return usage();
    return self_test(self_test_dir, spec, tc);
  }
  if (roots.empty()) return usage();

  const std::vector<fs::path> files = collect(roots);
  std::vector<Finding> all;
  const Program prog = scan(files, threads, all);

  if (lock_graph) {
    // Graph emission only: print the mutex acquisition-order DOT and exit
    // clean (CI uploads the output as an artifact; findings come from the
    // normal run).
    std::fputs(femtolint::lock_graph_dot(prog).c_str(), stdout);
    return 0;
  }

  femtolint::run_program_rules(prog, spec, all);
  femtolint::run_trace_category_rule(prog, tc, all);
  femtolint::EffectStats es;
  const auto e0 = std::chrono::steady_clock::now();
  femtolint::run_effect_rules(prog, all, &es);
  const auto e1 = std::chrono::steady_clock::now();
  femtolint::ConcurrencyStats cs;
  femtolint::run_lockset_pass(prog, all, &cs);
  const auto e2 = std::chrono::steady_clock::now();
  femtolint::run_protocol_pass(prog, all, &cs);
  const auto e3 = std::chrono::steady_clock::now();
  const auto ms = [](auto a, auto b) {
    return std::chrono::duration<double, std::milli>(b - a).count();
  };
  const double effect_pass_ms = ms(e0, e1);
  const double lockorder_pass_ms = ms(e1, e2);
  const double protocol_pass_ms = ms(e2, e3);
  femtolint::run_unused_suppression_rule(prog, all);
  femtolint::sort_findings(all);

  if (!write_baseline_path.empty()) {
    if (!write_baseline(write_baseline_path, all)) {
      std::fprintf(stderr, "femtolint: cannot write baseline %s\n",
                   write_baseline_path.c_str());
      return 2;
    }
    std::printf("femtolint: wrote %zu finding(s) to baseline %s\n",
                all.size(), write_baseline_path.c_str());
    return 0;
  }
  std::size_t suppressed_by_baseline = 0;
  if (!baseline_path.empty()) {
    std::set<std::string> keys;
    if (!load_baseline(baseline_path, keys)) {
      std::fprintf(stderr, "femtolint: cannot read baseline %s\n",
                   baseline_path.c_str());
      return 2;
    }
    std::vector<Finding> fresh;
    for (Finding& f : all) {
      if (keys.count(baseline_key(f)) != 0)
        ++suppressed_by_baseline;
      else
        fresh.push_back(std::move(f));
    }
    all = std::move(fresh);
  }

  if (json) {
    print_json(all, files.size(), es, effect_pass_ms, cs, lockorder_pass_ms,
               protocol_pass_ms);
  } else {
    for (const Finding& f : all)
      std::printf("%s:%d: [%s] %s\n", f.file.c_str(), f.line, f.rule.c_str(),
                  f.message.c_str());
    if (suppressed_by_baseline > 0)
      std::printf("femtolint: %zu new finding(s) in %zu file(s) "
                  "(%zu baselined)\n",
                  all.size(), files.size(), suppressed_by_baseline);
    else
      std::printf("femtolint: %zu finding(s) in %zu file(s)\n", all.size(),
                  files.size());
  }
  return all.empty() ? 0 : 1;
}
