// femtolint: repo-specific static checks for the femtoverse source tree.
//
// The tier-1 numerics tests cannot see two whole classes of bug that the
// fused-kernel architecture makes possible: a kernel that forgets to charge
// the flops/bytes counters silently corrupts the arithmetic-intensity model
// the solver analysis rests on, and an accumulation into a captured scalar
// inside a parallel_for body is a data race that happens to produce nearly
// right numbers.  femtolint walks the source text and enforces these
// invariants at build time; it runs as a tier-1 ctest (label `lint`).
//
// Rules (each with a negative fixture in tests/lint/):
//   kernel-traffic     functions that launch a parallel kernel must charge
//                      flops::add / flops::add_bytes (src/parallel itself,
//                      the execution engine, is exempt)
//   race-shared-accum  no compound assignment to captured scalars inside
//                      parallel_for / parallel_for_chunked bodies;
//                      reductions must go through parallel_reduce*
//   no-std-rand        no std::rand / srand / rand(): kernels must use the
//                      counter-based Xoshiro256 (reproducible per site)
//   no-naked-new       no naked new / delete in kernel code; containers or
//                      smart pointers own memory
//   pragma-once        headers start with #pragma once
//   header-hygiene     headers declare namespace femto and never say
//                      `using namespace`
//   cast               reinterpret_cast / const_cast require an explicit
//                      suppression stating why the cast is safe
//
// Suppression: `// femtolint: allow(<rule>): reason` on the offending line
// or within the three lines above it.
//
// Usage:
//   femtolint <dir-or-file>...        lint (exit 1 on findings)
//   femtolint --self-test <dir>       run the negative fixtures: every
//                                     `// femtolint-expect: <rule>` in a
//                                     fixture must fire, and nothing else

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

namespace {

namespace fs = std::filesystem;

struct Finding {
  std::string file;
  int line = 0;
  std::string rule;
  std::string message;
};

bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

// ---------------------------------------------------------------------------
// Source model: raw text, comment/string-stripped text (same length, so
// offsets agree), line table, and raw lines for suppression comments.
// ---------------------------------------------------------------------------

struct Source {
  std::string path;
  std::string raw;
  std::string stripped;
  std::vector<std::size_t> line_starts;
  std::vector<std::string> lines;

  int line_of(std::size_t pos) const {
    auto it = std::upper_bound(line_starts.begin(), line_starts.end(), pos);
    return static_cast<int>(it - line_starts.begin());
  }

  // A `// femtolint: allow(<rule>)` comment on the finding's line or within
  // the three lines above it suppresses the finding.
  bool suppressed(const std::string& rule, int line) const {
    const std::string needle = "femtolint: allow(" + rule + ")";
    for (int ln = std::max(1, line - 3); ln <= line; ++ln) {
      if (lines[static_cast<std::size_t>(ln - 1)].find(needle) !=
          std::string::npos)
        return true;
    }
    return false;
  }
};

// Blank comments and string/char literal contents (newlines kept so line
// numbers survive).
std::string strip(const std::string& src) {
  std::string out = src;
  enum class St { Code, Line, Block, Str, Chr };
  St st = St::Code;
  for (std::size_t i = 0; i < src.size(); ++i) {
    const char c = src[i];
    const char n = i + 1 < src.size() ? src[i + 1] : '\0';
    switch (st) {
      case St::Code:
        if (c == '/' && n == '/') {
          st = St::Line;
          out[i] = ' ';
        } else if (c == '/' && n == '*') {
          st = St::Block;
          out[i] = ' ';
        } else if (c == '"') {
          st = St::Str;
        } else if (c == '\'') {
          st = St::Chr;
        }
        break;
      case St::Line:
        if (c == '\n')
          st = St::Code;
        else
          out[i] = ' ';
        break;
      case St::Block:
        if (c == '*' && n == '/') {
          out[i] = ' ';
          out[i + 1] = ' ';
          ++i;
          st = St::Code;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
      case St::Str:
        if (c == '\\' && n != '\0') {
          out[i] = ' ';
          out[i + 1] = ' ';
          ++i;
        } else if (c == '"') {
          st = St::Code;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
      case St::Chr:
        if (c == '\\' && n != '\0') {
          out[i] = ' ';
          out[i + 1] = ' ';
          ++i;
        } else if (c == '\'') {
          st = St::Code;
        } else {
          out[i] = ' ';
        }
        break;
    }
  }
  return out;
}

Source load(const fs::path& p) {
  Source s;
  s.path = p.string();
  std::ifstream in(p, std::ios::binary);
  std::ostringstream os;
  os << in.rdbuf();
  s.raw = os.str();
  s.stripped = strip(s.raw);
  s.line_starts.push_back(0);
  std::string cur;
  for (std::size_t i = 0; i < s.raw.size(); ++i) {
    if (s.raw[i] == '\n') {
      s.lines.push_back(cur);
      cur.clear();
      if (i + 1 < s.raw.size()) s.line_starts.push_back(i + 1);
    } else {
      cur += s.raw[i];
    }
  }
  s.lines.push_back(cur);
  return s;
}

// Next occurrence of @p word at an identifier boundary, from @p from.
std::size_t find_word(const std::string& text, const std::string& word,
                      std::size_t from) {
  for (std::size_t p = text.find(word, from); p != std::string::npos;
       p = text.find(word, p + 1)) {
    const bool lb = p == 0 || !ident_char(text[p - 1]);
    const std::size_t e = p + word.size();
    const bool rb = e >= text.size() || !ident_char(text[e]);
    if (lb && rb) return p;
  }
  return std::string::npos;
}

std::size_t skip_ws_back(const std::string& t, std::size_t i) {
  while (i != std::string::npos && i > 0 &&
         std::isspace(static_cast<unsigned char>(t[i])) != 0)
    --i;
  return i;
}

std::size_t skip_ws_fwd(const std::string& t, std::size_t i) {
  while (i < t.size() && std::isspace(static_cast<unsigned char>(t[i])) != 0)
    ++i;
  return i;
}

// Identifier ending at (and including) position i; empty if none.
std::string ident_ending_at(const std::string& t, std::size_t i) {
  if (i >= t.size() || !ident_char(t[i])) return "";
  std::size_t b = i;
  while (b > 0 && ident_char(t[b - 1])) --b;
  return t.substr(b, i - b + 1);
}

// Matching '(' for the ')' at @p close, scanning backwards.
std::size_t match_paren_back(const std::string& t, std::size_t close) {
  int depth = 0;
  for (std::size_t i = close;; --i) {
    if (t[i] == ')') ++depth;
    if (t[i] == '(') {
      --depth;
      if (depth == 0) return i;
    }
    if (i == 0) break;
  }
  return std::string::npos;
}

// Matching closer for the opener at @p open ('(' / '[' / '{').
std::size_t match_fwd(const std::string& t, std::size_t open) {
  const char o = t[open];
  const char c = o == '(' ? ')' : (o == '[' ? ']' : '}');
  int depth = 0;
  for (std::size_t i = open; i < t.size(); ++i) {
    if (t[i] == o) ++depth;
    if (t[i] == c) {
      --depth;
      if (depth == 0) return i;
    }
  }
  return std::string::npos;
}

// ---------------------------------------------------------------------------
// Brace regions and enclosing-function lookup.
// ---------------------------------------------------------------------------

struct Region {
  std::size_t open = 0;
  std::size_t close = 0;
};

std::vector<Region> brace_regions(const std::string& t) {
  std::vector<Region> out;
  std::vector<std::size_t> stack;
  std::vector<std::size_t> idx_stack;
  for (std::size_t i = 0; i < t.size(); ++i) {
    if (t[i] == '{') {
      stack.push_back(i);
      out.push_back({i, t.size()});
      idx_stack.push_back(out.size() - 1);
    } else if (t[i] == '}' && !stack.empty()) {
      out[idx_stack.back()].close = i;
      stack.pop_back();
      idx_stack.pop_back();
    }
  }
  return out;
}

enum class BlockKind { Function, Control, Other };

// What kind of block does the '{' at @p open start?  Classified from the
// text just before it: function/lambda bodies follow a ')' (after optional
// const/noexcept/etc.), control blocks follow if/for/while/switch/catch,
// everything else (namespace, class, initializer) is Other.
BlockKind classify(const std::string& t, std::size_t open) {
  if (open == 0) return BlockKind::Other;
  std::size_t i = skip_ws_back(t, open - 1);
  // Skip trailing qualifiers between ')' and '{'.
  for (;;) {
    const std::string id = ident_ending_at(t, i);
    if (id == "const" || id == "noexcept" || id == "override" ||
        id == "mutable" || id == "final") {
      i = skip_ws_back(t, i - id.size());
      continue;
    }
    break;
  }
  if (t[i] == ')') {
    const std::size_t op = match_paren_back(t, i);
    if (op == std::string::npos) return BlockKind::Other;
    if (op == 0) return BlockKind::Function;
    std::size_t j = skip_ws_back(t, op - 1);
    if (t[j] == ']') return BlockKind::Function;  // lambda
    const std::string kw = ident_ending_at(t, j);
    if (kw == "if" || kw == "for" || kw == "while" || kw == "switch" ||
        kw == "catch")
      return BlockKind::Control;
    return BlockKind::Function;
  }
  const std::string kw = ident_ending_at(t, i);
  if (kw == "else" || kw == "do" || kw == "try") return BlockKind::Control;
  return BlockKind::Other;
}

// Innermost function (or lambda) body containing @p pos; npos-pair if none.
Region enclosing_function(const std::vector<Region>& regions,
                          const std::string& t, std::size_t pos) {
  Region best{std::string::npos, std::string::npos};
  std::size_t best_size = std::string::npos;
  for (const Region& r : regions) {
    if (!(r.open < pos && pos < r.close)) continue;
    const std::size_t size = r.close - r.open;
    if (size >= best_size) continue;
    // Walk from this innermost candidate outward is implicit: we pick the
    // smallest function-like region containing pos after skipping control
    // blocks (a control block's enclosing function also contains pos and
    // is itself function-like).
    if (classify(t, r.open) == BlockKind::Function) {
      best = r;
      best_size = size;
    }
  }
  return best;
}

// ---------------------------------------------------------------------------
// Launch-site discovery shared by kernel-traffic and race-shared-accum.
// ---------------------------------------------------------------------------

struct Launch {
  std::size_t pos = 0;      // start of the kernel-launch identifier
  std::string name;         // parallel_for / parallel_for_chunked / ...
};

std::vector<Launch> find_launches(const Source& s) {
  static const char* kNames[] = {"parallel_for_chunked", "parallel_reduce_n",
                                 "parallel_reduce2", "parallel_reduce",
                                 "parallel_for"};
  std::vector<Launch> out;
  for (const char* name : kNames) {
    const std::string w = name;
    for (std::size_t p = find_word(s.stripped, w, 0); p != std::string::npos;
         p = find_word(s.stripped, w, p + 1)) {
      // Only call sites: the next non-space char must open the arg list.
      const std::size_t nx = skip_ws_fwd(s.stripped, p + w.size());
      if (nx < s.stripped.size() && s.stripped[nx] == '(')
        out.push_back({p, w});
    }
  }
  // De-duplicate prefix matches (parallel_for inside parallel_for_chunked
  // cannot happen thanks to word boundaries, but two patterns may still
  // land on one site via overlapping scans).
  std::sort(out.begin(), out.end(),
            [](const Launch& a, const Launch& b) { return a.pos < b.pos; });
  out.erase(std::unique(out.begin(), out.end(),
                        [](const Launch& a, const Launch& b) {
                          return a.pos == b.pos;
                        }),
            out.end());
  return out;
}

// ---------------------------------------------------------------------------
// Rules.
// ---------------------------------------------------------------------------

bool is_header(const std::string& path) {
  return path.size() > 4 && path.compare(path.size() - 4, 4, ".hpp") == 0;
}

bool in_parallel_engine(const std::string& path) {
  return path.find("parallel/thread_pool") != std::string::npos ||
         path.find("src/parallel/") != std::string::npos;
}

void rule_kernel_traffic(const Source& s, std::vector<Finding>& out) {
  if (in_parallel_engine(s.path)) return;
  const auto regions = brace_regions(s.stripped);
  for (const Launch& l : find_launches(s)) {
    const Region body = enclosing_function(regions, s.stripped, l.pos);
    if (body.open == std::string::npos) continue;
    const std::string fn =
        s.stripped.substr(body.open, body.close - body.open);
    // The bytes charge is mandatory (a flops-only kernel still corrupts
    // the arithmetic-intensity denominator); a bytes-only kernel is fine
    // (pure copies do no flops).
    if (fn.find("flops::add_bytes") != std::string::npos) continue;
    const int line = s.line_of(l.pos);
    if (s.suppressed("kernel-traffic", line)) continue;
    out.push_back({s.path, line, "kernel-traffic",
                   "function launches " + l.name +
                       " but never charges flops::add_bytes; the "
                       "arithmetic-intensity model depends on every kernel "
                       "recording its memory traffic"});
  }
}

// Compound-assignment operators that accumulate.
bool accum_op_at(const std::string& t, std::size_t i) {
  if (i + 1 >= t.size() || t[i + 1] != '=') return false;
  const char c = t[i];
  if (c != '+' && c != '-' && c != '*' && c != '/') return false;
  // Exclude `/=` that is really part of `!=`, `<=`, ... (cannot be: we
  // matched the first char exactly), and exclude `==` neighbours: `+==`
  // is not valid C++ anyway.
  if (i + 2 < t.size() && t[i + 2] == '=') return false;  // `*==` etc.
  return true;
}

// Does @p name look declared inside @p text (lambda params + body prefix)?
// A declaration occurrence is one whose previous non-space char belongs to
// a type token: identifier char, '&', '*', or a closing '>'.
bool declared_in(const std::string& text, const std::string& name) {
  for (std::size_t p = find_word(text, name, 0); p != std::string::npos;
       p = find_word(text, name, p + 1)) {
    if (p == 0) continue;
    const std::size_t q = skip_ws_back(text, p - 1);
    const char c = text[q];
    if (ident_char(c) || c == '&' || c == '*' || c == '>') return true;
  }
  return false;
}

void rule_race_shared_accum(const Source& s, std::vector<Finding>& out) {
  if (in_parallel_engine(s.path)) return;
  for (const Launch& l : find_launches(s)) {
    if (l.name != "parallel_for" && l.name != "parallel_for_chunked")
      continue;
    // Locate the lambda argument of the launch call.
    const std::size_t call_open =
        skip_ws_fwd(s.stripped, l.pos + l.name.size());
    if (call_open >= s.stripped.size() || s.stripped[call_open] != '(')
      continue;
    const std::size_t call_close = match_fwd(s.stripped, call_open);
    if (call_close == std::string::npos) continue;
    // First '[' at paren depth 1 starts the capture list.
    std::size_t cap = std::string::npos;
    int pd = 0;
    for (std::size_t i = call_open; i < call_close; ++i) {
      const char c = s.stripped[i];
      if (c == '(') ++pd;
      if (c == ')') --pd;
      if (c == '[' && pd == 1) {
        cap = i;
        break;
      }
    }
    if (cap == std::string::npos) continue;
    const std::size_t cap_end = match_fwd(s.stripped, cap);
    if (cap_end == std::string::npos) continue;
    std::size_t i = skip_ws_fwd(s.stripped, cap_end + 1);
    std::size_t params_begin = i, params_end = i;
    if (i < s.stripped.size() && s.stripped[i] == '(') {
      params_end = match_fwd(s.stripped, i);
      if (params_end == std::string::npos) continue;
      i = skip_ws_fwd(s.stripped, params_end + 1);
    }
    while (i < s.stripped.size() && ident_char(s.stripped[i])) ++i;  // mutable
    i = skip_ws_fwd(s.stripped, i);
    if (i >= s.stripped.size() || s.stripped[i] != '{') continue;
    const std::size_t body_open = i;
    const std::size_t body_close = match_fwd(s.stripped, body_open);
    if (body_close == std::string::npos) continue;

    const std::string params =
        s.stripped.substr(params_begin, params_end - params_begin);
    const std::string body =
        s.stripped.substr(body_open, body_close - body_open);

    for (std::size_t p = 0; p + 1 < body.size(); ++p) {
      if (!accum_op_at(body, p)) continue;
      std::size_t q = skip_ws_back(body, p == 0 ? 0 : p - 1);
      if (!ident_char(body[q])) continue;  // yd[k] +=, (*p) += ... are fine
      const std::string name = ident_ending_at(body, q);
      if (name.empty()) continue;
      // Member / qualified access is not a captured scalar.
      if (q + 1 > name.size()) {
        const std::size_t before = skip_ws_back(body, q - name.size());
        const char c = body[before];
        if (c == '.' || c == '>' || c == ':') continue;
      }
      if (declared_in(params, name)) continue;
      if (declared_in(body.substr(0, p), name)) continue;
      const std::size_t global_pos = body_open + p;
      const int line = s.line_of(global_pos);
      if (s.suppressed("race-shared-accum", line)) continue;
      out.push_back(
          {s.path, line, "race-shared-accum",
           "accumulation into captured scalar '" + name + "' inside a " +
               l.name +
               " body: a data race, and non-deterministic even if atomic; "
               "use parallel_reduce / parallel_reduce_n"});
    }
  }
}

void rule_no_std_rand(const Source& s, std::vector<Finding>& out) {
  const auto report = [&](std::size_t pos, const std::string& what) {
    const int line = s.line_of(pos);
    if (s.suppressed("no-std-rand", line)) return;
    out.push_back({s.path, line, "no-std-rand",
                   what + ": kernels must use the counter-based Xoshiro256 "
                          "(reproducible per global site, thread-count "
                          "independent)"});
  };
  for (std::size_t p = find_word(s.stripped, "srand", 0);
       p != std::string::npos; p = find_word(s.stripped, "srand", p + 1)) {
    const std::size_t nx = skip_ws_fwd(s.stripped, p + 5);
    if (nx < s.stripped.size() && s.stripped[nx] == '(')
      report(p, "call to srand");
  }
  for (std::size_t p = find_word(s.stripped, "rand", 0);
       p != std::string::npos; p = find_word(s.stripped, "rand", p + 1)) {
    std::size_t q = p >= 1 ? skip_ws_back(s.stripped, p - 1) : 0;
    const bool qualified = p >= 2 && s.stripped[q] == ':';
    if (qualified) {
      // Only std::rand is banned; femto::... never defines rand.
      if (q >= 4 && s.stripped.compare(q - 4, 5, "std::") == 0)
        report(p, "call to std::rand");
      continue;
    }
    if (p > 0 && (s.stripped[q] == '.' || s.stripped[q] == '>')) continue;
    const std::size_t nx = skip_ws_fwd(s.stripped, p + 4);
    if (nx < s.stripped.size() && s.stripped[nx] == '(')
      report(p, "call to rand");
  }
}

void rule_no_naked_new(const Source& s, std::vector<Finding>& out) {
  const auto scan = [&](const std::string& word) {
    for (std::size_t p = find_word(s.stripped, word, 0);
         p != std::string::npos;
         p = find_word(s.stripped, word, p + 1)) {
      // operator new/delete declarations are not naked allocations.
      const std::size_t q = p >= 1 ? skip_ws_back(s.stripped, p - 1) : 0;
      if (ident_ending_at(s.stripped, q) == "operator") continue;
      // `Foo(const Foo&) = delete;` deletes a function, not memory.
      if (word == "delete" && s.stripped[q] == '=') continue;
      // `#include <new>` and template args like `<new_t>` are not calls.
      if (s.stripped[q] == '<') continue;
      const int line = s.line_of(p);
      if (s.suppressed("no-naked-new", line)) continue;
      out.push_back({s.path, line, "no-naked-new",
                     "naked `" + word +
                         "` in kernel code: ownership belongs in "
                         "std::vector / smart pointers (ASan-clean by "
                         "construction)"});
    }
  };
  scan("new");
  scan("delete");
}

void rule_pragma_once(const Source& s, std::vector<Finding>& out) {
  if (!is_header(s.path)) return;
  const std::size_t first = skip_ws_fwd(s.stripped, 0);
  if (first != std::string::npos &&
      s.stripped.compare(first, 12, "#pragma once") == 0)
    return;
  const int line = first < s.stripped.size() ? s.line_of(first) : 1;
  if (s.suppressed("pragma-once", line)) return;
  out.push_back({s.path, line, "pragma-once",
                 "header must start with #pragma once"});
}

void rule_header_hygiene(const Source& s, std::vector<Finding>& out) {
  if (!is_header(s.path)) return;
  const std::size_t un = s.stripped.find("using namespace");
  if (un != std::string::npos) {
    const int line = s.line_of(un);
    if (!s.suppressed("header-hygiene", line))
      out.push_back({s.path, line, "header-hygiene",
                     "`using namespace` in a header leaks into every "
                     "includer"});
  }
  if (s.stripped.find("namespace femto") == std::string::npos) {
    if (!s.suppressed("header-hygiene", 1))
      out.push_back({s.path, 1, "header-hygiene",
                     "header declares nothing inside `namespace femto`"});
  }
}

void rule_cast(const Source& s, std::vector<Finding>& out) {
  const auto scan = [&](const std::string& word) {
    for (std::size_t p = find_word(s.stripped, word, 0);
         p != std::string::npos;
         p = find_word(s.stripped, word, p + 1)) {
      const int line = s.line_of(p);
      if (s.suppressed("cast", line)) continue;
      out.push_back({s.path, line, "cast",
                     word +
                         " requires an explicit `// femtolint: allow(cast): "
                         "why it is safe` suppression (aliasing / constness "
                         "audit trail)"});
    }
  };
  scan("reinterpret_cast");
  scan("const_cast");
}

std::vector<Finding> lint_file(const fs::path& p) {
  const Source s = load(p);
  std::vector<Finding> out;
  rule_kernel_traffic(s, out);
  rule_race_shared_accum(s, out);
  rule_no_std_rand(s, out);
  rule_no_naked_new(s, out);
  rule_pragma_once(s, out);
  rule_header_hygiene(s, out);
  rule_cast(s, out);
  std::sort(out.begin(), out.end(), [](const Finding& a, const Finding& b) {
    return a.line < b.line;
  });
  return out;
}

bool lintable(const fs::path& p) {
  const std::string e = p.extension().string();
  return e == ".cpp" || e == ".hpp";
}

std::vector<fs::path> collect(const std::vector<std::string>& roots) {
  std::vector<fs::path> files;
  for (const auto& r : roots) {
    const fs::path root(r);
    if (fs::is_regular_file(root)) {
      if (lintable(root)) files.push_back(root);
      continue;
    }
    for (const auto& e : fs::recursive_directory_iterator(root)) {
      if (e.is_regular_file() && lintable(e.path()))
        files.push_back(e.path());
    }
  }
  std::sort(files.begin(), files.end());
  return files;
}

// ---------------------------------------------------------------------------
// Self-test over the negative fixtures.
// ---------------------------------------------------------------------------

std::set<std::string> expected_rules(const Source& s) {
  std::set<std::string> out;
  const std::string tag = "femtolint-expect:";
  for (std::size_t p = s.raw.find(tag); p != std::string::npos;
       p = s.raw.find(tag, p + 1)) {
    std::size_t i = p + tag.size();
    const std::size_t eol = s.raw.find('\n', i);
    std::string rest = s.raw.substr(i, eol - i);
    std::istringstream is(rest);
    std::string id;
    while (is >> id) {
      while (!id.empty() && (id.back() == ',' || id.back() == '.'))
        id.pop_back();
      if (!id.empty()) out.insert(id);
    }
  }
  out.erase("clean");
  return out;
}

int self_test(const std::string& dir) {
  int failures = 0;
  int n_fixtures = 0;
  for (const fs::path& p : collect({dir})) {
    const Source s = load(p);
    if (s.raw.find("femtolint-expect:") == std::string::npos) continue;
    ++n_fixtures;
    const std::set<std::string> want = expected_rules(s);
    std::set<std::string> got;
    for (const Finding& f : lint_file(p)) got.insert(f.rule);
    if (want == got) {
      std::printf("ok   %s\n", p.string().c_str());
      continue;
    }
    ++failures;
    std::printf("FAIL %s\n", p.string().c_str());
    for (const auto& r : want)
      if (got.count(r) == 0)
        std::printf("     expected rule did not fire: %s\n", r.c_str());
    for (const auto& r : got)
      if (want.count(r) == 0)
        std::printf("     unexpected rule fired: %s\n", r.c_str());
  }
  if (n_fixtures == 0) {
    std::fprintf(stderr, "femtolint --self-test: no fixtures under %s\n",
                 dir.c_str());
    return 2;
  }
  std::printf("femtolint self-test: %d fixture(s), %d failure(s)\n",
              n_fixtures, failures);
  return failures == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  if (args.empty()) {
    std::fprintf(stderr,
                 "usage: femtolint <dir-or-file>...\n"
                 "       femtolint --self-test <fixtures-dir>\n");
    return 2;
  }
  if (args[0] == "--self-test") {
    if (args.size() != 2) {
      std::fprintf(stderr, "femtolint --self-test takes exactly one dir\n");
      return 2;
    }
    return self_test(args[1]);
  }

  std::vector<Finding> all;
  std::size_t n_files = 0;
  for (const fs::path& p : collect(args)) {
    ++n_files;
    const auto f = lint_file(p);
    all.insert(all.end(), f.begin(), f.end());
  }
  for (const Finding& f : all)
    std::printf("%s:%d: [%s] %s\n", f.file.c_str(), f.line, f.rule.c_str(),
                f.message.c_str());
  std::printf("femtolint: %zu finding(s) in %zu file(s)\n", all.size(),
              n_files);
  return all.empty() ? 0 : 1;
}
