#pragma once
// femtolint v2 source model: everything the rules need, extracted once per
// file from the token stream.
//
//   Source        tokens + comments + suppression queries (allow /
//                 allow-file) + the #include list + module assignment
//   FunctionInfo  every named function/method definition: body token
//                 range, callee names, whether it launches a parallel
//                 kernel, whether it charges flops::add_bytes
//   ClassInfo     every class/struct with its data members, which mutexes
//                 it owns, and FEMTO_GUARDED_BY annotations
//   Program       the whole scanned set; the unit the cross-file passes
//                 (layering, transitive kernel-traffic, lock discipline)
//                 run over
//
// Extraction is a single forward walk with a scope stack -- no
// backtracking heuristics over raw text.  It is still not a compiler: no
// overload resolution (the call graph is name-based) and no preprocessing
// (femtolint lints what was written).  Those limits are documented in
// DESIGN.md §9.

#include <cstddef>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "lexer.hpp"

namespace femtolint {

struct IncludeEdge {
  std::string path;  // as written inside the quotes
  int line = 0;
  bool system = false;  // <...> include
};

/// One named function (or method) definition.
struct FunctionInfo {
  std::string name;        // last identifier before the parameter list
  std::string class_name;  // enclosing class or `X::` qualifier; "" if free
  int line = 0;            // line of the opening brace
  std::size_t body_begin = 0;  // token index of '{'
  std::size_t body_end = 0;    // token index of matching '}'
  bool is_ctor_or_dtor = false;
  std::set<std::string> callees;  // identifiers called as `name(...)`
  bool launches = false;          // calls parallel_for / parallel_reduce*
  int first_launch_line = 0;
  std::string first_launch_name;
  bool charges = false;  // body contains flops::add_bytes
};

/// One data member of a class.
struct MemberInfo {
  std::string name;
  int line = 0;
  std::string guard;     // mutex named in FEMTO_GUARDED_BY; "" if none
  bool needs_guard = false;  // mutable state that the discipline applies to
};

struct ClassInfo {
  std::string name;
  int line = 0;
  std::vector<std::string> mutexes;  // names of std::mutex members
  std::vector<MemberInfo> members;
};

struct Source {
  std::string path;  // as passed on the command line
  std::string rel;   // path relative to the src/ root ("" if not under one)
  std::string module_dir;       // first component of rel ("" if none)
  std::string module_override;  // `// femtolint-module: <m>` directive
  LexResult lx;
  std::vector<IncludeEdge> includes;
  std::vector<FunctionInfo> functions;
  std::vector<ClassInfo> classes;

  bool is_header() const;
  bool in_parallel_engine() const;

  /// `// femtolint: allow(<rule>): reason` on the finding's line or the
  /// three lines above it, or `// femtolint: allow-file(<rule>): reason`
  /// anywhere in the file.
  bool suppressed(const std::string& rule, int line) const;

  /// Rules named by `// femtolint-expect:` directives (self-test mode).
  std::set<std::string> expected_rules() const;

 private:
  friend Source parse_source(std::string path, const std::string& text);
  std::set<std::string> file_allows_;
  // line -> rules allowed on [line, line+3].
  std::map<int, std::set<std::string>> line_allows_;
};

/// Parse one file's text into the full model.
Source parse_source(std::string path, const std::string& text);

/// Load from disk + parse.
Source load_source(const std::string& path);

struct Program {
  std::vector<Source> sources;
};

}  // namespace femtolint
