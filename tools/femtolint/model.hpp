#pragma once
// femtolint v2 source model: everything the rules need, extracted once per
// file from the token stream.
//
//   Source        tokens + comments + suppression queries (allow /
//                 allow-file) + the #include list + module assignment
//   FunctionInfo  every named function/method definition: body token
//                 range, callee names, whether it launches a parallel
//                 kernel, whether it charges flops::add_bytes
//   ClassInfo     every class/struct with its data members, which mutexes
//                 it owns, and FEMTO_GUARDED_BY annotations
//   Program       the whole scanned set; the unit the cross-file passes
//                 (layering, transitive kernel-traffic, lock discipline)
//                 run over
//
// Extraction is a single forward walk with a scope stack -- no
// backtracking heuristics over raw text.  It is still not a compiler: no
// overload resolution (the call graph is name-based) and no preprocessing
// (femtolint lints what was written).  Those limits are documented in
// DESIGN.md §9.

#include <cstddef>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "lexer.hpp"

namespace femtolint {

struct IncludeEdge {
  std::string path;  // as written inside the quotes
  int line = 0;
  bool system = false;  // <...> include
};

/// One direct nondeterminism source in a function body (effect
/// `nondet_source`): a clock read, env read, thread id, random_device, or
/// pointer hashing.
struct NondetUse {
  int line = 0;
  std::string what;  // e.g. "std::chrono::steady_clock::now()"
};

/// One range-based for statement in a function body; the identifiers of
/// the range expression let the unordered-iteration-emit rule match them
/// against unordered-container declarations program-wide, and the loop
/// body's direct writes / callees tell it whether the iteration feeds
/// output (directly or through a transitively-emitting helper).
struct RangeFor {
  int line = 0;
  std::set<std::string> range_idents;
  bool body_emits = false;  // stream/FILE write lexically inside the body
  std::set<std::string> body_callees;
};

/// One call expression inside a function body, in lexical order.  The
/// token index lets the interprocedural concurrency passes (DESIGN.md §14)
/// interleave call sites with the lock acquisitions/releases the lockset
/// walk derives from the same token stream.
struct CallSite {
  std::string name;
  int line = 0;
  std::size_t tok = 0;  // token index of the callee identifier
};

/// One named function (or method) definition.
struct FunctionInfo {
  std::string name;        // last identifier before the parameter list
  std::string class_name;  // enclosing class or `X::` qualifier; "" if free
  int line = 0;            // line of the opening brace
  std::size_t body_begin = 0;  // token index of '{'
  std::size_t body_end = 0;    // token index of matching '}'
  bool is_ctor_or_dtor = false;
  std::set<std::string> callees;  // identifiers called as `name(...)`
  std::vector<CallSite> call_sites;  // the same, with position + order
  // Types constructed via make_unique<T>( / make_shared<T>( — the ctor
  // call the name-based graph would otherwise miss.  Kept separate from
  // `callees` so the v2/v3 passes keep their historical graph; the
  // concurrency passes union both.
  std::set<std::string> ctor_callees;
  bool launches = false;          // calls parallel_for / parallel_reduce*
  int first_launch_line = 0;
  std::string first_launch_name;
  bool charges = false;  // body contains flops::add_bytes
  int first_charge_line = 0;
  // Parameter names whose declared type names a compressed gauge container
  // (CompressedGaugeField / Recon8GaugeField / Fixed12GaugeField): their
  // traffic charge must come from the container's own bytes(), not from a
  // full-18 field's (kernel-traffic pass).
  std::set<std::string> compressed_params;
  // Identifiers X charged as `X.bytes(...)` / `X->bytes(...)` inside a
  // flops::add_bytes argument list anywhere in the body.
  std::set<std::string> charge_bytes_of;

  // Direct effects for the determinism analysis (DESIGN.md §13); the
  // transitive closures are computed per Program by run_effect_rules.
  std::vector<NondetUse> nondet_sources;  // effect nondet_source
  bool nondet_ok = false;   // body carries FEMTO_NONDET_OK(reason)
  bool blocking_ok = false;  // body carries FEMTO_BLOCKING_OK(reason)
  bool protocol_ok = false;  // body carries FEMTO_PROTOCOL_OK(reason)
  bool emits = false;       // effect emits_output: writes a stream/FILE
  int first_emit_line = 0;
  std::string first_emit_what;
  bool fp_accumulates = false;  // ordered FP accumulation (reduce family /
                                // simd::sum_ordered)
  std::vector<RangeFor> range_fors;  // effect unordered_iteration feed
};

/// One data member of a class.
struct MemberInfo {
  std::string name;
  int line = 0;
  std::string guard;     // mutex named in FEMTO_GUARDED_BY; "" if none
  bool needs_guard = false;  // mutable state that the discipline applies to
};

struct ClassInfo {
  std::string name;
  int line = 0;
  std::vector<std::string> mutexes;  // names of std::mutex members
  std::vector<MemberInfo> members;
};

/// One `// femtolint: allow(...)` / `allow-file(...)` comment directive.
/// `used` is flipped by Source::suppressed() when the directive actually
/// suppresses a finding; the unused-suppression pass reports the rest.
struct AllowDirective {
  int line = 0;      // first line of the carrying comment
  int end_line = 0;  // last line of the carrying comment
  std::string rule;
  bool file_scope = false;
  mutable bool used = false;
};

struct Source {
  std::string path;  // as passed on the command line
  std::string rel;   // path relative to the src/ root ("" if not under one)
  std::string module_dir;       // first component of rel ("" if none)
  std::string module_override;  // `// femtolint-module: <m>` directive
  LexResult lx;
  std::vector<IncludeEdge> includes;
  std::vector<FunctionInfo> functions;
  std::vector<ClassInfo> classes;
  std::vector<AllowDirective> allow_directives;
  // Names declared (anywhere in this file) with an unordered_* container
  // type, including one alias hop (`using Cache = std::unordered_map<...>`
  // makes both `Cache` and variables declared as `Cache` unordered).
  std::set<std::string> unordered_names;
  // Names declared with std::future / std::shared_future (same one-hop
  // alias mechanism): `f.get()` on one of these blocks the caller, which
  // the blocking-call-under-lock pass needs to tell apart from the
  // ubiquitous smart-pointer `.get()`.
  std::set<std::string> future_names;

  bool is_header() const;
  bool in_parallel_engine() const;

  /// `// femtolint: allow(<rule>): reason` on the finding's line or the
  /// three lines above it, or `// femtolint: allow-file(<rule>): reason`
  /// anywhere in the file.  Marks every matching directive used.
  bool suppressed(const std::string& rule, int line) const;

  /// Rules named by `// femtolint-expect:` directives (self-test mode).
  std::set<std::string> expected_rules() const;
};

/// Parse one file's text into the full model.
Source parse_source(std::string path, const std::string& text);

/// Load from disk + parse.
Source load_source(const std::string& path);

struct Program {
  std::vector<Source> sources;
};

}  // namespace femtolint
